//! Near-duplicate audio detection with (r,c)-NN queries — the paper's
//! second query type (Definition 2), used directly rather than through
//! the c-ANN ladder.
//!
//! A fingerprint database contains some tracks twice (re-encoded, so the
//! fingerprints differ by small noise). For each suspect track we issue a
//! single (r,c)-NN probe with r set to the re-encoding tolerance: a hit
//! within c*r flags a duplicate; an empty result certifies (with the LSH
//! guarantee) that no fingerprint lies within r.
//!
//! Run: `cargo run --release --example audio_dedup`

use std::sync::Arc;

use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
use db_lsh::data::Dataset;
use db_lsh::{DbLsh, DbLshParams};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let dim = 96;
    let mut rng = StdRng::seed_from_u64(7);

    // 8000 distinct fingerprints.
    let base = gaussian_mixture(&MixtureConfig {
        n: 8000,
        dim,
        clusters: 200,
        cluster_std: 2.0,
        spread: 80.0,
        noise_frac: 0.1,
        seed: 7,
    });

    // Re-encode 50 of them with small perturbations (the duplicates), and
    // pick 50 untouched tracks as negative controls.
    let noise = 0.05f32;
    let mut library = base.clone();
    let mut suspects: Vec<(usize, Vec<f32>, bool)> = Vec::new();
    for i in 0..50 {
        let src = i * 137 % base.len();
        let dup: Vec<f32> = base
            .point(src)
            .iter()
            .map(|&v| v + noise * (rng.gen::<f32>() - 0.5))
            .collect();
        suspects.push((src, dup, true));
    }
    for i in 0..50 {
        let src = (i * 271 + 99) % base.len();
        // a genuinely new track: far from everything
        let fresh: Vec<f32> = (0..dim).map(|_| rng.gen_range(-300.0..300.0)).collect();
        suspects.push((src, fresh, false));
    }
    // The duplicates are *not* inserted; the library is the original set.
    let library = {
        let d = std::mem::replace(&mut library, Dataset::empty(dim));
        Arc::new(d)
    };

    let params = DbLshParams::paper_defaults(library.len()).with_c(2.0);
    let index = DbLsh::build(Arc::clone(&library), &params).expect("DB-LSH build");

    // Tolerance: the max distance a re-encode can move a fingerprint.
    let r = (noise as f64) * (dim as f64).sqrt();
    println!(
        "library: {} fingerprints; probing {} suspects at r = {r:.3}, c = {}",
        library.len(),
        suspects.len(),
        params.c
    );

    let mut true_pos = 0;
    let mut false_neg = 0;
    let mut false_pos = 0;
    let mut true_neg = 0;
    for (src, fp, is_dup) in &suspects {
        let (hit, _) = index.r_c_nn(fp, r).expect("well-formed probe");
        match (hit, is_dup) {
            (Some(h), true) => {
                true_pos += 1;
                debug_assert!(h.dist as f64 <= params.c * r || h.id as usize == *src);
            }
            (None, true) => false_neg += 1,
            (Some(_), false) => false_pos += 1,
            (None, false) => true_neg += 1,
        }
    }
    println!("duplicates found:  {true_pos}/50 (missed {false_neg})");
    println!("fresh tracks kept: {true_neg}/50 (false alarms {false_pos})");
    println!(
        "\n(the LSH guarantee makes misses rare — each probe succeeds with\n\
         probability >= 1/2 - 1/e per (r,c)-NN theory, and in practice far\n\
         more often; re-probing with a second seed drives misses to ~0)"
    );
}
