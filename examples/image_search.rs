//! Image-descriptor similarity search — the workload class that motivates
//! the paper (GIST/SIFT descriptors of image collections).
//!
//! We simulate a photo library: groups of near-duplicate shots (same scene,
//! slightly different viewpoint/exposure) become tight descriptor clusters.
//! Given a query photo, retrieve its scene-mates with DB-LSH and compare
//! against both exhaustive scan and PM-LSH.
//!
//! Run: `cargo run --release --example image_search`

use std::sync::Arc;
use std::time::Instant;

use db_lsh::baselines::{pm_lsh::PmLshParams, LinearScan, PmLsh};
use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
use db_lsh::data::{metrics, AnnIndex};
use db_lsh::DbLshBuilder;

fn main() {
    // ~20k "photos" in 256-d descriptor space; 400 scenes of ~50 shots.
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: 20_000,
        dim: 256,
        clusters: 400,
        cluster_std: 0.8,
        spread: 40.0,
        noise_frac: 0.02,
        seed: 2024,
    }));
    println!(
        "photo library: {} descriptors, {} dims",
        data.len(),
        data.dim()
    );
    let k = 20;

    // exact reference
    let exact = LinearScan::build(Arc::clone(&data));

    // DB-LSH
    let t0 = Instant::now();
    let dblsh = DbLshBuilder::new()
        .auto_r_min()
        .build(Arc::clone(&data))
        .expect("DB-LSH build");
    let dblsh_build = t0.elapsed().as_secs_f64();

    // PM-LSH for comparison
    let t0 = Instant::now();
    let pmlsh = PmLsh::build(Arc::clone(&data), &PmLshParams::default());
    let pm_build = t0.elapsed().as_secs_f64();

    println!("index build: DB-LSH {dblsh_build:.3}s, PM-LSH {pm_build:.3}s");

    // Query with 25 library photos (self-match removed by distance 0 rank).
    let report = |name: &str, index: &dyn AnnIndex| {
        let t0 = Instant::now();
        let mut recalls = Vec::new();
        let mut ratios = Vec::new();
        for qi in (0..data.len()).step_by(data.len() / 25).take(25) {
            let q = data.point(qi);
            let got = index.search(q, k).expect("query");
            let truth = exact.search(q, k).expect("query");
            recalls.push(metrics::recall(&got.neighbors, &truth.neighbors));
            ratios.push(metrics::overall_ratio(&got.neighbors, &truth.neighbors));
        }
        println!(
            "{name:<10} avg query {:>8.2} ms | recall {:.3} | ratio {:.4}",
            t0.elapsed().as_secs_f64() * 1e3 / 25.0,
            metrics::mean(&recalls),
            metrics::mean(&ratios),
        );
    };
    report("DB-LSH", &dblsh);
    report("PM-LSH", &pmlsh);

    // And show one concrete retrieval.
    let q = data.point(123);
    let res = dblsh.k_ann(q, 5).expect("query");
    println!("\nscene-mates of photo 123 (id, distance):");
    for n in &res.neighbors {
        println!("  #{:<6} {:.4}", n.id, n.dist);
    }
}
