//! Quickstart: build a DB-LSH index through the builder, answer (c,k)-ANN
//! queries (single and batched), update the index in place, and compare
//! against the exact answer.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use db_lsh::data::ground_truth::exact_knn_single;
use db_lsh::data::synthetic::split_queries;
use db_lsh::data::{metrics, registry::PaperDataset};
use db_lsh::{DbLshBuilder, DbLshError};

fn main() -> Result<(), DbLshError> {
    // 1. Get a dataset: a clustered synthetic clone of the paper's Audio
    //    set (use db_lsh::data::io::load_fvecs_file for real fvecs data).
    let mut data = gaussian_data();
    println!("dataset: {} points, {} dimensions", data.len(), data.dim());

    // 2. Carve out queries, as the paper does.
    let queries = split_queries(&mut data, 10, 42);
    let data = Arc::new(data);

    // 3. Build through the builder: the paper's defaults (c = 1.5,
    //    w0 = 4c^2, L = 5, K = 10) plus a data-driven radius-ladder
    //    start. Bad input comes back as Err(DbLshError), never a panic.
    let start = std::time::Instant::now();
    let mut index = DbLshBuilder::new().auto_r_min().build(Arc::clone(&data))?;
    let breakdown = index.memory_breakdown();
    println!(
        "indexed in {:.3}s ({} trees of {} points, {:.1} MB = {:.1} MB shared ProjStore + {:.1} MB tree arenas)",
        start.elapsed().as_secs_f64(),
        index.params().l,
        index.len(),
        index.memory_bytes() as f64 / 1048576.0,
        breakdown.proj_store_bytes as f64 / 1048576.0,
        breakdown.tree_bytes as f64 / 1048576.0
    );

    // 4. Query one by one.
    let k = 10;
    let mut recalls = Vec::new();
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let start = std::time::Instant::now();
        let res = index.k_ann(q, k)?;
        let micros = start.elapsed().as_micros();
        let truth = exact_knn_single(&data, q, k);
        let recall = metrics::recall(&res.neighbors, &truth);
        let ratio = metrics::overall_ratio(&res.neighbors, &truth);
        println!(
            "query {qi}: {micros:>6} us, recall {recall:.2}, ratio {ratio:.4}, \
             {} candidates verified in {} rounds",
            res.stats.candidates, res.stats.rounds
        );
        recalls.push(recall);
    }
    println!("mean recall: {:.3}", metrics::mean(&recalls));

    // 5. Or as one batch, fanned across every core.
    let start = std::time::Instant::now();
    let batch = index.search_batch(&queries, k)?;
    println!(
        "batched: {} queries in {:.2} ms total",
        batch.len(),
        start.elapsed().as_secs_f64() * 1e3
    );

    // 6. The index is dynamic: insert a point, find it, remove it.
    let novel = vec![0.5f32; data.dim()];
    let id = index.insert(&novel)?;
    assert_eq!(index.k_ann(&novel, 1)?.neighbors[0].id, id);
    index.remove(id)?;
    println!("inserted point {id}, found it as its own NN, removed it again");
    Ok(())
}

fn gaussian_data() -> db_lsh::data::Dataset {
    db_lsh::data::synthetic::gaussian_mixture(&PaperDataset::Audio.config(0.1))
}
