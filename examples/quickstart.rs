//! Quickstart: index a synthetic dataset with DB-LSH, answer (c,k)-ANN
//! queries, and compare against the exact answer.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use db_lsh::data::ground_truth::exact_knn_single;
use db_lsh::data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use db_lsh::data::{metrics, registry::PaperDataset};
use db_lsh::{DbLsh, DbLshParams};

fn main() {
    // 1. Get a dataset: a clustered synthetic clone of the paper's Audio
    //    set (use db_lsh::data::io::load_fvecs_file for real fvecs data).
    let mut data = gaussian_mixture(&PaperDataset::Audio.config(0.1));
    println!(
        "dataset: {} points, {} dimensions",
        data.len(),
        data.dim()
    );

    // 2. Carve out queries, as the paper does.
    let queries = split_queries(&mut data, 10, 42);
    let data = Arc::new(data);

    // 3. Build the index with the paper's default parameters
    //    (c = 1.5, w0 = 4c^2, L = 5, K = 10) and a data-driven radius
    //    ladder start.
    let mut params = DbLshParams::paper_defaults(data.len());
    params.r_min = DbLsh::estimate_r_min(&data, &params, 200);
    let start = std::time::Instant::now();
    let index = DbLsh::build(Arc::clone(&data), &params);
    println!(
        "indexed in {:.3}s ({} trees of {} points, {:.1} MB)",
        start.elapsed().as_secs_f64(),
        params.l,
        data.len(),
        index.memory_bytes() as f64 / 1048576.0
    );

    // 4. Query.
    let k = 10;
    let mut recalls = Vec::new();
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let start = std::time::Instant::now();
        let res = index.k_ann(q, k);
        let micros = start.elapsed().as_micros();
        let truth = exact_knn_single(&data, q, k);
        let recall = metrics::recall(&res.neighbors, &truth);
        let ratio = metrics::overall_ratio(&res.neighbors, &truth);
        println!(
            "query {qi}: {micros:>6} us, recall {recall:.2}, ratio {ratio:.4}, \
             {} candidates verified in {} rounds",
            res.stats.candidates, res.stats.rounds
        );
        recalls.push(recall);
    }
    println!("mean recall: {:.3}", metrics::mean(&recalls));
}
