//! Parameter tuning walkthrough: how the theory of Section V maps to the
//! knobs of [`DbLshParams`], and what each knob does on a real workload.
//!
//! Run: `cargo run --release --example parameter_tuning`

use std::sync::Arc;

use db_lsh::data::ground_truth::exact_knn;
use db_lsh::data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use db_lsh::data::{metrics, Dataset};
use db_lsh::math::{alpha_exponent, derive_kl, rho_dynamic};
use db_lsh::{DbLsh, DbLshParams};

fn main() {
    println!("== 1. The theory: rho* and alpha ==");
    println!(
        "{:>6} {:>8} {:>9} {:>9}",
        "gamma", "w0(c=1.5)", "alpha", "rho*"
    );
    for gamma in [0.5, 1.0, 2.0, 3.0] {
        let c: f64 = 1.5;
        let w0 = 2.0 * gamma * c * c;
        println!(
            "{gamma:>6.1} {w0:>8.2} {:>9.3} {:>9.4}",
            alpha_exponent(gamma),
            rho_dynamic(c, w0)
        );
    }
    println!(
        "\nLemma 1's K and L at n = 1e6, t = 64 (narrow buckets keep the\n\
         theoretical K small; the paper's practical choice is K=12, L=5):"
    );
    for w0 in [2.0, 3.0, 4.5, 9.0] {
        let d = derive_kl(1_000_000, 64, 1.5, w0);
        println!(
            "  w0 = {w0:>4.1}: K = {:>5}, L = {:>3}, rho* = {:.4}",
            d.k, d.l, d.rho
        );
    }

    println!("\n== 2. Measured effect of t (candidate budget) ==");
    let mut data = gaussian_mixture(&MixtureConfig {
        n: 8000,
        dim: 64,
        clusters: 80,
        cluster_std: 1.0,
        spread: 50.0,
        noise_frac: 0.05,
        seed: 17,
    });
    let queries = split_queries(&mut data, 30, 3);
    let data = Arc::new(data);
    let truth = exact_knn(&data, &queries, 10);

    let base = DbLshParams::paper_defaults(data.len());
    let r_min = DbLsh::estimate_r_min(&data, &base, 200);
    println!(
        "{:>5} {:>8} {:>10} {:>8}",
        "t", "budget", "query(us)", "recall"
    );
    for t in [4usize, 16, 64, 256] {
        let params = base.clone().with_t(t).with_r_min(r_min);
        let index = DbLsh::build(Arc::clone(&data), &params).expect("DB-LSH build");
        let (recall, micros) = run(&index, &queries, &truth);
        println!(
            "{t:>5} {:>8} {micros:>10.0} {recall:>8.3}",
            params.kann_budget(10)
        );
    }

    println!("\n== 3. Measured effect of L (number of trees) ==");
    println!("{:>5} {:>10} {:>8}", "L", "query(us)", "recall");
    for l in [1usize, 3, 5, 8] {
        let params = base.clone().with_kl(base.k, l).with_r_min(r_min);
        let index = DbLsh::build(Arc::clone(&data), &params).expect("DB-LSH build");
        let (recall, micros) = run(&index, &queries, &truth);
        println!("{l:>5} {micros:>10.0} {recall:>8.3}");
    }
    println!(
        "\nTakeaway: t controls the accuracy/time trade-off at fixed index\n\
         size; L buys accuracy with memory; gamma = 2 (w0 = 4c^2) is the\n\
         paper's sweet spot for the exponent alpha."
    );
}

fn run(index: &DbLsh, queries: &Dataset, truth: &[Vec<db_lsh::Neighbor>]) -> (f64, f64) {
    let start = std::time::Instant::now();
    let mut recalls = Vec::new();
    for (qi, t) in truth.iter().enumerate() {
        let res = index.k_ann(queries.point(qi), 10).expect("query");
        recalls.push(metrics::recall(&res.neighbors, t));
    }
    let micros = start.elapsed().as_micros() as f64 / queries.len() as f64;
    (metrics::mean(&recalls), micros)
}
