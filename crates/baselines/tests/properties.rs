//! Property tests shared by every baseline: the AnnIndex contract must
//! hold under arbitrary data and queries.

use std::sync::Arc;

use dblsh_baselines::{
    lccs::LccsParams, lsb::LsbParams, pm_lsh::PmLshParams, qalsh::QalshParams, FbLsh, LccsLsh,
    LinearScan, LsbForest, PmLsh, Qalsh,
};
use dblsh_core::DbLshParams;
use dblsh_data::{AnnIndex, Dataset};
use proptest::prelude::*;

fn rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-50.0f32..50.0, dim..=dim), 5..max_n)
}

fn build_all(data: &Arc<Dataset>) -> Vec<Box<dyn AnnIndex>> {
    let n = data.len();
    vec![
        Box::new(LinearScan::build(Arc::clone(data))),
        Box::new(FbLsh::build(
            Arc::clone(data),
            &DbLshParams::paper_defaults(n).with_kl(4, 2).with_r_min(0.5),
            12,
        )),
        Box::new(Qalsh::build(
            Arc::clone(data),
            &QalshParams::derive(n, 1.5).with_r_min(0.5),
        )),
        Box::new(PmLsh::build(
            Arc::clone(data),
            &PmLshParams {
                m: 6,
                ..Default::default()
            },
        )),
        Box::new(LsbForest::build(
            Arc::clone(data),
            &LsbParams {
                m: 6,
                u: 3,
                trees: 4,
                ..Default::default()
            },
        )),
        Box::new(LccsLsh::build(Arc::clone(data), &LccsParams::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ann_contract_for_every_baseline(
        pts in rows(80, 8),
        k in 1usize..12,
        qi in 0usize..80,
    ) {
        let data = Arc::new(Dataset::from_rows(&pts));
        let q = data.point(qi % data.len()).to_vec();
        for index in build_all(&data) {
            let res = index.search(&q, k).unwrap();
            prop_assert!(res.neighbors.len() <= k, "{}", index.name());
            prop_assert!(
                res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist),
                "{} unsorted", index.name()
            );
            let mut ids = res.ids();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "{} duplicates", index.name());
            for n in &res.neighbors {
                prop_assert!((n.id as usize) < data.len(), "{}", index.name());
                let true_d = dblsh_data::dataset::dist(&q, data.point(n.id as usize));
                prop_assert!(
                    (n.dist - true_d).abs() <= 1e-3 * (1.0 + true_d),
                    "{} reported wrong distance", index.name()
                );
            }
        }
    }

    #[test]
    fn linear_scan_is_lower_bound_for_first_neighbor(
        pts in rows(60, 6),
        qi in 0usize..60,
    ) {
        let data = Arc::new(Dataset::from_rows(&pts));
        let q = data.point(qi % data.len()).to_vec();
        let exact = LinearScan::build(Arc::clone(&data)).search(&q, 1).unwrap();
        for index in build_all(&data) {
            let res = index.search(&q, 1).unwrap();
            if let Some(first) = res.neighbors.first() {
                prop_assert!(
                    first.dist + 1e-6 >= exact.neighbors[0].dist,
                    "{} beat the exact NN", index.name()
                );
            }
        }
    }
}
