//! LCCS-LSH — LSH via Longest Circular Co-Substring search (Lei, Huang,
//! Kankanhalli, Tung; SIGMOD 2020). Each point gets an `m`-coordinate
//! discrete code; for every circular rotation of the coordinate order, the
//! codes are kept in sorted order. A query locates its own rotated code in
//! each of the `m` sorted lists and expands around that position: points
//! adjacent in a rotation share a long prefix *starting at that rotation
//! offset* — i.e. a long circular co-substring — and are likely close.
//!
//! Simplifications versus the original (DESIGN.md §4): coordinates are
//! E2-quantized to bytes (alphabet 256) and a code is 16 bytes packed in a
//! `u128`, so each rotation's order is plain integer sorting and prefix
//! length is a `leading_zeros` call — replacing the circular suffix-array
//! machinery with the same candidate ranking; the probe budget (paper
//! setting `#probes in {256, 512}`) plays checked-candidate cap.

use std::sync::Arc;

use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::Verifier;

/// Number of code coordinates (bytes in the packed code).
const M: usize = 16;

/// LCCS-LSH parameters.
#[derive(Debug, Clone)]
pub struct LccsParams {
    /// Maximum candidates to verify per query (paper's #probes).
    pub probes: usize,
    /// Quantization width in units of the projection std deviation.
    pub quant_width: f64,
    pub seed: u64,
}

impl Default for LccsParams {
    fn default() -> Self {
        LccsParams {
            probes: 512,
            quant_width: 0.25,
            seed: 0x0001_CC51,
        }
    }
}

/// A built LCCS-LSH index.
pub struct LccsLsh {
    params: LccsParams,
    /// `[M][dim]` projection matrix.
    proj: Vec<f64>,
    /// Quantization offset/scale learned from the data distribution.
    center: Vec<f64>,
    scale: Vec<f64>,
    /// Packed codes per point.
    codes: Vec<u128>,
    /// `orders[r]`: point ids sorted by code rotated left `r` bytes.
    orders: Vec<Vec<u32>>,
    data: Arc<Dataset>,
}

#[inline]
fn rotate_code(code: u128, r: usize) -> u128 {
    code.rotate_left((r * 8) as u32)
}

impl LccsLsh {
    pub fn build(data: Arc<Dataset>, params: &LccsParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.probes >= 1 && params.quant_width > 0.0);
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let proj: Vec<f64> = (0..M * dim).map(|_| normal(&mut rng)).collect();

        // Learn per-coordinate center/scale so bytes cover the value range.
        let mut raw = vec![0.0f64; n * M];
        for row in 0..n {
            let point = data.point(row);
            for j in 0..M {
                raw[row * M + j] = dot(&proj[j * dim..(j + 1) * dim], point);
            }
        }
        let mut center = vec![0.0f64; M];
        let mut scale = vec![1.0f64; M];
        for j in 0..M {
            let mut mean = 0.0;
            for row in 0..n {
                mean += raw[row * M + j];
            }
            mean /= n as f64;
            let mut var = 0.0;
            for row in 0..n {
                var += (raw[row * M + j] - mean).powi(2);
            }
            let std = (var / n as f64).sqrt().max(f64::MIN_POSITIVE);
            center[j] = mean;
            scale[j] = std * params.quant_width;
        }

        let codes: Vec<u128> = (0..n)
            .map(|row| pack_code(&raw[row * M..(row + 1) * M], &center, &scale))
            .collect();

        let mut orders = Vec::with_capacity(M);
        for r in 0..M {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by_key(|&id| rotate_code(codes[id as usize], r));
            orders.push(order);
        }

        LccsLsh {
            params: params.clone(),
            proj,
            center,
            scale,
            codes,
            orders,
            data,
        }
    }

    pub fn params(&self) -> &LccsParams {
        &self.params
    }

    fn query_code(&self, q: &[f32]) -> u128 {
        let dim = self.data.dim();
        let raw: Vec<f64> = (0..M)
            .map(|j| dot(&self.proj[j * dim..(j + 1) * dim], q))
            .collect();
        pack_code(&raw, &self.center, &self.scale)
    }
}

/// Quantize raw projections to bytes and pack big-endian (byte 0 in the
/// most significant position, so integer order == lexicographic order).
fn pack_code(raw: &[f64], center: &[f64], scale: &[f64]) -> u128 {
    let mut code = 0u128;
    for j in 0..M {
        let cell = ((raw[j] - center[j]) / scale[j]).round();
        let byte = (cell + 128.0).clamp(0.0, 255.0) as u8;
        code = (code << 8) | byte as u128;
    }
    code
}

impl AnnIndex for LccsLsh {
    fn name(&self) -> &'static str {
        "LCCS-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let budget = self.params.probes + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        verifier.stats.rounds = 1;
        let qcode = self.query_code(query);

        // Two heads per rotation; globally pop the head with the longest
        // rotated common prefix.
        struct Head {
            rot: usize,
            idx: isize,
            step: isize,
        }
        let mut heads = Vec::with_capacity(2 * M);
        for (r, order) in self.orders.iter().enumerate() {
            let qrot = rotate_code(qcode, r);
            let pos = order.partition_point(|&id| rotate_code(self.codes[id as usize], r) < qrot)
                as isize;
            heads.push(Head {
                rot: r,
                idx: pos - 1,
                step: -1,
            });
            heads.push(Head {
                rot: r,
                idx: pos,
                step: 1,
            });
        }

        loop {
            let mut best: Option<(u32, usize)> = None;
            for (hi, h) in heads.iter().enumerate() {
                let order = &self.orders[h.rot];
                if h.idx < 0 || h.idx as usize >= order.len() {
                    continue;
                }
                let id = order[h.idx as usize];
                let lccs = (rotate_code(self.codes[id as usize], h.rot)
                    ^ rotate_code(qcode, h.rot))
                .leading_zeros();
                if best.is_none_or(|(b, _)| lccs > b) {
                    best = Some((lccs, hi));
                }
            }
            let Some((_, hi)) = best else { break };
            let h = &mut heads[hi];
            let id = self.orders[h.rot][h.idx as usize];
            h.idx += h.step;
            if !verifier.offer(id) {
                break;
            }
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.codes.len() * 16
            + self.orders.iter().map(|o| o.len() * 4).sum::<usize>()
            + self.proj.len() * 8
    }
}

#[inline]
fn dot(a: &[f64], x: &[f32]) -> f64 {
    a.iter().zip(x).map(|(&p, &v)| p * v as f64).sum()
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn rotation_is_circular() {
        let code = 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10u128;
        assert_eq!(rotate_code(code, 0), code);
        assert_eq!(rotate_code(rotate_code(code, 5), 11), code);
        // rotating by M bytes is identity
        assert_eq!(rotate_code(code, M), code);
    }

    #[test]
    fn pack_code_orders_lexicographically() {
        let center = vec![0.0; M];
        let scale = vec![1.0; M];
        let mut lo = vec![0.0; M];
        let mut hi = vec![0.0; M];
        lo[0] = -3.0;
        hi[0] = 3.0; // differ in the first (most significant) coordinate
        assert!(pack_code(&lo, &center, &scale) < pack_code(&hi, &center, &scale));
    }

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 67,
        });
        let queries = split_queries(&mut data, 12, 8);
        let data = Arc::new(data);
        let idx = LccsLsh::build(Arc::clone(&data), &LccsParams::default());
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.4, "mean recall too low: {mean}");
    }

    #[test]
    fn probe_budget_respected() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 2000,
            dim: 16,
            ..Default::default()
        }));
        let params = LccsParams {
            probes: 50,
            ..Default::default()
        };
        let idx = LccsLsh::build(Arc::clone(&data), &params);
        let res = idx.search(data.point(0), 10).unwrap();
        assert!(res.stats.candidates <= 60);
    }
}
