//! FB-LSH — the paper's own ablation baseline (Section VI-A):
//! "a static (K,L)-index method called Fixed Bucketing-LSH (FB-LSH) by
//! replacing the dynamic bucketing part in DB-LSH with the fixed
//! bucketing. Note that FB-LSH is not equivalent to E2LSH since only one
//! suit of (K,L)-index is used."
//!
//! Construction: the *same* `L x K` Gaussian projections as DB-LSH, but
//! instead of R*-trees, each projected space is quantized into fixed-width
//! buckets `floor(g_j / (w0 r))` for every radius level of the ladder
//! `r = r_min, c r_min, c^2 r_min, ...`, giving one hash table per
//! `(level, table)` pair. The tables for the whole ladder are precomputed
//! at indexing time (the paper likewise excludes candidate lookup from
//! FB-LSH's query time to mimic hash-table lookup; we keep lookup in the
//! measured path — it is a single hash probe — but exclude table
//! *construction*, which happens at build).
//!
//! Ladder levels stop early once a level loses discriminative power
//! (most points land in one bucket), which also bounds memory.
//!
//! Query: per level, probe the query's bucket in each of the `L` tables
//! and verify; stop on the DB-LSH conditions (budget `2tL + k` or k-th
//! neighbor within `c r`). The only difference from DB-LSH is the bucket
//! *shape*: fixed grid cells instead of query-centric cubes, so a near
//! neighbor just across a grid boundary is missed — the hash boundary
//! issue the paper quantifies.

use std::collections::HashMap;
use std::sync::Arc;

use dblsh_core::{DbLshParams, GaussianHasher};
use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};

use crate::common::{bucket_key, Verifier};

/// One hash table: bucket key -> point ids.
type Table = HashMap<u64, Vec<u32>>;

/// Fixed-bucketing ablation of DB-LSH.
#[derive(Debug)]
pub struct FbLsh {
    params: DbLshParams,
    hasher: GaussianHasher,
    /// `levels[level][table]`; level widths are `w0 * r_min * c^level`.
    levels: Vec<Vec<Table>>,
    data: Arc<Dataset>,
}

impl FbLsh {
    /// Build with the same parameter struct as DB-LSH. `max_levels` caps
    /// the precomputed radius ladder (the query falls back to scanning
    /// the coarsest level's bucket beyond it).
    pub fn build(data: Arc<Dataset>, params: &DbLshParams, max_levels: usize) -> Self {
        params.validate().expect("invalid DbLshParams");
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(max_levels >= 1, "need at least one level");
        let hasher = GaussianHasher::new(data.dim(), params.k, params.l, params.seed);
        let n = data.len();

        // Project once, quantize per level.
        let projections: Vec<Vec<f64>> = (0..params.l)
            .map(|i| hasher.project_all(i, data.flat()))
            .collect();

        let mut levels = Vec::new();
        let mut r = params.r_min;
        for _ in 0..max_levels {
            let w = params.w0 * r;
            let mut tables = Vec::with_capacity(params.l);
            let mut largest = 0usize;
            for proj in &projections {
                let mut table: Table = HashMap::with_capacity(n / 4);
                let mut cells = vec![0i64; params.k];
                for row in 0..n {
                    let g = &proj[row * params.k..(row + 1) * params.k];
                    for (c, &v) in cells.iter_mut().zip(g) {
                        *c = (v / w).floor() as i64;
                    }
                    let bucket = table.entry(bucket_key(&cells)).or_default();
                    bucket.push(row as u32);
                    largest = largest.max(bucket.len());
                }
                tables.push(table);
            }
            levels.push(tables);
            // Stop the ladder once buckets stop discriminating: nearly all
            // points share one cell, so coarser levels add memory, not
            // information.
            if largest * 2 >= n {
                break;
            }
            r *= params.c;
        }

        FbLsh {
            params: params.clone(),
            hasher,
            levels,
            data,
        }
    }

    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// Number of precomputed ladder levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

impl AnnIndex for FbLsh {
    fn name(&self) -> &'static str {
        "FB-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let params = &self.params;
        let mut verifier = Verifier::new(&self.data, query, k, params.kann_budget(k));
        let qproj: Vec<Vec<f64>> = (0..params.l)
            .map(|i| self.hasher.project(i, query))
            .collect();

        let mut r = params.r_min;
        let mut cells = vec![0i64; params.k];
        'ladder: for tables in &self.levels {
            verifier.stats.rounds += 1;
            let w = params.w0 * r;
            let cr = params.c * r;
            if verifier.kth_within(cr) {
                break;
            }
            for (i, table) in tables.iter().enumerate() {
                for (c, &v) in cells.iter_mut().zip(&qproj[i]) {
                    *c = (v / w).floor() as i64;
                }
                if let Some(bucket) = table.get(&bucket_key(&cells)) {
                    // whole-bucket batch through the blocked verifier
                    if !verifier.offer_block(bucket, Some(cr)) {
                        break 'ladder;
                    }
                }
            }
            if verifier.saturated() {
                break;
            }
            r *= params.c;
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|tables| tables.iter())
            .map(|t| {
                t.len() * (8 + std::mem::size_of::<Vec<u32>>())
                    + t.values().map(|v| v.capacity() * 4).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    fn setup() -> (Arc<Dataset>, Dataset, FbLsh) {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 21,
        });
        let queries = split_queries(&mut data, 15, 4);
        let data = Arc::new(data);
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(8, 4)
            .with_r_min(0.5);
        let idx = FbLsh::build(Arc::clone(&data), &params, 24);
        (data, queries, idx)
    }

    #[test]
    fn recall_is_reasonable_on_clustered_data() {
        let (data, queries, idx) = setup();
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        // fixed buckets lose to dynamic ones but must still work
        assert!(mean > 0.5, "mean recall too low: {mean}");
    }

    #[test]
    fn ladder_stops_when_buckets_degenerate() {
        let (_, _, idx) = setup();
        assert!(idx.num_levels() >= 2);
        assert!(idx.num_levels() <= 24);
    }

    #[test]
    fn results_sorted_and_budget_respected() {
        let (data, _, idx) = setup();
        let res = idx.search(data.point(0), 10).unwrap();
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(res.stats.candidates <= idx.params().kann_budget(10));
        assert!(idx.index_size_bytes() > 0);
    }
}
