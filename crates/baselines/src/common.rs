//! Shared machinery for the baseline implementations: the verification
//! stage (top-k + dedup + budget, with a blocked batch path) and a small
//! fast hasher for bucket keys.

use dblsh_data::dataset::sq_dist;
use dblsh_data::{Dataset, Neighbor, QueryStats, Sq8Query, Sq8Store};

// The per-query visited bitset lives in `dblsh_data` (shared with the
// DB-LSH core's query scratch); re-exported here for the baselines.
pub use dblsh_data::Visited;

/// The exact-distance verification stage every LSH method funnels
/// candidates through: deduplicates, verifies against the original
/// vectors, maintains the ascending top-k and the work counters.
pub struct Verifier<'d> {
    data: &'d Dataset,
    query: &'d [f32],
    k: usize,
    budget: usize,
    visited: Visited,
    pub top: Vec<Neighbor>,
    pub stats: QueryStats,
    verified: usize,
    /// Scratch of the blocked path ([`Verifier::offer_block`]): fresh ids
    /// of the current batch, their squared distances, and the canonical
    /// consumption keys (`sq-dist bits << 32 | id`).
    block: Vec<u32>,
    dists: Vec<f32>,
    keys: Vec<u64>,
    /// SQ8 pre-filter state ([`Verifier::with_prefilter`]): the shared
    /// code store plus this query's prepared coefficients. `None` runs
    /// every batch through the exact kernel directly.
    sq8: Option<(&'d Sq8Store, Sq8Query)>,
    survivors: Vec<u32>,
    /// Mirror of `top`'s raw squared `f32` distances, in the same order:
    /// the pre-filter threshold must be the k-th **exact squared** value
    /// (re-squaring the rounded sqrt in `Neighbor::dist` would not be a
    /// sound pruning bound).
    top_sq: Vec<f32>,
}

impl<'d> Verifier<'d> {
    pub fn new(data: &'d Dataset, query: &'d [f32], k: usize, budget: usize) -> Self {
        assert_eq!(data.dim(), query.len(), "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        Verifier {
            data,
            query,
            k,
            budget,
            visited: Visited::new(data.len()),
            top: Vec::with_capacity(k + 1),
            stats: QueryStats::default(),
            verified: 0,
            block: Vec::new(),
            dists: Vec::new(),
            keys: Vec::new(),
            sq8: None,
            survivors: Vec::new(),
            top_sq: Vec::with_capacity(k + 1),
        }
    }

    /// [`Verifier::new`] with the SQ8 quantized pre-filter enabled:
    /// batches offered through [`Verifier::offer_block`] are first
    /// screened against `store` (codes in the same row order as `data`),
    /// and rows whose conservative lower bound already exceeds the
    /// current k-th exact distance skip the exact kernel. Answers and
    /// work counters stay byte-identical to the unfiltered verifier;
    /// only `stats.prefilter_pruned` / `prefilter_survivors` differ.
    pub fn with_prefilter(
        data: &'d Dataset,
        query: &'d [f32],
        k: usize,
        budget: usize,
        store: &'d Sq8Store,
    ) -> Self {
        assert_eq!(store.len(), data.len(), "code store out of step with data");
        let mut v = Verifier::new(data, query, k, budget);
        let mut prep = Sq8Query::empty();
        store.prepare_query(query, &mut prep);
        v.sq8 = Some((store, prep));
        v
    }

    /// Insert a candidate into the ascending top-k and its squared-
    /// distance mirror. Same tie semantics as
    /// [`dblsh_data::push_candidate_unchecked`]: equal-or-greater pushes
    /// land after existing entries, so a full top-k never changes on a
    /// tied candidate.
    fn push(&mut self, id: u32, d2: f32) {
        let dist = ((d2 as f64).sqrt()) as f32;
        let pos = self.top.partition_point(|n| n.dist <= dist);
        if pos >= self.k {
            return;
        }
        self.top.insert(pos, Neighbor { id, dist });
        self.top_sq.insert(pos, d2);
        self.top.truncate(self.k);
        self.top_sq.truncate(self.k);
    }

    /// The pre-filter pruning threshold: the k-th exact **squared**
    /// distance, or infinity until `k` results are present (nothing may
    /// be pruned before the top is full).
    fn prune_threshold(&self) -> f32 {
        if self.top.len() == self.k {
            self.top_sq[self.k - 1]
        } else {
            f32::INFINITY
        }
    }

    /// Feed one candidate id. Returns `false` once the budget is
    /// exhausted (caller should stop generating candidates).
    pub fn offer(&mut self, id: u32) -> bool {
        self.stats.index_probes += 1;
        if !self.visited.insert(id) {
            return self.verified < self.budget;
        }
        self.verified += 1;
        self.stats.candidates += 1;
        // the visited bitset above guarantees each id is offered once, so
        // the duplicate-scanning push_candidate is unnecessary here
        let d2 = sq_dist(self.query, self.data.point(id as usize));
        self.push(id, d2);
        self.verified < self.budget
    }

    /// Feed a whole candidate batch (a hash bucket, a tree leaf, a drained
    /// run of a candidate stream) through the blocked verification stage:
    /// deduplicate against the visited set, then stage through the shared
    /// [`dblsh_data::kernels::canonical_verify_keys`]: fresh ids sorted
    /// into memory order, exact distances from the blocked kernel
    /// (per-row bit-identical to the scalar [`sq_dist`]), consumed in
    /// canonical ascending
    /// `(distance, id)` order with the budget — and, when `bound` is set,
    /// the "k-th result within `bound`" termination — checked per
    /// candidate, so the work accounting matches the one-at-a-time
    /// [`Verifier::offer`] path.
    ///
    /// Returns `false` once the caller should stop generating candidates
    /// (budget exhausted, or `bound` satisfied by the current top-k). At
    /// most one batch of distance computations happens beyond the
    /// stopping candidate; only consumed candidates are counted.
    pub fn offer_block(&mut self, ids: &[u32], bound: Option<f64>) -> bool {
        self.stats.index_probes += ids.len();
        self.block.clear();
        for &id in ids {
            if self.visited.insert(id) {
                self.block.push(id);
            }
        }
        let stop = |v: &Verifier| v.verified >= v.budget || bound.is_some_and(|b| v.kth_within(b));
        if self.block.is_empty() {
            return !stop(self);
        }
        match &self.sq8 {
            Some((store, prep)) => {
                let threshold = self.prune_threshold();
                let (pruned, survived) = dblsh_data::kernels::canonical_verify_keys_prefiltered(
                    self.query,
                    self.data.flat(),
                    self.data.dim(),
                    store,
                    prep,
                    threshold,
                    &mut self.block,
                    &mut self.dists,
                    &mut self.survivors,
                    &mut self.keys,
                    |id| id,
                );
                self.stats.prefilter_pruned += pruned;
                self.stats.prefilter_survivors += survived;
            }
            None => {
                dblsh_data::kernels::canonical_verify_keys(
                    self.query,
                    self.data.flat(),
                    self.data.dim(),
                    &mut self.block,
                    &mut self.dists,
                    &mut self.keys,
                    |id| id,
                );
            }
        }
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            let id = key as u32;
            let d2 = f32::from_bits((key >> 32) as u32);
            self.verified += 1;
            self.stats.candidates += 1;
            self.push(id, d2);
            if stop(self) {
                return false;
            }
        }
        true
    }

    /// Number of unique candidates verified so far.
    pub fn verified(&self) -> usize {
        self.verified
    }

    /// True once `k` results are present and the k-th is within `bound`.
    pub fn kth_within(&self, bound: f64) -> bool {
        self.top.len() == self.k && (self.top[self.k - 1].dist as f64) <= bound
    }

    /// Current k-th distance (infinite until `k` results are present).
    pub fn kth_dist(&self) -> f64 {
        if self.top.len() == self.k {
            self.top[self.k - 1].dist as f64
        } else {
            f64::INFINITY
        }
    }

    /// True when every dataset point has been verified.
    pub fn saturated(&self) -> bool {
        self.verified >= self.data.len()
    }

    pub fn budget_left(&self) -> bool {
        self.verified < self.budget
    }
}

/// FxHash-style mixing for bucket keys (we implement it inline rather than
/// pulling in `rustc-hash`; the allowed dependency set is fixed).
#[inline]
pub fn fx_mix(mut acc: u64, word: u64) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    acc = (acc.rotate_left(5) ^ word).wrapping_mul(SEED);
    acc
}

/// Hash a slice of bucket cell indices into a single u64 table key.
#[inline]
pub fn bucket_key(cells: &[i64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325;
    for &c in cells {
        acc = fx_mix(acc, c as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![10.0, 0.0],
        ])
    }

    #[test]
    fn verifier_tracks_topk() {
        let d = data();
        let q = [0.1f32, 0.0];
        let mut v = Verifier::new(&d, &q, 2, 100);
        for id in [4u32, 3, 2, 1, 0] {
            v.offer(id);
        }
        assert_eq!(v.top.len(), 2);
        assert_eq!(v.top[0].id, 0);
        assert_eq!(v.top[1].id, 1);
        assert_eq!(v.verified(), 5);
        assert_eq!(v.stats.candidates, 5);
    }

    #[test]
    fn verifier_dedupes() {
        let d = data();
        let q = [0.0f32, 0.0];
        let mut v = Verifier::new(&d, &q, 3, 100);
        for _ in 0..10 {
            v.offer(2);
        }
        assert_eq!(v.verified(), 1);
        assert_eq!(v.stats.index_probes, 10);
    }

    #[test]
    fn verifier_budget_stops() {
        let d = data();
        let q = [0.0f32, 0.0];
        let mut v = Verifier::new(&d, &q, 1, 2);
        assert!(v.offer(0));
        assert!(!v.offer(1)); // budget hit
        assert!(!v.budget_left());
    }

    #[test]
    fn kth_within_semantics() {
        let d = data();
        let q = [0.0f32, 0.0];
        let mut v = Verifier::new(&d, &q, 2, 100);
        v.offer(0);
        assert!(!v.kth_within(100.0)); // only 1 of 2 results yet
        v.offer(4);
        assert!(v.kth_within(10.5));
        assert!(!v.kth_within(9.0));
        assert_eq!(v.kth_dist(), 10.0);
    }

    #[test]
    fn offer_block_matches_offer_results() {
        let d = data();
        let q = [0.1f32, 0.0];
        let mut one = Verifier::new(&d, &q, 2, 100);
        for id in [4u32, 3, 2, 1, 0] {
            one.offer(id);
        }
        let mut blocked = Verifier::new(&d, &q, 2, 100);
        assert!(blocked.offer_block(&[4, 3, 2], None));
        assert!(blocked.offer_block(&[1, 0, 3], None)); // 3 deduped
        assert_eq!(blocked.top, one.top);
        assert_eq!(blocked.verified(), 5);
        assert_eq!(blocked.stats.candidates, 5);
        assert_eq!(blocked.stats.index_probes, 6);
    }

    #[test]
    fn offer_block_budget_and_bound_stop() {
        let d = data();
        let q = [0.0f32, 0.0];
        // budget stop: only 2 of 5 verified
        let mut v = Verifier::new(&d, &q, 3, 2);
        assert!(!v.offer_block(&[4, 3, 2, 1, 0], None));
        assert_eq!(v.verified(), 2);
        assert!(!v.budget_left());
        // canonical order: the two *closest* of the block were consumed
        assert_eq!(v.top[0].id, 0);
        assert_eq!(v.top[1].id, 1);
        // bound stop: k results within the bound end the scan early
        let mut v = Verifier::new(&d, &q, 2, 100);
        assert!(!v.offer_block(&[4, 3, 2, 1, 0], Some(1.5)));
        assert_eq!(v.verified(), 2, "stopped at the first k-within-bound");
        assert!(v.kth_within(1.5));
    }

    #[test]
    fn prefiltered_verifier_matches_exact_and_prunes() {
        let d = data();
        let q = [0.0f32, 0.0];
        let store = Sq8Store::learn_and_build(d.dim(), d.flat());
        let mut exact = Verifier::new(&d, &q, 2, 100);
        let mut filtered = Verifier::with_prefilter(&d, &q, 2, 100, &store);
        // first block fills the top (threshold infinite: nothing pruned)
        for v in [&mut exact, &mut filtered] {
            assert!(v.offer_block(&[0, 1], None));
        }
        assert_eq!(filtered.stats.prefilter_pruned, 0);
        assert_eq!(filtered.stats.prefilter_survivors, 2);
        // second block: ids 2/3/4 all lie beyond the k-th distance (1.0),
        // so the pre-filter should drop them before the exact kernel —
        // while answers and shared work counters stay byte-identical
        for v in [&mut exact, &mut filtered] {
            assert!(v.offer_block(&[2, 3, 4], None));
        }
        assert_eq!(filtered.top, exact.top);
        assert_eq!(filtered.verified(), exact.verified());
        assert_eq!(filtered.stats.candidates, exact.stats.candidates);
        assert_eq!(filtered.stats.index_probes, exact.stats.index_probes);
        assert_eq!(exact.stats.prefilter_pruned, 0);
        assert_eq!(exact.stats.prefilter_survivors, 0);
        assert_eq!(
            filtered.stats.prefilter_pruned + filtered.stats.prefilter_survivors,
            5,
            "both blocks were screened"
        );
        assert!(filtered.stats.prefilter_pruned > 0, "nothing was pruned");
        // the one-at-a-time path agrees too
        let mut single = Verifier::new(&d, &q, 2, 100);
        for id in [0u32, 1, 2, 3, 4] {
            single.offer(id);
        }
        assert_eq!(single.top, filtered.top);
    }

    #[test]
    fn visited_bitset() {
        let mut v = Visited::new(130);
        assert!(v.insert(0));
        assert!(v.insert(64));
        assert!(v.insert(129));
        assert!(!v.insert(64));
        assert!(v.contains(129));
        assert!(!v.contains(1));
    }

    #[test]
    fn bucket_key_distinguishes_cells() {
        assert_ne!(bucket_key(&[0, 1]), bucket_key(&[1, 0]));
        assert_ne!(bucket_key(&[5]), bucket_key(&[-5]));
        assert_eq!(bucket_key(&[3, 4, 5]), bucket_key(&[3, 4, 5]));
    }
}
