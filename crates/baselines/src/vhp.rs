//! VHP — approximate NN via Virtual Hypersphere Partitioning (Lu, Wang,
//! Wang, Kudo; PVLDB 2020). A C2-family method: same per-projection
//! B+-tree expansion as QALSH, but a point is admitted for verification
//! only if it falls inside a *virtual hypersphere* in the projected
//! space, which is a strictly tighter region than QALSH's count-only rule
//! and yields fewer, higher-quality candidates per round.
//!
//! Implementation (documented approximation, DESIGN.md §4): points reach
//! collision threshold `l` exactly as in QALSH; the admission then checks
//! the *exact projected Euclidean distance* over all `m` projections
//! against the hypersphere radius `t0 * (w R / 2) * sqrt(m)` (`t0 = 1.4`,
//! the paper's setting). The hypersphere test costs `O(m)` per admitted
//! point, which matches VHP's accounting of projected-distance work.

use std::sync::Arc;

use dblsh_bptree::BPlusTree;
use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::Verifier;
use crate::qalsh::QalshParams;

/// VHP parameters: QALSH base plus the hypersphere scale `t0`.
#[derive(Debug, Clone)]
pub struct VhpParams {
    pub base: QalshParams,
    /// Hypersphere radius scale (paper setting 1.4).
    pub t0: f64,
}

impl VhpParams {
    pub fn derive(n: usize, c: f64) -> Self {
        VhpParams {
            base: QalshParams::derive(n, c).with_seed(0x0000_EEA7),
            t0: 1.4,
        }
    }

    pub fn with_r_min(mut self, r_min: f64) -> Self {
        self.base = self.base.with_r_min(r_min);
        self
    }
}

/// A built VHP index.
pub struct Vhp {
    params: VhpParams,
    proj: Vec<f64>,
    trees: Vec<BPlusTree>,
    /// Projected coordinates `[n][m]` for the hypersphere admission test.
    projected: Vec<f64>,
    data: Arc<Dataset>,
}

impl Vhp {
    pub fn build(data: Arc<Dataset>, params: &VhpParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.t0 > 0.0);
        let dim = data.dim();
        let n = data.len();
        let m = params.base.m;
        let mut rng = StdRng::seed_from_u64(params.base.seed);
        let proj: Vec<f64> = (0..m * dim).map(|_| normal(&mut rng)).collect();

        let mut projected = vec![0.0f64; n * m];
        let mut trees = Vec::with_capacity(m);
        let mut pairs: Vec<(f64, u32)> = Vec::with_capacity(n);
        for i in 0..m {
            let row = &proj[i * dim..(i + 1) * dim];
            pairs.clear();
            for p in 0..n {
                let v = dot(row, data.point(p));
                projected[p * m + i] = v;
                pairs.push((v, p as u32));
            }
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            trees.push(BPlusTree::bulk_build(&pairs));
        }
        Vhp {
            params: params.clone(),
            proj,
            trees,
            projected,
            data,
        }
    }

    pub fn params(&self) -> &VhpParams {
        &self.params
    }
}

impl AnnIndex for Vhp {
    fn name(&self) -> &'static str {
        "VHP"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let p = &self.params.base;
        let m = p.m;
        let dim = self.data.dim();
        let n = self.data.len();
        let budget = (p.beta * n as f64).ceil() as usize + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        let anchors: Vec<f64> = (0..m)
            .map(|i| dot(&self.proj[i * dim..(i + 1) * dim], query))
            .collect();
        let mut cursors: Vec<_> = self
            .trees
            .iter()
            .zip(&anchors)
            .map(|(t, &a)| t.cursor_at(a))
            .collect();
        let mut counts = vec![0u16; n];
        let threshold = p.l.min(p.m) as u16;

        let mut r = p.r_min;
        'outer: for _ in 0..p.max_rounds {
            verifier.stats.rounds += 1;
            let half_width = p.w * r / 2.0;
            let cr = p.c * r;
            // virtual hypersphere radius in the m-d projected space
            let sphere2 = {
                let rad = self.params.t0 * half_width * (m as f64).sqrt();
                rad * rad
            };
            for (i, cur) in cursors.iter_mut().enumerate() {
                let anchor = anchors[i];
                loop {
                    let l_ok = cur
                        .peek_left()
                        .is_some_and(|v| (anchor - v).abs() <= half_width);
                    let r_ok = cur
                        .peek_right()
                        .is_some_and(|v| (v - anchor).abs() <= half_width);
                    let step = match (l_ok, r_ok) {
                        (false, false) => None,
                        (true, false) => cur.next_left(),
                        (false, true) => cur.next_right(),
                        (true, true) => cur.next_closest(anchor),
                    };
                    let Some((_, id)) = step else { break };
                    let cnt = &mut counts[id as usize];
                    *cnt += 1;
                    if *cnt != threshold {
                        verifier.stats.index_probes += 1;
                        continue;
                    }
                    // hypersphere admission on the exact projected distance
                    let pd2 = proj_dist2(
                        &self.projected[id as usize * m..(id as usize + 1) * m],
                        &anchors,
                    );
                    if pd2 > sphere2 {
                        // rejected now; allow future rounds to re-admit
                        *cnt = threshold - 1;
                        verifier.stats.index_probes += 1;
                        continue;
                    }
                    if !verifier.offer(id) {
                        break 'outer;
                    }
                }
            }
            if verifier.kth_within(cr) || verifier.saturated() {
                break;
            }
            r *= p.c;
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.params.base.m * self.data.len() * 12 + self.projected.len() * 8 + self.proj.len() * 8
    }
}

#[inline]
fn proj_dist2(point: &[f64], anchor: &[f64]) -> f64 {
    point
        .iter()
        .zip(anchor)
        .map(|(a, b)| (a - b) * (a - b))
        .sum()
}

#[inline]
fn dot(a: &[f64], x: &[f32]) -> f64 {
    a.iter().zip(x).map(|(&p, &v)| p * v as f64).sum()
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 77,
        });
        let queries = split_queries(&mut data, 12, 9);
        let data = Arc::new(data);
        let params = VhpParams::derive(data.len(), 1.5).with_r_min(0.5);
        let idx = Vhp::build(Arc::clone(&data), &params);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.5, "mean recall too low: {mean}");
    }

    #[test]
    fn admission_is_tighter_than_qalsh() {
        // With identical budgets VHP should verify no more candidates than
        // QALSH on the same query (the hypersphere only rejects).
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 2000,
            dim: 16,
            seed: 3,
            ..Default::default()
        }));
        let vp = VhpParams::derive(data.len(), 1.5).with_r_min(0.5);
        let qp = QalshParams {
            seed: vp.base.seed,
            ..QalshParams::derive(data.len(), 1.5).with_r_min(0.5)
        };
        let vhp = Vhp::build(Arc::clone(&data), &vp);
        let qalsh = crate::qalsh::Qalsh::build(Arc::clone(&data), &qp);
        let q = data.point(0);
        let a = vhp.search(q, 10).unwrap();
        let b = qalsh.search(q, 10).unwrap();
        assert!(
            a.stats.candidates <= b.stats.candidates + 5,
            "VHP {} vs QALSH {}",
            a.stats.candidates,
            b.stats.candidates
        );
    }
}
