//! QALSH — query-aware LSH with collision counting (Huang et al., PVLDB
//! 2015); the representative of the C2 family in the DB-LSH evaluation
//! (R2LSH and VHP are its descendants).
//!
//! Indexing: `m` one-dimensional Gaussian projections `h_i(o) = a_i . o`;
//! each projection is a B+-tree over `(h_i(o), id)`.
//!
//! Query (virtual rehashing): anchor a bidirectional cursor at `h_i(q)` in
//! every tree. At round `R = 1, c, c^2, ...` each cursor consumes entries
//! while `|h_i(o) - h_i(q)| <= w R / 2` (the query-centric 1-d bucket).
//! Every consumed entry increments the point's collision count; a point
//! whose count reaches the threshold `l` becomes a candidate and is
//! verified against the original vectors. Termination (the two QALSH
//! conditions): at least `k` results within `c R` at the end of a round,
//! or `beta n + k` candidates verified.
//!
//! Parameters follow the QALSH paper's Chernoff-bound derivation:
//! `p1 = p(1; w)`, `p2 = p(c; w)`, `alpha = (p1 + p2) / 2`, error bound
//! `delta = 1/e`, false-positive rate `beta = 100/n`, and
//! `m = ceil(max(ln(1/delta) / (2 (p1-alpha)^2), ln(2/beta) / (2 (alpha-p2)^2)))`,
//! `l = ceil(alpha m)`.

use std::sync::Arc;

use dblsh_bptree::BPlusTree;
use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use dblsh_math::p_dynamic;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::Verifier;

/// QALSH parameters.
#[derive(Debug, Clone)]
pub struct QalshParams {
    /// Approximation ratio `c > 1`.
    pub c: f64,
    /// 1-d bucket width `w` (QALSH default: `sqrt((8 c^2 ln c)/(c^2 - 1))`).
    pub w: f64,
    /// Number of projections (derived if built via [`QalshParams::derive`]).
    pub m: usize,
    /// Collision threshold.
    pub l: usize,
    /// Verification cap fraction: verify at most `beta n + k` candidates.
    pub beta: f64,
    /// Radius ladder start.
    pub r_min: f64,
    /// Ladder safety cap.
    pub max_rounds: usize,
    pub seed: u64,
}

impl QalshParams {
    /// Derive `(m, l)` from the Chernoff bounds for a dataset of size `n`.
    pub fn derive(n: usize, c: f64) -> Self {
        assert!(c > 1.0, "approximation ratio must exceed 1");
        assert!(n >= 2);
        // QALSH's width minimizing m for given c:
        let w = (8.0 * c * c * (c).ln() / (c * c - 1.0)).sqrt();
        let p1 = p_dynamic(1.0, w);
        let p2 = p_dynamic(c, w);
        let alpha = (p1 + p2) / 2.0;
        let delta = 1.0 / std::f64::consts::E;
        let beta = (100.0 / n as f64).min(0.1);
        let m1 = (1.0 / delta).ln() / (2.0 * (p1 - alpha).powi(2));
        let m2 = (2.0 / beta).ln() / (2.0 * (alpha - p2).powi(2));
        let m = m1.max(m2).ceil() as usize;
        let l = (alpha * m as f64).ceil() as usize;
        QalshParams {
            c,
            w,
            m: m.max(1),
            l: l.max(1),
            beta,
            r_min: 1.0,
            max_rounds: 64,
            seed: 0x009A_1511,
        }
    }

    pub fn with_r_min(mut self, r_min: f64) -> Self {
        assert!(r_min > 0.0 && r_min.is_finite());
        self.r_min = r_min;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A built QALSH index.
pub struct Qalsh {
    params: QalshParams,
    /// `m` projection vectors, laid out `[m][dim]`.
    proj: Vec<f64>,
    trees: Vec<BPlusTree>,
    data: Arc<Dataset>,
}

impl Qalsh {
    pub fn build(data: Arc<Dataset>, params: &QalshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let proj: Vec<f64> = (0..params.m * dim).map(|_| normal(&mut rng)).collect();

        let mut trees = Vec::with_capacity(params.m);
        let mut pairs: Vec<(f64, u32)> = Vec::with_capacity(n);
        for i in 0..params.m {
            let row = &proj[i * dim..(i + 1) * dim];
            pairs.clear();
            for p in 0..n {
                pairs.push((dblsh_data::kernels::dot_f64(row, data.point(p)), p as u32));
            }
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            trees.push(BPlusTree::bulk_build(&pairs));
        }
        Qalsh {
            params: params.clone(),
            proj,
            trees,
            data,
        }
    }

    pub fn params(&self) -> &QalshParams {
        &self.params
    }

    /// `h_1(q)..h_m(q)` through the shared blocked matvec (row pairs
    /// share each query load) over the flat `[m][dim]` projection panel.
    fn project_query(&self, q: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.params.m];
        dblsh_data::kernels::matvec(&self.proj, self.data.dim(), q, &mut out);
        out
    }
}

impl AnnIndex for Qalsh {
    fn name(&self) -> &'static str {
        "QALSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let p = &self.params;
        let n = self.data.len();
        let budget = (p.beta * n as f64).ceil() as usize + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        let anchors = self.project_query(query);
        let mut cursors: Vec<_> = self
            .trees
            .iter()
            .zip(&anchors)
            .map(|(t, &a)| t.cursor_at(a))
            .collect();
        let mut counts = vec![0u16; n];
        let threshold = p.l.min(p.m) as u16;

        let mut r = p.r_min;
        'outer: for _ in 0..p.max_rounds {
            verifier.stats.rounds += 1;
            let half_width = p.w * r / 2.0;
            let cr = p.c * r;
            for (i, cur) in cursors.iter_mut().enumerate() {
                let anchor = anchors[i];
                loop {
                    // Consume only entries inside the current 1-d bucket;
                    // out-of-bucket entries stay for larger rounds (the
                    // cursor advances destructively).
                    let l_ok = cur
                        .peek_left()
                        .is_some_and(|v| (anchor - v).abs() <= half_width);
                    let r_ok = cur
                        .peek_right()
                        .is_some_and(|v| (v - anchor).abs() <= half_width);
                    let step = match (l_ok, r_ok) {
                        (false, false) => None,
                        (true, false) => cur.next_left(),
                        (false, true) => cur.next_right(),
                        (true, true) => cur.next_closest(anchor),
                    };
                    let Some((_, id)) = step else { break };
                    let cnt = &mut counts[id as usize];
                    *cnt += 1;
                    if *cnt == threshold {
                        if !verifier.offer(id) {
                            break 'outer; // beta n + k verified
                        }
                    } else {
                        verifier.stats.index_probes += 1;
                    }
                }
            }
            // QALSH terminates a round if k results are within c*R
            if verifier.kth_within(cr) || verifier.saturated() {
                break;
            }
            r *= p.c;
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        // m B+-trees of n (f64, u32) pairs plus the projection matrix
        self.params.m * self.data.len() * 12 + self.proj.len() * 8
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn derived_parameters_are_sane() {
        let p = QalshParams::derive(100_000, 1.5);
        assert!(p.m >= 10 && p.m <= 1000, "m = {}", p.m);
        assert!(p.l <= p.m);
        assert!(p.w > 0.0);
        // threshold between the two collision probabilities
        let p1 = p_dynamic(1.0, p.w);
        let p2 = p_dynamic(p.c, p.w);
        let alpha = p.l as f64 / p.m as f64;
        assert!(alpha < p1 && alpha > p2 * 0.9);
    }

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 31,
        });
        let queries = split_queries(&mut data, 12, 6);
        let data = Arc::new(data);
        let params = QalshParams::derive(data.len(), 1.5).with_r_min(0.5);
        let idx = Qalsh::build(Arc::clone(&data), &params);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.6, "mean recall too low: {mean}");
    }

    #[test]
    fn verification_cap_respected() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 2000,
            dim: 16,
            ..Default::default()
        }));
        let params = QalshParams::derive(data.len(), 1.5).with_r_min(0.25);
        let idx = Qalsh::build(Arc::clone(&data), &params);
        let res = idx.search(data.point(0), 5).unwrap();
        let cap = (params.beta * 2000.0).ceil() as usize + 5;
        assert!(res.stats.candidates <= cap);
    }
}
