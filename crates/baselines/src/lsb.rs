//! LSB-Forest — Locality-Sensitive B-trees (Tao, Yi, Sheng, Kalnis;
//! SIGMOD 2009): quantize `m` E2 hash values onto a `2^u` grid, interleave
//! the bits into a Z-order (Morton) code, and keep `L` such trees. A query
//! walks each tree bidirectionally from the query code's position; the
//! candidate with the globally longest common Z-order prefix (LLCP) is
//! processed first, because a long shared prefix means a small shared
//! grid cell and hence a close projected point.
//!
//! Simplifications versus the disk-based original (DESIGN.md §4): the
//! B-trees holding the Z-order codes become sorted in-memory arrays (the
//! candidate *order* — LLCP-descending — is identical, and the paper
//! itself measures only CPU time for disk methods); the `4Bl/d` leaf
//! accounting becomes an explicit verification budget `beta n + k`; the
//! quality termination keeps the LSB rule's shape: stop once the current
//! k-th distance is below `c` times the cell diameter implied by the best
//! remaining LLCP level.

use std::sync::Arc;

use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::Verifier;

/// LSB-Forest parameters.
#[derive(Debug, Clone)]
pub struct LsbParams {
    /// Dimensions of the Z-order grid (hash functions per tree).
    pub m: usize,
    /// Bits per dimension; `m * u` must be <= 64.
    pub u: usize,
    /// Number of trees.
    pub trees: usize,
    /// Approximation ratio used in the quality stop rule (LSB requires
    /// c >= 2; the harness still *queries* it with the shared k).
    pub c: f64,
    /// Verification cap fraction.
    pub beta: f64,
    pub seed: u64,
}

impl Default for LsbParams {
    fn default() -> Self {
        LsbParams {
            m: 12,
            u: 4,
            trees: 10,
            c: 2.0,
            beta: 0.05,
            seed: 0x0001_5BF0,
        }
    }
}

struct ZTree {
    /// `(code, id)` sorted by code; codes are left-aligned in the u64.
    entries: Vec<(u64, u32)>,
    /// `[m][dim]` projections and offsets of this tree's E2 functions.
    a: Vec<f64>,
    b: Vec<f64>,
    /// Per-dimension quantization: `cell = clamp((v - lo) / width)`.
    lo: Vec<f64>,
    width: Vec<f64>,
}

/// A built LSB-Forest.
pub struct LsbForest {
    params: LsbParams,
    forest: Vec<ZTree>,
    data: Arc<Dataset>,
    code_bits: u32,
}

impl LsbForest {
    pub fn build(data: Arc<Dataset>, params: &LsbParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.m >= 1 && params.u >= 1 && params.trees >= 1);
        assert!(params.m * params.u <= 64, "code must fit in 64 bits");
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let cells = (1u64 << params.u) as f64;

        let mut forest = Vec::with_capacity(params.trees);
        for _ in 0..params.trees {
            let a: Vec<f64> = (0..params.m * dim).map(|_| normal(&mut rng)).collect();
            let b: Vec<f64> = (0..params.m).map(|_| rng.gen::<f64>()).collect();
            // project everything once to learn the per-dim value range
            let mut proj = vec![0.0f64; n * params.m];
            for row in 0..n {
                let point = data.point(row);
                for j in 0..params.m {
                    proj[row * params.m + j] = dot(&a[j * dim..(j + 1) * dim], point) + b[j];
                }
            }
            let mut lo = vec![f64::INFINITY; params.m];
            let mut hi = vec![f64::NEG_INFINITY; params.m];
            for row in 0..n {
                for j in 0..params.m {
                    let v = proj[row * params.m + j];
                    lo[j] = lo[j].min(v);
                    hi[j] = hi[j].max(v);
                }
            }
            let width: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| ((h - l) / cells).max(f64::MIN_POSITIVE))
                .collect();

            let mut entries: Vec<(u64, u32)> = (0..n)
                .map(|row| {
                    let g = &proj[row * params.m..(row + 1) * params.m];
                    (
                        morton_encode(g, &lo, &width, params.m, params.u),
                        row as u32,
                    )
                })
                .collect();
            entries.sort_unstable();
            forest.push(ZTree {
                entries,
                a,
                b,
                lo,
                width,
            });
        }

        LsbForest {
            params: params.clone(),
            forest,
            data,
            code_bits: (params.m * params.u) as u32,
        }
    }

    pub fn params(&self) -> &LsbParams {
        &self.params
    }

    fn query_code(&self, tree: &ZTree, q: &[f32]) -> u64 {
        let dim = self.data.dim();
        let g: Vec<f64> = (0..self.params.m)
            .map(|j| dot(&tree.a[j * dim..(j + 1) * dim], q) + tree.b[j])
            .collect();
        morton_encode(&g, &tree.lo, &tree.width, self.params.m, self.params.u)
    }
}

/// Quantize and bit-interleave (MSB-first) into a left-aligned u64 code.
fn morton_encode(g: &[f64], lo: &[f64], width: &[f64], m: usize, u: usize) -> u64 {
    let max_cell = (1u64 << u) - 1;
    let mut code = 0u64;
    for bit in (0..u).rev() {
        for j in 0..m {
            let cell = (((g[j] - lo[j]) / width[j]).floor().max(0.0) as u64).min(max_cell);
            code = (code << 1) | ((cell >> bit) & 1);
        }
    }
    code << (64 - (m * u) as u32)
}

/// Longest common prefix (in bits) of two left-aligned codes.
#[inline]
fn llcp(a: u64, b: u64, total_bits: u32) -> u32 {
    (a ^ b).leading_zeros().min(total_bits)
}

impl AnnIndex for LsbForest {
    fn name(&self) -> &'static str {
        "LSB-Forest"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let p = &self.params;
        let n = self.data.len();
        let budget = (p.beta * n as f64).ceil() as usize + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        verifier.stats.rounds = 1;

        // Two scan heads per tree, anchored at the query code position.
        struct Head {
            tree: usize,
            idx: isize,
            step: isize, // -1 walks left, +1 walks right
        }
        let mut qcodes = Vec::with_capacity(self.forest.len());
        let mut heads = Vec::with_capacity(self.forest.len() * 2);
        for (ti, tree) in self.forest.iter().enumerate() {
            let qc = self.query_code(tree, query);
            let pos = tree.entries.partition_point(|&(code, _)| code < qc) as isize;
            heads.push(Head {
                tree: ti,
                idx: pos - 1,
                step: -1,
            });
            heads.push(Head {
                tree: ti,
                idx: pos,
                step: 1,
            });
            qcodes.push(qc);
        }

        loop {
            // pick the head whose current entry shares the longest prefix
            let mut best: Option<(u32, usize)> = None;
            for (hi, h) in heads.iter().enumerate() {
                let entries = &self.forest[h.tree].entries;
                if h.idx < 0 || h.idx as usize >= entries.len() {
                    continue;
                }
                let code = entries[h.idx as usize].0;
                let level = llcp(code, qcodes[h.tree], self.code_bits);
                if best.is_none_or(|(b, _)| level > b) {
                    best = Some((level, hi));
                }
            }
            let Some((_level, hi)) = best else { break };

            // Note on termination: the original LSB quality rule compares
            // the k-th distance against the grid-cell diameter of the
            // current LLCP level. Projected cell widths here are learned
            // from the data range, which makes that comparison scale-
            // dependent and unreliable on unnormalized data; like the
            // paper's own experimental configuration (which raises the
            // leaf-entry budget 10x to reach comparable accuracy), we run
            // the scan to the explicit verification budget instead.

            let h = &mut heads[hi];
            let id = self.forest[h.tree].entries[h.idx as usize].1;
            h.idx += h.step;
            if !verifier.offer(id) {
                break;
            }
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.forest
            .iter()
            .map(|t| t.entries.len() * 12 + t.a.len() * 8 + t.b.len() * 8 + t.lo.len() * 16)
            .sum()
    }
}

#[inline]
fn dot(a: &[f64], x: &[f32]) -> f64 {
    a.iter().zip(x).map(|(&p, &v)| p * v as f64).sum()
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn morton_prefix_reflects_proximity() {
        let lo = vec![0.0, 0.0];
        let width = vec![1.0, 1.0];
        let a = morton_encode(&[3.0, 5.0], &lo, &width, 2, 4);
        let b = morton_encode(&[3.4, 5.2], &lo, &width, 2, 4); // same cell
        let c = morton_encode(&[12.0, 1.0], &lo, &width, 2, 4); // far cell
        assert_eq!(a, b);
        assert!(llcp(a, c, 8) < 8);
    }

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 13,
        });
        let queries = split_queries(&mut data, 12, 1);
        let data = Arc::new(data);
        let idx = LsbForest::build(Arc::clone(&data), &LsbParams::default());
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        // LSB-Forest is the weakest method in the paper's Table IV; it
        // must still clearly beat random guessing.
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.2, "mean recall too low: {mean}");
    }

    #[test]
    fn budget_respected() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 2000,
            dim: 16,
            ..Default::default()
        }));
        let params = LsbParams::default();
        let idx = LsbForest::build(Arc::clone(&data), &params);
        let res = idx.search(data.point(0), 10).unwrap();
        let cap = (params.beta * 2000.0).ceil() as usize + 10;
        assert!(res.stats.candidates <= cap);
    }

    #[test]
    #[should_panic(expected = "fit in 64 bits")]
    fn oversized_code_rejected() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 100,
            dim: 8,
            ..Default::default()
        }));
        LsbForest::build(
            data,
            &LsbParams {
                m: 20,
                u: 4,
                ..Default::default()
            },
        );
    }
}
