//! PM-LSH — the dynamic metric-query (MQ) representative (Zheng et al.,
//! PVLDB 2020): project into a single low-dimensional space, retrieve
//! candidates in *ascending projected distance* by exact incremental NN
//! search, verify until `beta n + k` candidates.
//!
//! Substitution documented in DESIGN.md §4: the original indexes the
//! projected space with a PM-tree; we use this workspace's R*-tree with
//! best-first incremental NN (Hjaltason–Samet). Both produce candidates in
//! exactly ascending projected distance — the property PM-LSH's quality
//! analysis rests on — so the substitution changes constants, not
//! behaviour.
//!
//! Early termination: `E[||G(o) - G(q)||^2] = m ||o - q||^2` for Gaussian
//! projections, so once the next projected distance exceeds
//! `sqrt(m) * c * (current k-th true distance)` no remaining point can beat
//! the current top-k estimate and the scan stops (the tighter of this and
//! the `beta n + k` cap wins).

use std::sync::Arc;

use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use dblsh_index::{RStarTree, StridedCoords};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::Verifier;

/// PM-LSH parameters (paper settings: `m = 15`, `c = 1.5`).
#[derive(Debug, Clone)]
pub struct PmLshParams {
    /// Projected dimensionality.
    pub m: usize,
    /// Approximation ratio used in the early-termination test.
    pub c: f64,
    /// Verification cap fraction.
    pub beta: f64,
    pub seed: u64,
}

impl Default for PmLshParams {
    fn default() -> Self {
        PmLshParams {
            m: 15,
            c: 1.5,
            beta: 0.02,
            seed: 0x0009_3137,
        }
    }
}

/// A built PM-LSH index.
pub struct PmLsh {
    params: PmLshParams,
    /// Projection matrix `[m][dim]`.
    proj: Vec<f64>,
    /// Projected dataset, row-major `n x m`, stored at `f32` (the
    /// dataset's own precision) — the single coordinate store the
    /// id-only tree resolves leaf entries through.
    projected: Vec<f32>,
    tree: RStarTree,
    data: Arc<Dataset>,
}

impl PmLsh {
    pub fn build(data: Arc<Dataset>, params: &PmLshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.m >= 1 && params.c > 1.0 && params.beta > 0.0);
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let proj: Vec<f64> = (0..params.m * dim).map(|_| normal(&mut rng)).collect();

        let mut projected = vec![0.0f32; n * params.m];
        let mut scratch = vec![0.0f64; params.m];
        for row in 0..n {
            dblsh_data::kernels::matvec(&proj, dim, data.point(row), &mut scratch);
            for (dst, &v) in projected[row * params.m..(row + 1) * params.m]
                .iter_mut()
                .zip(&scratch)
            {
                *dst = v as f32;
            }
        }
        let ids: Vec<u32> = (0..n as u32).collect();
        let tree = RStarTree::bulk_load(&StridedCoords::flat(params.m, &projected), &ids);

        PmLsh {
            params: params.clone(),
            proj,
            projected,
            tree,
            data,
        }
    }

    pub fn params(&self) -> &PmLshParams {
        &self.params
    }

    /// `G(q)` through the shared blocked matvec (row pairs share each
    /// query load) into the reusable flat projection layout.
    fn project_query(&self, q: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.params.m];
        dblsh_data::kernels::matvec(&self.proj, self.data.dim(), q, &mut out);
        out
    }
}

impl AnnIndex for PmLsh {
    fn name(&self) -> &'static str {
        "PM-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        /// Candidates drained from the ascending-projected-distance
        /// stream per verification block; the early-termination `d_k` is
        /// frozen during one drain, so the test lags by at most a block.
        const PM_BLOCK: usize = 16;
        check_query(self.data.dim(), query, k)?;
        let p = &self.params;
        let n = self.data.len();
        let budget = (p.beta * n as f64).ceil() as usize + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        verifier.stats.rounds = 1;
        let qproj = self.project_query(query);
        let stop_scale = (p.m as f64).sqrt() * p.c;

        let coords = StridedCoords::flat(self.params.m, &self.projected);
        let mut stream = self.tree.nearest_iter(&coords, &qproj).peekable();
        let mut block: Vec<u32> = Vec::with_capacity(PM_BLOCK);
        loop {
            // Drain phase: up to PM_BLOCK candidates still inside the
            // projected-distance termination bound.
            block.clear();
            let kth = verifier.kth_dist();
            let mut dry = false;
            while block.len() < PM_BLOCK {
                let Some(&(_, proj_d2)) = stream.peek() else {
                    dry = true;
                    break;
                };
                if kth.is_finite() && proj_d2.sqrt() > stop_scale * kth {
                    dry = true;
                    break;
                }
                block.push(stream.next().expect("peeked").0);
            }
            // Verify phase: blocked kernel, canonical consumption.
            if !block.is_empty() && !verifier.offer_block(&block, None) {
                break;
            }
            if dry {
                break;
            }
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.tree.approx_memory() + self.projected.len() * 4 + self.proj.len() * 8
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 41,
        });
        let queries = split_queries(&mut data, 15, 2);
        let data = Arc::new(data);
        let idx = PmLsh::build(Arc::clone(&data), &PmLshParams::default());
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.8, "mean recall too low: {mean}");
    }

    #[test]
    fn verification_cap() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 2000,
            dim: 16,
            ..Default::default()
        }));
        let params = PmLshParams::default();
        let idx = PmLsh::build(Arc::clone(&data), &params);
        let res = idx.search(data.point(5), 10).unwrap();
        let cap = (params.beta * 2000.0).ceil() as usize + 10;
        assert!(res.stats.candidates <= cap);
        assert!(idx.index_size_bytes() > 0);
    }

    #[test]
    fn query_point_finds_itself() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 12,
            ..Default::default()
        }));
        let idx = PmLsh::build(Arc::clone(&data), &PmLshParams::default());
        let res = idx.search(data.point(7), 1).unwrap();
        assert_eq!(res.neighbors[0].id, 7);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }
}
