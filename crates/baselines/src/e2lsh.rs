//! E2LSH — the classic static `(K, L)`-index of Datar et al. (2004),
//! using the floor-quantized hash family of paper Eq. 1:
//! `h(o) = floor((a.o + b) / w)`, `b ~ U[0, w)`.
//!
//! To answer c-ANN, E2LSH needs a `(K, L)`-index *per radius* ("E2LSH
//! needs to prepare a (K,L)-index for each (r,c)-NN", Section I) — the
//! `M` factor in its Table I index size. This implementation builds one
//! independent table set per ladder radius, each with freshly drawn hash
//! functions and offsets, which is exactly the memory-hungry construction
//! DB-LSH eliminates.

use std::collections::HashMap;
use std::sync::Arc;

use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::{bucket_key, Verifier};

/// E2LSH parameters.
#[derive(Debug, Clone)]
pub struct E2LshParams {
    /// Approximation ratio (ladder step).
    pub c: f64,
    /// Hash functions per table.
    pub k: usize,
    /// Tables per radius.
    pub l: usize,
    /// Quantization width at radius 1 (scaled by `r` per level).
    pub w0: f64,
    /// Radius ladder start.
    pub r_min: f64,
    /// Number of radii to prepare (the `M` of Table I).
    pub radii: usize,
    /// Verification budget per query: `2 t L + k` like the DB-LSH
    /// accounting, so the comparison is apples-to-apples.
    pub t: usize,
    pub seed: u64,
}

impl E2LshParams {
    /// Defaults mirroring the DB-LSH experimental configuration.
    pub fn paper_like(n: usize) -> Self {
        let c = 1.5;
        E2LshParams {
            c,
            k: if n > 1_000_000 { 12 } else { 10 },
            l: 5,
            w0: 4.0 * c * c,
            r_min: 1.0,
            radii: 12,
            t: 64,
            seed: 0x000E_2154,
        }
    }

    pub fn with_r_min(mut self, r_min: f64) -> Self {
        assert!(r_min > 0.0 && r_min.is_finite());
        self.r_min = r_min;
        self
    }
}

struct RadiusIndex {
    /// `[l][k][dim]` projection coefficients.
    a: Vec<f64>,
    /// `[l][k]` offsets.
    b: Vec<f64>,
    /// quantization width at this radius.
    w: f64,
    tables: Vec<HashMap<u64, Vec<u32>>>,
}

/// A built E2LSH multi-radius index.
pub struct E2Lsh {
    params: E2LshParams,
    per_radius: Vec<RadiusIndex>,
    data: Arc<Dataset>,
}

impl E2Lsh {
    pub fn build(data: Arc<Dataset>, params: &E2LshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.k >= 1 && params.l >= 1 && params.radii >= 1);
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut per_radius = Vec::with_capacity(params.radii);
        let mut r = params.r_min;
        for _ in 0..params.radii {
            let w = params.w0 * r;
            let a: Vec<f64> = (0..params.l * params.k * dim)
                .map(|_| normal(&mut rng))
                .collect();
            let b: Vec<f64> = (0..params.l * params.k)
                .map(|_| rng.gen_range(0.0..w))
                .collect();
            let mut tables = Vec::with_capacity(params.l);
            let mut cells = vec![0i64; params.k];
            let mut largest = 0usize;
            for table_i in 0..params.l {
                let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(n / 4);
                for row in 0..n {
                    hash_point(
                        data.point(row),
                        &a,
                        &b,
                        table_i,
                        params.k,
                        dim,
                        w,
                        &mut cells,
                    );
                    let bucket = table.entry(bucket_key(&cells)).or_default();
                    bucket.push(row as u32);
                    largest = largest.max(bucket.len());
                }
                tables.push(table);
            }
            per_radius.push(RadiusIndex { a, b, w, tables });
            if largest * 2 >= n {
                break; // coarser radii have no discriminative power left
            }
            r *= params.c;
        }

        E2Lsh {
            params: params.clone(),
            per_radius,
            data,
        }
    }

    pub fn params(&self) -> &E2LshParams {
        &self.params
    }

    /// Number of radius levels actually materialized.
    pub fn num_radii(&self) -> usize {
        self.per_radius.len()
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn hash_point(
    point: &[f32],
    a: &[f64],
    b: &[f64],
    table: usize,
    k: usize,
    dim: usize,
    w: f64,
    cells: &mut [i64],
) {
    let base = table * k * dim;
    for (j, cell) in cells.iter_mut().enumerate() {
        let row = &a[base + j * dim..base + (j + 1) * dim];
        let dot: f64 = row.iter().zip(point).map(|(&p, &v)| p * v as f64).sum();
        *cell = ((dot + b[table * k + j]) / w).floor() as i64;
    }
}

impl AnnIndex for E2Lsh {
    fn name(&self) -> &'static str {
        "E2LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let p = &self.params;
        let dim = self.data.dim();
        let budget = 2 * p.t * p.l + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        let mut cells = vec![0i64; p.k];

        let mut r = p.r_min;
        'ladder: for ri in &self.per_radius {
            verifier.stats.rounds += 1;
            let cr = p.c * r;
            if verifier.kth_within(cr) {
                break;
            }
            for table_i in 0..p.l {
                hash_point(query, &ri.a, &ri.b, table_i, p.k, dim, ri.w, &mut cells);
                if let Some(bucket) = ri.tables[table_i].get(&bucket_key(&cells)) {
                    // whole-bucket batch through the blocked verifier
                    if !verifier.offer_block(bucket, Some(cr)) {
                        break 'ladder;
                    }
                }
            }
            if verifier.saturated() {
                break;
            }
            r *= p.c;
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.per_radius
            .iter()
            .map(|ri| {
                ri.a.len() * 8
                    + ri.b.len() * 8
                    + ri.tables
                        .iter()
                        .map(|t| {
                            t.len() * (8 + std::mem::size_of::<Vec<u32>>())
                                + t.values().map(|v| v.capacity() * 4).sum::<usize>()
                        })
                        .sum::<usize>()
            })
            .sum()
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 55,
        });
        let queries = split_queries(&mut data, 12, 5);
        let data = Arc::new(data);
        let params = E2LshParams::paper_like(data.len()).with_r_min(0.5);
        let idx = E2Lsh::build(Arc::clone(&data), &params);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.4, "mean recall too low: {mean}");
    }

    #[test]
    fn index_is_larger_than_fb_lsh_style_sharing() {
        // E2LSH rebuilds hash functions per radius: memory grows with the
        // number of materialized radii.
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 16,
            ..Default::default()
        }));
        let params = E2LshParams::paper_like(data.len()).with_r_min(0.5);
        let idx = E2Lsh::build(Arc::clone(&data), &params);
        assert!(idx.num_radii() >= 2);
        assert!(idx.index_size_bytes() > idx.num_radii() * 1000);
    }
}
