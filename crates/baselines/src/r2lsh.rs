//! R2LSH — C2 collision counting over *two-dimensional* projected spaces
//! (Lu & Kudo, ICDE 2020). QALSH maps data onto `m` one-dimensional lines;
//! R2LSH pairs the projections into `m/2` planes and replaces B+-tree
//! range expansion with 2-d range search, which discriminates better per
//! probe (a point must be close in two coordinates at once to collide).
//!
//! Substitution documented in DESIGN.md §4: the original expands 2-d
//! *balls* via B+-tree-organized column stripes; we index each plane with
//! this workspace's 2-d R*-tree and expand query-centric *squares*
//! (`W(center, lambda w R)`), counting first-time window hits as
//! collisions. The square circumscribes the ball of the same radius; the
//! constant-factor region difference is absorbed by the `lambda` scale
//! (paper setting 0.7).

use std::sync::Arc;

use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, SearchResult};
use dblsh_index::{RStarTree, Rect, StridedCoords};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::common::{Verifier, Visited};

/// R2LSH parameters.
#[derive(Debug, Clone)]
pub struct R2LshParams {
    /// Approximation ratio (ladder step).
    pub c: f64,
    /// Total 1-d projections; planes = m / 2 (paper setting m = 40).
    pub m: usize,
    /// Window scale relative to `w R` (paper setting lambda = 0.7).
    pub lambda: f64,
    /// Base width (reuses the QALSH width formula).
    pub w: f64,
    /// Collision threshold over planes.
    pub l: usize,
    /// Verification cap fraction (`beta n + k`).
    pub beta: f64,
    pub r_min: f64,
    pub max_rounds: usize,
    pub seed: u64,
}

impl R2LshParams {
    pub fn derive(n: usize, c: f64) -> Self {
        assert!(c > 1.0 && n >= 2);
        let w = (8.0 * c * c * c.ln() / (c * c - 1.0)).sqrt();
        let m = 40usize;
        let planes = m / 2;
        R2LshParams {
            c,
            m,
            lambda: 0.7,
            w,
            // a near point should collide in most planes; threshold at ~40%
            l: (planes as f64 * 0.4).ceil() as usize,
            beta: (100.0 / n as f64).min(0.1),
            r_min: 1.0,
            max_rounds: 64,
            seed: 0x0004_2158,
        }
    }

    pub fn with_r_min(mut self, r_min: f64) -> Self {
        assert!(r_min > 0.0 && r_min.is_finite());
        self.r_min = r_min;
        self
    }
}

/// A built R2LSH index.
pub struct R2Lsh {
    params: R2LshParams,
    /// `[m][dim]` projection matrix; plane `p` uses rows `2p, 2p+1`.
    proj: Vec<f64>,
    /// Projected dataset: plane `p`'s `n x 2` coordinate block occupies
    /// `coords[p*n*2 .. (p+1)*n*2]` — the id-only plane trees resolve
    /// their leaf entries through per-plane views of this one `f32`
    /// buffer (the dataset's own precision).
    coords: Vec<f32>,
    planes: Vec<RStarTree>,
    data: Arc<Dataset>,
}

impl R2Lsh {
    /// Coordinate view of plane `p`.
    fn plane_coords(&self, p: usize) -> StridedCoords<'_> {
        let n = self.data.len();
        StridedCoords::flat(2, &self.coords[p * n * 2..(p + 1) * n * 2])
    }
}

impl R2Lsh {
    pub fn build(data: Arc<Dataset>, params: &R2LshParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(
            params.m >= 2 && params.m.is_multiple_of(2),
            "m must be even"
        );
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let proj: Vec<f64> = (0..params.m * dim).map(|_| normal(&mut rng)).collect();

        let planes_n = params.m / 2;
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut planes = Vec::with_capacity(planes_n);
        let mut coords = vec![0.0f32; planes_n * n * 2];
        for p in 0..planes_n {
            let ax = &proj[(2 * p) * dim..(2 * p + 1) * dim];
            let ay = &proj[(2 * p + 1) * dim..(2 * p + 2) * dim];
            let block = &mut coords[p * n * 2..(p + 1) * n * 2];
            for row in 0..n {
                let point = data.point(row);
                block[row * 2] = dot(ax, point) as f32;
                block[row * 2 + 1] = dot(ay, point) as f32;
            }
            planes.push(RStarTree::bulk_load(
                &StridedCoords::flat(2, &coords[p * n * 2..(p + 1) * n * 2]),
                &ids,
            ));
        }

        R2Lsh {
            params: params.clone(),
            proj,
            coords,
            planes,
            data,
        }
    }

    pub fn params(&self) -> &R2LshParams {
        &self.params
    }
}

impl AnnIndex for R2Lsh {
    fn name(&self) -> &'static str {
        "R2LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let p = &self.params;
        let dim = self.data.dim();
        let n = self.data.len();
        let planes_n = p.m / 2;
        let budget = (p.beta * n as f64).ceil() as usize + k;
        let mut verifier = Verifier::new(&self.data, query, k, budget);
        let centers: Vec<[f64; 2]> = (0..planes_n)
            .map(|pl| {
                [
                    dot(&self.proj[(2 * pl) * dim..(2 * pl + 1) * dim], query),
                    dot(&self.proj[(2 * pl + 1) * dim..(2 * pl + 2) * dim], query),
                ]
            })
            .collect();

        let mut counts = vec![0u16; n];
        // per-plane visited sets: a point is one collision per plane, and
        // windows are nested across rounds, so re-hits must not recount.
        let mut seen: Vec<Visited> = (0..planes_n).map(|_| Visited::new(n)).collect();
        let threshold = (p.l as u16).min(planes_n as u16);

        let mut r = p.r_min;
        'outer: for _ in 0..p.max_rounds {
            verifier.stats.rounds += 1;
            let cr = p.c * r;
            let side = p.lambda * p.w * r;
            for (pl, tree) in self.planes.iter().enumerate() {
                let view = self.plane_coords(pl);
                let window = Rect::centered_cube(&centers[pl], side);
                for id in tree.window(&view, &window) {
                    if !seen[pl].insert(id) {
                        continue;
                    }
                    let cnt = &mut counts[id as usize];
                    *cnt += 1;
                    if *cnt == threshold {
                        if !verifier.offer(id) {
                            break 'outer;
                        }
                    } else {
                        verifier.stats.index_probes += 1;
                    }
                }
            }
            if verifier.kth_within(cr) || verifier.saturated() {
                break;
            }
            r *= p.c;
        }

        Ok(SearchResult {
            neighbors: verifier.top,
            stats: verifier.stats,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.planes.iter().map(|t| t.approx_memory()).sum::<usize>()
            + self.coords.len() * 4
            + self.proj.len() * 8
    }
}

#[inline]
fn dot(a: &[f64], x: &[f32]) -> f64 {
    a.iter().zip(x).map(|(&p, &v)| p * v as f64).sum()
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::metrics;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};

    #[test]
    fn recall_on_clustered_data() {
        let mut data = gaussian_mixture(&MixtureConfig {
            n: 3000,
            dim: 20,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 91,
        });
        let queries = split_queries(&mut data, 12, 7);
        let data = Arc::new(data);
        let params = R2LshParams::derive(data.len(), 1.5).with_r_min(0.5);
        let idx = R2Lsh::build(Arc::clone(&data), &params);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.search(q, 10).unwrap();
            assert!(got.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.5, "mean recall too low: {mean}");
    }

    #[test]
    fn plane_count_and_memory() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 800,
            dim: 12,
            ..Default::default()
        }));
        let params = R2LshParams::derive(data.len(), 1.5);
        let idx = R2Lsh::build(Arc::clone(&data), &params);
        assert_eq!(idx.planes.len(), params.m / 2);
        assert!(idx.index_size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_m_rejected() {
        let data = Arc::new(gaussian_mixture(&MixtureConfig {
            n: 100,
            dim: 8,
            ..Default::default()
        }));
        let mut params = R2LshParams::derive(100, 1.5);
        params.m = 7;
        R2Lsh::build(data, &params);
    }
}
