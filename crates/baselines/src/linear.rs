//! Exhaustive linear scan — the exact baseline and the reference every
//! approximate method is scored against.

use std::sync::Arc;

use dblsh_data::ground_truth::exact_knn_single;
use dblsh_data::{check_query, AnnIndex, Dataset, DbLshError, QueryStats, SearchResult};

/// Exact k-NN by brute force. `search` is `O(n d)` per query.
#[derive(Debug)]
pub struct LinearScan {
    data: Arc<Dataset>,
}

impl LinearScan {
    pub fn build(data: Arc<Dataset>) -> Self {
        LinearScan { data }
    }

    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

impl AnnIndex for LinearScan {
    fn name(&self) -> &'static str {
        "LinearScan"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), query, k)?;
        let neighbors = exact_knn_single(&self.data, query, k);
        let stats = QueryStats {
            candidates: self.data.len(),
            rounds: 1,
            index_probes: self.data.len(),
            ..Default::default()
        };
        Ok(SearchResult { neighbors, stats })
    }

    fn index_size_bytes(&self) -> usize {
        0 // no index structure beyond the dataset itself
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_results() {
        let data = Arc::new(Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![1.0, 1.0],
        ]));
        let ls = LinearScan::build(Arc::clone(&data));
        let r = ls.search(&[0.0, 0.0], 2).unwrap();
        assert_eq!(r.ids(), vec![0, 2]);
        assert_eq!(r.neighbors[1].dist, (2.0f32).sqrt());
        assert_eq!(r.stats.candidates, 3);
        assert_eq!(ls.index_size_bytes(), 0);
        assert_eq!(ls.name(), "LinearScan");
    }
}
