//! Every comparison algorithm from the DB-LSH evaluation (Table I /
//! Table IV), implemented from scratch on the substrates of this
//! workspace. All of them implement [`dblsh_data::AnnIndex`] so the
//! benchmark harness drives them interchangeably with DB-LSH itself.
//!
//! | Module | Algorithm | Family | Paper |
//! |--------|-----------|--------|-------|
//! | [`linear`] | exhaustive scan | exact | — |
//! | [`fb_lsh`] | FB-LSH | static (K,L)-index, fixed buckets | the DB-LSH paper's own ablation |
//! | [`e2lsh`] | E2LSH | static (K,L)-index | Datar et al. 2004 |
//! | [`qalsh`] | QALSH | collision counting (C2) | Huang et al. 2015 |
//! | [`vhp`] | VHP | C2 + virtual hypersphere | Lu et al. 2020 |
//! | [`r2lsh`] | R2LSH | C2 over 2-d planes | Lu & Kudo 2020 |
//! | [`pm_lsh`] | PM-LSH | dynamic metric query (MQ) | Zheng et al. 2020 |
//! | [`lsb`] | LSB-Forest | static (K,L), Z-order trees | Tao et al. 2009 |
//! | [`lccs`] | LCCS-LSH | circular co-substring search | Lei et al. 2020 |
//!
//! Fidelity notes and intentional simplifications for each baseline are
//! documented in the module docs and in `DESIGN.md` §4.

pub mod common;
pub mod e2lsh;
pub mod fb_lsh;
pub mod lccs;
pub mod linear;
pub mod lsb;
pub mod pm_lsh;
pub mod qalsh;
pub mod r2lsh;
pub mod vhp;

pub use e2lsh::E2Lsh;
pub use fb_lsh::FbLsh;
pub use lccs::LccsLsh;
pub use linear::LinearScan;
pub use lsb::LsbForest;
pub use pm_lsh::PmLsh;
pub use qalsh::Qalsh;
pub use r2lsh::R2Lsh;
pub use vhp::Vhp;
