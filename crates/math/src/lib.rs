//! Numerical substrate for the DB-LSH reproduction.
//!
//! This crate implements, from scratch, every piece of analytic machinery
//! the paper relies on:
//!
//! * the standard normal distribution ([`normal`]): `erf`, pdf `f(x)`,
//!   cdf `Phi(x)` — accurate to ~1e-14 over the ranges used here;
//! * LSH collision probabilities ([`collision`]): the *static* family of
//!   Datar et al. (paper Eq. 2) and the *dynamic* query-centric family
//!   (paper Eq. 4);
//! * the parameter theory of Section V ([`theory`]): `rho*`, the classic
//!   `rho`, the exponent `alpha(gamma)` of Lemma 3, and the `(K, L)`
//!   derivation of Lemma 1 / Observation 1.
//!
//! No external numerics crates are used; all special functions are
//! implemented and unit/property tested in this crate.

pub mod collision;
pub mod integrate;
pub mod normal;
pub mod theory;

pub use collision::{p_dynamic, p_static, p_static_numeric};
pub use normal::{erf, erfc, normal_cdf, normal_pdf};
pub use theory::{alpha_exponent, derive_kl, rho_dynamic, rho_static, DerivedParams};
