//! LSH collision probabilities.
//!
//! Two hash families appear in the paper:
//!
//! * the **static** family of Datar et al. (Eq. 1), `h(o) = floor((a.o + b)/w)`,
//!   with collision probability Eq. 2;
//! * the **dynamic** query-centric family (Eq. 3), `h(o) = a.o`, where `o1`
//!   and `o2` collide iff `|h(o1) - h(o2)| <= w/2`, with collision
//!   probability Eq. 4. DB-LSH and all query-centric baselines use this one.
//!
//! For both families the projection difference `a.(o1 - o2)` is distributed
//! `N(0, tau^2)` where `tau = ||o1 - o2||`, which yields closed forms in
//! terms of `Phi`; the integral definitions are kept (numerically) for
//! cross-validation in tests.

use crate::integrate::adaptive_simpson;
use crate::normal::{normal_cdf, normal_pdf};

/// Collision probability of the *dynamic* family (paper Eq. 4):
///
/// `p(tau; w) = Pr[|a.o1 - a.o2| <= w/2] = 2 Phi(w / (2 tau)) - 1`.
///
/// `tau` is the distance between the points, `w` the query-centric bucket
/// width. `tau = 0` collides with probability 1.
pub fn p_dynamic(tau: f64, w: f64) -> f64 {
    assert!(
        tau >= 0.0 && w >= 0.0,
        "negative arguments: tau={tau} w={w}"
    );
    if tau == 0.0 {
        return 1.0;
    }
    if w == 0.0 {
        return 0.0;
    }
    2.0 * normal_cdf(w / (2.0 * tau)) - 1.0
}

/// Collision probability of the *static* family (paper Eq. 2), closed form
/// from Datar et al. (2004):
///
/// `p(tau; w) = 2 Phi(w/tau) - 1 - 2 tau / (sqrt(2 pi) w) (1 - e^{-w^2/(2 tau^2)})`.
pub fn p_static(tau: f64, w: f64) -> f64 {
    assert!(
        tau >= 0.0 && w >= 0.0,
        "negative arguments: tau={tau} w={w}"
    );
    if tau == 0.0 {
        return 1.0;
    }
    if w == 0.0 {
        return 0.0;
    }
    let r = w / tau;
    2.0 * normal_cdf(r)
        - 1.0
        - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-(r * r) / 2.0).exp())
}

/// Eq. 2 evaluated by direct numerical quadrature:
/// `2 int_0^w (1/tau) f(t/tau) (1 - t/w) dt`. Used to cross-check
/// [`p_static`]; prefer the closed form in production code.
pub fn p_static_numeric(tau: f64, w: f64) -> f64 {
    assert!(tau > 0.0 && w > 0.0);
    adaptive_simpson(
        |t| (1.0 / tau) * normal_pdf(t / tau) * (1.0 - t / w),
        0.0,
        w,
        1e-12,
    ) * 2.0
}

/// Eq. 4 evaluated by direct numerical quadrature:
/// `int_{-w/2tau}^{w/2tau} f(t) dt`. Cross-check for [`p_dynamic`].
pub fn p_dynamic_numeric(tau: f64, w: f64) -> f64 {
    assert!(tau > 0.0 && w > 0.0);
    let b = w / (2.0 * tau);
    adaptive_simpson(normal_pdf, -b.min(40.0), b.min(40.0), 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_closed_form_matches_integral() {
        for tau in [0.25, 0.5, 1.0, 2.0, 5.0] {
            for w in [0.5, 1.0, 4.0, 9.0, 16.0] {
                let a = p_dynamic(tau, w);
                let b = p_dynamic_numeric(tau, w);
                assert!((a - b).abs() < 1e-9, "tau={tau} w={w}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn static_closed_form_matches_integral() {
        for tau in [0.25, 0.5, 1.0, 2.0, 5.0] {
            for w in [0.5, 1.0, 4.0, 9.0, 16.0] {
                let a = p_static(tau, w);
                let b = p_static_numeric(tau, w);
                assert!((a - b).abs() < 1e-9, "tau={tau} w={w}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dynamic_monotone_decreasing_in_tau() {
        let w = 9.0;
        let mut last = 1.0;
        for i in 1..200 {
            let tau = i as f64 * 0.1;
            let p = p_dynamic(tau, w);
            assert!(p <= last + 1e-15, "not monotone at tau={tau}");
            last = p;
        }
    }

    #[test]
    fn dynamic_monotone_increasing_in_w() {
        let tau = 1.5;
        let mut last = 0.0;
        for i in 1..200 {
            let w = i as f64 * 0.1;
            let p = p_dynamic(tau, w);
            assert!(p >= last - 1e-15, "not monotone at w={w}");
            last = p;
        }
    }

    #[test]
    fn observation_1_scale_invariance() {
        // Observation 1: p(r; w0 * r) == p(1; w0) for any r > 0.
        let w0 = 9.0;
        let base = p_dynamic(1.0, w0);
        for r in [0.1, 0.5, 2.0, 10.0, 1234.5] {
            let p = p_dynamic(r, w0 * r);
            assert!((p - base).abs() < 1e-12, "violated at r={r}");
        }
    }

    #[test]
    fn p1_greater_than_p2() {
        // Definition 3 requires p1 > p2 for c > 1.
        for c in [1.1, 1.5, 2.0, 3.0] {
            for w0 in [1.0, 4.0, 4.0 * c * c] {
                assert!(p_dynamic(1.0, w0) > p_dynamic(c, w0));
                assert!(p_static(1.0, w0) > p_static(c, w0));
            }
        }
    }

    #[test]
    fn boundary_cases() {
        assert_eq!(p_dynamic(0.0, 3.0), 1.0);
        assert_eq!(p_dynamic(3.0, 0.0), 0.0);
        assert_eq!(p_static(0.0, 3.0), 1.0);
        assert_eq!(p_static(3.0, 0.0), 0.0);
        assert!(p_dynamic(1e-12, 1.0) > 0.999999);
        assert!(p_dynamic(1e12, 1.0) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_tau_panics() {
        p_dynamic(-1.0, 1.0);
    }
}
