//! Standard normal distribution primitives: `erf`, `erfc`, pdf and cdf.
//!
//! `erf` is computed with a Maclaurin series for small arguments and a
//! Lentz-evaluated continued fraction for the complementary function at
//! large arguments. Absolute error is below 1e-14 on the ranges exercised
//! by the LSH theory (|x| <= 40).

use std::f64::consts::{FRAC_2_SQRT_PI, PI};

/// Crossover between the series and the continued-fraction branches.
const SERIES_CUTOFF: f64 = 2.0;

/// Error function `erf(x) = 2/sqrt(pi) * int_0^x e^{-t^2} dt`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax <= SERIES_CUTOFF {
        erf_series(ax)
    } else {
        1.0 - erfc_cf(ax)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Evaluated directly through the continued fraction for large positive
/// arguments so that tail probabilities keep full relative precision
/// (`1 - erf(x)` would cancel to zero past x ~ 5.9).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < -SERIES_CUTOFF {
        return 2.0 - erfc_cf(-x);
    }
    if x <= SERIES_CUTOFF {
        return 1.0 - erf_series_signed(x);
    }
    erfc_cf(x)
}

fn erf_series_signed(x: f64) -> f64 {
    if x < 0.0 {
        -erf_series(-x)
    } else {
        erf_series(x)
    }
}

/// Maclaurin series, valid (and fast) for 0 <= x <= ~3.
///
/// erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^{2n+1} / (n! (2n+1)).
fn erf_series(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    let x2 = x * x;
    let mut term = x; // x^{2n+1} / n!
    let mut sum = x; // term / (2n+1) accumulated with sign
    let mut n = 1u32;
    loop {
        term *= x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        if n % 2 == 1 {
            sum -= contrib;
        } else {
            sum += contrib;
        }
        if contrib < 1e-17 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
        n += 1;
    }
    FRAC_2_SQRT_PI * sum
}

/// Continued fraction for erfc, x > 0 (Lentz's method):
/// erfc(x) = e^{-x^2} / (x sqrt(pi)) * 1 / (1 + 1/2x^2 / (1 + 2/2x^2 / (1 + ...)))
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    if x > 27.0 {
        // e^{-729} underflows f64; the probability is exactly 0 in f64.
        return 0.0;
    }
    let x2 = x * x;
    // A&S 7.1.14 after an equivalence transform:
    // erfc(x) = e^{-x^2}/(x sqrt(pi)) * 1/g,
    // g = 1 + a1/(1 + a2/(1 + ...)), a_n = n / (2 x^2).
    // g is evaluated with modified Lentz (b0 = 1).
    let tiny = 1e-300;
    let mut f = 1.0f64; // running value of g
    let mut c = 1.0f64;
    let mut d = 0.0f64;
    for n in 1..500 {
        let a = n as f64 / (2.0 * x2);
        d = 1.0 + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x2).exp() / (x * PI.sqrt()) / f
}

/// Probability density function of the standard normal distribution,
/// the `f(x)` of the paper (Table II).
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * PI).sqrt()
}

/// Cumulative distribution function `Phi(x)` of the standard normal.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper tail `1 - Phi(x)`, kept in full relative precision for large `x`
/// (needed by `alpha(gamma)` in Lemma 3).
#[inline]
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (2.5, 0.999593047982555),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in ERF_TABLE {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.2, 0.0, 0.3, 1.0, 1.9, 2.1, 3.5, 5.0] {
            assert!(
                (erfc(x) - (1.0 - erf(x))).abs() < 1e-13,
                "erfc({x}) inconsistent"
            );
        }
    }

    #[test]
    fn erfc_tail_has_relative_precision() {
        // erfc(10) = 2.088...e-45; the subtraction 1 - erf would return 0.
        let v = erfc(10.0);
        let want = 2.0884875837625447e-45;
        assert!((v - want).abs() / want < 1e-10, "erfc(10) = {v}");
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-13);
        assert!((normal_cdf(-1.96) - 0.024997895148220435).abs() < 1e-13);
        assert!((normal_cdf(3.0) - 0.9986501019683699).abs() < 1e-13);
    }

    #[test]
    fn sf_matches_one_minus_cdf() {
        for x in [-2.0, 0.0, 0.5, 1.0, 2.0, 4.0] {
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_known_values() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
        assert!((normal_pdf(2.0) - 0.05399096651318806).abs() < 1e-15);
        // gamma = 2 value used by Lemma 3's alpha = 4.746 claim
        assert!((normal_pdf(2.0) / normal_sf(2.0) * 2.0 - 4.746).abs() < 5e-3);
    }

    #[test]
    fn extreme_arguments_do_not_panic() {
        assert_eq!(erfc(40.0), 0.0);
        assert_eq!(erf(40.0), 1.0);
        assert_eq!(erf(-40.0), -1.0);
        assert!(erf(f64::NAN).is_nan());
    }
}
