//! Adaptive Simpson quadrature, used to validate the closed-form collision
//! probabilities against the paper's integral definitions (Eq. 2 and Eq. 4).

/// Integrate `f` over `[a, b]` with adaptive Simpson to absolute tolerance
/// `eps`. Panics if `a > b`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, eps: f64) -> f64 {
    assert!(a <= b, "invalid interval [{a}, {b}]");
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    rec(&f, a, b, fa, fm, fb, whole, eps, 50)
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    eps: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * eps {
        left + right + delta / 15.0
    } else {
        rec(f, a, m, fa, flm, fm, left, eps / 2.0, depth - 1)
            + rec(f, m, b, fm, frm, fb, right, eps / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12);
        let want = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((v - (want(3.0) - want(-1.0))).abs() < 1e-10);
    }

    #[test]
    fn integrates_sine() {
        let v = adaptive_simpson(f64::sin, 0.0, PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn integrates_gaussian_pdf_to_one_half() {
        let v = adaptive_simpson(crate::normal::normal_pdf, 0.0, 12.0, 1e-13);
        assert!((v - 0.5).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_interval_panics() {
        adaptive_simpson(|x| x, 1.0, 0.0, 1e-9);
    }
}
