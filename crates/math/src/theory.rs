//! Parameter theory of the paper (Section III-C and Section V).
//!
//! * `rho* = ln(1/p1) / ln(1/p2)` with `p1 = p(1; w0)`, `p2 = p(c; w0)` for
//!   the dynamic family — governs DB-LSH's query cost `O(n^{rho*} d log n)`;
//! * `alpha(gamma) = gamma f(gamma) / (1 - Phi(gamma))`, the exponent of
//!   Lemma 3's bound `rho* <= 1/c^alpha` when `w0 = 2 gamma c^2`;
//! * `K = ceil(log_{1/p2}(n/t))`, `L = ceil((n/t)^{rho*})` (Lemma 1 with the
//!   `t` relaxation of Remark 2).

use crate::collision::p_dynamic;
use crate::normal::{normal_pdf, normal_sf};

/// `ln(1/p(tau; w))` for the dynamic family, computed through the collision
/// *miss* probability `q = 2(1 - Phi(w/2tau))` and `ln_1p` so that large
/// bucket widths (where `p` rounds to 1.0 in f64) keep full precision.
fn neg_ln_p_dynamic(tau: f64, w: f64) -> f64 {
    let q = 2.0 * normal_sf(w / (2.0 * tau));
    -(-q).ln_1p()
}

/// `ln(1/p(tau; w))` for the static family, same precision treatment.
fn neg_ln_p_static(tau: f64, w: f64) -> f64 {
    let r = w / tau;
    let q = 2.0 * normal_sf(r)
        + 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-(r * r) / 2.0).exp());
    -(-q).ln_1p()
}

/// `rho*` of the dynamic query-centric family for approximation ratio `c`
/// and base bucket width `w0` (paper Section III-C).
pub fn rho_dynamic(c: f64, w0: f64) -> f64 {
    assert!(c > 1.0, "approximation ratio must exceed 1, got {c}");
    assert!(w0 > 0.0, "bucket width must be positive, got {w0}");
    neg_ln_p_dynamic(1.0, w0) / neg_ln_p_dynamic(c, w0)
}

/// `rho` of the static floor-quantized family (E2LSH / LSB-Forest).
pub fn rho_static(c: f64, w: f64) -> f64 {
    assert!(c > 1.0, "approximation ratio must exceed 1, got {c}");
    assert!(w > 0.0, "bucket width must be positive, got {w}");
    neg_ln_p_static(1.0, w) / neg_ln_p_static(c, w)
}

/// Lemma 3 exponent: `alpha(gamma) = gamma f(gamma) / int_gamma^inf f`,
/// so that `rho* <= 1 / c^alpha` whenever `w0 = 2 gamma c^2`.
///
/// The paper highlights `alpha(2) = 4.746` (i.e. `w0 = 4 c^2`).
pub fn alpha_exponent(gamma: f64) -> f64 {
    assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
    gamma * normal_pdf(gamma) / normal_sf(gamma)
}

/// Parameters derived from Lemma 1 for a dataset of cardinality `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedParams {
    /// Number of hash functions per compound hash (projected dimensionality).
    pub k: usize,
    /// Number of compound hashes / projected spaces (R*-trees).
    pub l: usize,
    /// Collision probability at distance 1 (`p(1; w0)`).
    pub p1: f64,
    /// Collision probability at distance c (`p(c; w0)`).
    pub p2: f64,
    /// The exponent `rho* = ln(1/p1)/ln(1/p2)`.
    pub rho: f64,
}

/// Derive `(K, L)` per Lemma 1 with the Remark 2 relaxation:
/// `K = ceil(log_{1/p2}(n/t))`, `L = ceil((n/t)^{rho*})`.
///
/// `t >= 1` trades index size for the number of candidates verified per
/// query (`2tL + 1`).
pub fn derive_kl(n: usize, t: usize, c: f64, w0: f64) -> DerivedParams {
    assert!(n >= 2, "need at least two points, got n={n}");
    assert!(t >= 1, "t must be >= 1, got {t}");
    assert!(c > 1.0, "approximation ratio must exceed 1, got {c}");
    let p1 = p_dynamic(1.0, w0);
    let p2 = p_dynamic(c, w0);
    let rho = neg_ln_p_dynamic(1.0, w0) / neg_ln_p_dynamic(c, w0);
    let ratio = (n as f64 / t as f64).max(2.0);
    let k = (ratio.ln() / neg_ln_p_dynamic(c, w0)).ceil().max(1.0) as usize;
    let l = ratio.powf(rho).ceil().max(1.0) as usize;
    DerivedParams { k, l, p1, p2, rho }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_at_gamma_2_is_4_746() {
        // The headline constant of the paper (abstract, Lemma 3 discussion).
        let a = alpha_exponent(2.0);
        assert!((a - 4.746).abs() < 1e-3, "alpha(2) = {a}");
    }

    #[test]
    fn alpha_crosses_one_near_0_7518() {
        // "xi(gamma) > 1 holds when gamma > 0.7518" (Section V-B).
        assert!(alpha_exponent(0.7518) < 1.0 + 2e-4);
        assert!(alpha_exponent(0.7519) > 1.0 - 2e-4);
        assert!(alpha_exponent(0.74) < 1.0);
        assert!(alpha_exponent(0.76) > 1.0);
    }

    #[test]
    fn alpha_monotone_increasing() {
        let mut last = 0.0;
        for i in 1..100 {
            let g = i as f64 * 0.05;
            let a = alpha_exponent(g);
            assert!(a > last, "alpha not increasing at gamma={g}");
            last = a;
        }
    }

    #[test]
    fn rho_star_bounded_by_lemma_3() {
        // rho* <= 1/c^alpha(gamma) for w0 = 2 gamma c^2 (Lemma 3).
        for gamma in [0.8, 1.0, 2.0, 3.0] {
            let alpha = alpha_exponent(gamma);
            for c in [1.1, 1.5, 2.0, 3.0, 4.0] {
                let w0 = 2.0 * gamma * c * c;
                let rho = rho_dynamic(c, w0);
                let bound = c.powf(-alpha);
                assert!(
                    rho <= bound + 1e-12,
                    "gamma={gamma} c={c}: rho*={rho} > bound={bound}"
                );
            }
        }
    }

    #[test]
    fn rho_star_beats_static_rho_at_w_4c2() {
        // Fig. 4(b): with w = 4c^2, rho* is far below rho (which is ~1/c).
        for c in [1.2, 1.5, 2.0, 3.0, 4.0] {
            let w = 4.0 * c * c;
            let rs = rho_dynamic(c, w);
            let r = rho_static(c, w);
            assert!(rs < r, "c={c}: rho*={rs} >= rho={r}");
            assert!(r < 1.0 / c + 0.08, "c={c}: static rho={r} far above 1/c");
        }
    }

    #[test]
    fn rho_star_below_one_over_c_even_at_small_w_sometimes() {
        // Fig. 4(a): with w = 0.4c^2 (gamma = 0.2), alpha < 1 but rho* < rho
        // still holds.
        for c in [1.2, 1.5, 2.0, 3.0] {
            let w = 0.4 * c * c;
            assert!(rho_dynamic(c, w) < rho_static(c, w), "c={c}");
        }
    }

    #[test]
    fn derive_kl_satisfies_lemma_1_inequalities() {
        // Lemma 1 requires p2^K <= t/n (so the expected number of far
        // colliding points per space is <= t). With w0 = 4c^2 and c = 1.5,
        // p2 = 0.9973 is so close to 1 that the *theoretical* K is in the
        // thousands — exactly why Remark 2 introduces the practical
        // overrides (the paper's experiments use K = 10/12, L = 5).
        let n = 1_000_000usize;
        let t = 64usize;
        let p = derive_kl(n, t, 1.5, 9.0);
        let tn = t as f64 / n as f64;
        assert!(p.p2.powi(p.k as i32) <= tn * (1.0 + 1e-9), "p2^K > t/n");
        // K is minimal: one fewer hash function would break the bound.
        assert!(p.p2.powi(p.k as i32 - 1) > tn, "K not minimal");
        assert!(p.p1 > p.p2);
        assert!(p.rho > 0.0 && p.rho < 1.0);
        // L >= (n/t)^rho ensures Pr[E1] >= 1 - 1/e.
        let pr_e1_fail = (1.0 - p.p1.powi(p.k as i32)).powi(p.l as i32);
        assert!(pr_e1_fail <= 1.0 / std::f64::consts::E + 0.02);
    }

    #[test]
    fn derive_kl_l_grows_with_n() {
        let a = derive_kl(10_000, 16, 1.5, 9.0);
        let b = derive_kl(10_000_000, 16, 1.5, 9.0);
        assert!(b.k > a.k);
        assert!(b.l >= a.l);
    }

    #[test]
    fn larger_t_means_smaller_index() {
        let small_t = derive_kl(1_000_000, 1, 1.5, 9.0);
        let big_t = derive_kl(1_000_000, 256, 1.5, 9.0);
        assert!(big_t.k <= small_t.k);
        assert!(big_t.l <= small_t.l);
    }

    #[test]
    fn guarantee_probability_constants() {
        // With K, L from Lemma 1 the success probability is >= 1/2 - 1/e.
        // Sanity-check the two probability inequalities numerically:
        // (1 - p1^K)^L <= 1/e and expected far points <= tL.
        let n = 100_000usize;
        let t = 32usize;
        let p = derive_kl(n, t, 1.5, 9.0);
        let pr_e1_fail = (1.0 - p.p1.powi(p.k as i32)).powi(p.l as i32);
        assert!(
            pr_e1_fail <= 1.0 / std::f64::consts::E + 0.02,
            "Pr[!E1] = {pr_e1_fail}"
        );
        // Expected number of far colliding points per space <= t (ceil slack
        // on K only tightens it).
        let expected_far = n as f64 * p.p2.powi(p.k as i32);
        assert!(expected_far <= t as f64 + 1e-9, "E[far] = {expected_far}");
    }

    #[test]
    #[should_panic(expected = "approximation ratio")]
    fn c_at_most_one_panics() {
        rho_dynamic(1.0, 4.0);
    }
}
