//! Property-based tests of the LSH probability theory.

use dblsh_math::{
    alpha_exponent, erf, erfc, normal_cdf, p_dynamic, p_static, rho_dynamic, rho_static,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn erf_bounded_and_odd(x in -30.0f64..30.0) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((erf(-x) + v).abs() < 1e-12);
        prop_assert!((erfc(x) - (1.0 - v)).abs() < 1e-10);
    }

    #[test]
    fn cdf_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-15);
    }

    #[test]
    fn collision_probabilities_are_probabilities(
        tau in 0.001f64..100.0,
        w in 0.001f64..100.0,
    ) {
        for p in [p_dynamic(tau, w), p_static(tau, w)] {
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
        // dynamic family dominates static at equal width (no floor
        // quantization loss)
        prop_assert!(p_dynamic(tau, w) >= p_static(tau, w) - 1e-12);
    }

    #[test]
    fn locality_sensitivity(
        tau in 0.01f64..10.0,
        factor in 1.01f64..10.0,
        w in 0.1f64..50.0,
    ) {
        // farther pairs never collide more often
        prop_assert!(p_dynamic(tau * factor, w) <= p_dynamic(tau, w) + 1e-12);
        prop_assert!(p_static(tau * factor, w) <= p_static(tau, w) + 1e-12);
    }

    #[test]
    fn observation_1_for_all_radii(r in 0.001f64..1e4, w0 in 0.1f64..50.0) {
        // p(r; w0 r) == p(1; w0)
        prop_assert!((p_dynamic(r, w0 * r) - p_dynamic(1.0, w0)).abs() < 1e-9);
    }

    #[test]
    fn rho_exponents_in_unit_interval(c in 1.01f64..5.0, w in 0.5f64..60.0) {
        let rs = rho_dynamic(c, w);
        let r = rho_static(c, w);
        prop_assert!(rs > 0.0 && rs < 1.0, "rho* = {rs}");
        prop_assert!(r > 0.0 && r < 1.0, "rho = {r}");
        // the paper's headline: dynamic bucketing has the smaller exponent
        prop_assert!(rs <= r + 1e-12, "rho* {rs} > rho {r} at c={c} w={w}");
    }

    #[test]
    fn lemma_3_bound(gamma in 0.05f64..4.0, c in 1.01f64..4.0) {
        let w0 = 2.0 * gamma * c * c;
        prop_assert!(rho_dynamic(c, w0) <= c.powf(-alpha_exponent(gamma)) + 1e-9);
    }
}
