//! Per-stage query tracing: a zero-alloc span recorder threaded through
//! the search pipeline, plus the fixed-capacity slow-query ring log.
//!
//! A [`QueryTrace`] is a stack-allocated array of per-[`Stage`]
//! nanosecond totals. Traced entry points (`search_with_trace` on the
//! index types, the engine's trace-enabled search path) pass
//! `&mut QueryTrace` down the pipeline and each stage adds its elapsed
//! time; the untraced paths never construct one, so tracing off costs
//! nothing and perturbs nothing — the answers and `QueryStats` of an
//! untraced search are byte-identical to a build without this module.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The pipeline stages a traced query is broken into. The variants are
/// ordered as the pipeline runs them; [`Stage::ALL`] iterates in that
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Submission-queue wait (enqueue to worker pickup).
    Queue = 0,
    /// Query projection: `G_i(q)` matvecs plus SQ8 query preparation.
    Projection = 1,
    /// Per-round R*-tree window probes collecting fresh candidates.
    TreeProbe = 2,
    /// SQ8 quantized lower-bound scan and partition.
    Prefilter = 3,
    /// Exact blocked distance verification and key build.
    Verify = 4,
    /// Cross-shard canonical key sort and ladder consumption.
    Merge = 5,
    /// Everything after the answer exists: reply resolution, bookkeeping
    /// (computed as total minus the measured stages, so per-stage sums
    /// match end-to-end latency by construction).
    Reply = 6,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// Every stage in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Queue,
        Stage::Projection,
        Stage::TreeProbe,
        Stage::Prefilter,
        Stage::Verify,
        Stage::Merge,
        Stage::Reply,
    ];

    /// Stable lowercase name (used as the `stage` label value in the
    /// exposition formats).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Projection => "projection",
            Stage::TreeProbe => "tree_probe",
            Stage::Prefilter => "prefilter",
            Stage::Verify => "verify",
            Stage::Merge => "merge",
            Stage::Reply => "reply",
        }
    }
}

/// Zero-alloc per-stage nanosecond totals for one traced query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryTrace {
    /// Nanoseconds attributed to each stage, indexed by `Stage as usize`.
    pub stage_nanos: [u64; STAGE_COUNT],
}

impl QueryTrace {
    /// Fresh all-zero trace.
    pub fn new() -> QueryTrace {
        QueryTrace::default()
    }

    /// Attribute `nanos` to `stage` (accumulates across rounds).
    #[inline]
    pub fn add(&mut self, stage: Stage, nanos: u64) {
        self.stage_nanos[stage as usize] += nanos;
    }

    /// Nanoseconds attributed to `stage` so far.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }

    /// Sum over every stage.
    pub fn total(&self) -> u64 {
        self.stage_nanos.iter().sum()
    }

    /// Set [`Stage::Reply`] to `total_nanos` minus every measured stage
    /// (saturating), so the per-stage sum equals the end-to-end latency.
    pub fn close(&mut self, total_nanos: u64) {
        let measured: u64 = self.stage_nanos.iter().sum();
        self.stage_nanos[Stage::Reply as usize] = total_nanos.saturating_sub(measured);
    }
}

/// FNV-1a digest of a query's arguments (`f32` coordinate bytes plus
/// `k`): a compact fingerprint for correlating slow-log entries with the
/// workload that produced them without retaining the vectors themselves.
pub fn args_digest(query: &[f32], k: usize) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for v in query {
        for b in v.to_le_bytes() {
            eat(b);
        }
    }
    for b in (k as u64).to_le_bytes() {
        eat(b);
    }
    acc
}

/// One captured slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// [`args_digest`] of the query vector and `k`.
    pub args_digest: u64,
    /// Requested neighbour count.
    pub k: usize,
    /// End-to-end latency (queue wait included), nanoseconds.
    pub total_nanos: u64,
    /// Per-stage breakdown, indexed by `Stage as usize`.
    pub stage_nanos: [u64; STAGE_COUNT],
    /// Radius-ladder rounds the search ran.
    pub rounds: usize,
    /// Candidates collected across rounds.
    pub candidates: usize,
}

/// Fixed-capacity ring buffer of the most recent queries slower than a
/// runtime-adjustable threshold. Recording takes a short mutex (slow
/// queries are rare by definition); the threshold check is a lock-free
/// atomic load so the fast path never touches the lock.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    threshold_nanos: AtomicU64,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A log keeping the `capacity` most recent entries at or above
    /// `threshold_nanos`. A threshold of `u64::MAX` disables capture.
    pub fn new(capacity: usize, threshold_nanos: u64) -> SlowQueryLog {
        SlowQueryLog {
            capacity: capacity.max(1),
            threshold_nanos: AtomicU64::new(threshold_nanos),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Current capture threshold, nanoseconds.
    pub fn threshold_nanos(&self) -> u64 {
        // order: standalone tuning knob; readers only compare against it.
        self.threshold_nanos.load(Ordering::Relaxed)
    }

    /// Adjust the capture threshold at runtime.
    pub fn set_threshold_nanos(&self, nanos: u64) {
        // order: standalone tuning knob; a worker seeing the old value
        // for a few more queries is fine, nothing else is published.
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Offer a completed query; it is kept iff `total_nanos` is at or
    /// above the threshold. Returns whether it was captured. Oldest
    /// entries are evicted at capacity.
    pub fn offer(&self, entry: SlowQuery) -> bool {
        // order: hot-path threshold check; the knob is independent of
        // all other state, so the cheapest load is the right one.
        if entry.total_nanos < self.threshold_nanos.load(Ordering::Relaxed) {
            return false;
        }
        // The ring is a VecDeque valid in every published state, so a
        // poisoned lock is recovered — slow-query capture is telemetry
        // and must never take a worker down.
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the held entries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow(total: u64) -> SlowQuery {
        SlowQuery {
            args_digest: 1,
            k: 10,
            total_nanos: total,
            stage_nanos: [0; STAGE_COUNT],
            rounds: 2,
            candidates: 100,
        }
    }

    #[test]
    fn trace_close_makes_stage_sums_exact() {
        let mut t = QueryTrace::new();
        t.add(Stage::Queue, 100);
        t.add(Stage::Verify, 500);
        t.add(Stage::Verify, 250);
        t.close(1_000);
        assert_eq!(t.get(Stage::Verify), 750);
        assert_eq!(t.get(Stage::Reply), 150);
        assert_eq!(t.total(), 1_000);
        // a total smaller than the measured stages saturates to zero
        let mut u = QueryTrace::new();
        u.add(Stage::Merge, 10);
        u.close(5);
        assert_eq!(u.get(Stage::Reply), 0);
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
        assert_eq!(dedup.len(), STAGE_COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
    }

    #[test]
    fn args_digest_separates_inputs() {
        let a = args_digest(&[1.0, 2.0], 5);
        assert_eq!(a, args_digest(&[1.0, 2.0], 5), "digest is deterministic");
        assert_ne!(a, args_digest(&[1.0, 2.0], 6));
        assert_ne!(a, args_digest(&[1.0, 2.5], 5));
        assert_ne!(a, args_digest(&[2.0, 1.0], 5));
    }

    #[test]
    fn slow_log_filters_by_threshold_and_evicts_oldest() {
        let log = SlowQueryLog::new(2, 1_000);
        assert!(!log.offer(slow(999)));
        assert!(log.is_empty());
        assert!(log.offer(slow(1_000)));
        assert!(log.offer(slow(2_000)));
        assert!(log.offer(slow(3_000)));
        let held: Vec<u64> = log.snapshot().iter().map(|e| e.total_nanos).collect();
        assert_eq!(held, vec![2_000, 3_000], "oldest entry evicted");
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn slow_log_threshold_is_adjustable() {
        let log = SlowQueryLog::new(4, u64::MAX);
        assert!(!log.offer(slow(u64::MAX - 1)), "MAX threshold disables");
        log.set_threshold_nanos(500);
        assert_eq!(log.threshold_nanos(), 500);
        assert!(log.offer(slow(500)));
        assert_eq!(log.len(), 1);
    }
}
