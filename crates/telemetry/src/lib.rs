//! Telemetry plane for the DB-LSH stack.
//!
//! Three pieces, each std-only and dependency-free:
//!
//! * [`Registry`] — a unified metrics registry of named counters,
//!   gauges, and log₂(ns) histograms behind cheap typed handles
//!   ([`Counter`] / [`Gauge`] / [`Histo`]), with labels for
//!   shard/replica/tenant dimensions. Registration is a mutexed cold
//!   path; the handles are `Arc`-shared atomics, so recording is
//!   lock-free. Core, serve, net, WAL, and replica code all register
//!   their metrics here instead of growing bespoke atomic structs.
//! * [`QueryTrace`] + [`SlowQueryLog`] — per-stage query tracing: a
//!   zero-alloc span recorder threaded through the search pipeline
//!   (projection → tree probe → SQ8 prefilter → exact verify → merge →
//!   reply), feeding per-stage latency histograms and a fixed-capacity
//!   ring buffer of the slowest queries (args digest, per-stage
//!   breakdown, rounds, candidates).
//! * [`render_prometheus`] / [`render_json`] — deterministic exposition
//!   renderers over a registry snapshot, golden-tested byte-for-byte and
//!   served by the wire protocol's `Metrics` opcode.
//!
//! The shared log₂ histogram shape lives in [`histogram`], including the
//! one quantile estimator ([`log2_quantile_us`]) every consumer routes
//! through — interpolated within the bucket, so p50/p99 no longer
//! overstate by up to 2× the way the old upper-edge convention did.

pub mod expo;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use expo::{render_json, render_prometheus};
pub use histogram::{
    bucket_lower_nanos, bucket_of, log2_quantile_us, HistoCell, HistoSnapshot, LatencyHistogram,
    BUCKETS,
};
pub use registry::{Counter, Gauge, Histo, MetricKind, MetricSample, Registry, SampleValue};
pub use trace::{args_digest, QueryTrace, SlowQuery, SlowQueryLog, Stage, STAGE_COUNT};
