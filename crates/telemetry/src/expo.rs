//! Exposition renderers: Prometheus text format and a JSON document over
//! a [`Registry`](crate::registry::Registry) snapshot.
//!
//! Both renderers are deterministic byte-for-byte for a given snapshot
//! (the snapshot itself is deterministically ordered), which is what the
//! golden tests — and the CI scrape-and-diff step — rely on.
//!
//! Histograms are rendered in Prometheus *summary* form (`quantile`
//! labels plus `_sum`/`_count`) rather than 64 `_bucket` lines per
//! series: the log₂ shape would bloat every scrape, and the quantiles
//! are what dashboards plot. The JSON form keeps the raw (sparse)
//! buckets so trajectory artifacts can merge distributions exactly.

use crate::registry::{MetricSample, SampleValue};

/// Quantiles rendered for each histogram series.
const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>, out: &mut String) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in samples {
        if last_name != Some(s.name.as_str()) {
            last_name = Some(s.name.as_str());
            out.push_str("# HELP ");
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(s.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "summary",
            });
            out.push('\n');
        }
        match &s.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                out.push_str(&s.name);
                prom_labels(&s.labels, None, &mut out);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            SampleValue::Histogram(h) => {
                for q in QUANTILES {
                    let label = format!("{q}");
                    out.push_str(&s.name);
                    prom_labels(&s.labels, Some(("quantile", &label)), &mut out);
                    out.push(' ');
                    // quantile_us → seconds, the Prometheus base unit
                    out.push_str(&format!("{}", h.quantile_us(q) / 1e6));
                    out.push('\n');
                }
                out.push_str(&s.name);
                out.push_str("_sum");
                prom_labels(&s.labels, None, &mut out);
                out.push(' ');
                out.push_str(&format!("{}", h.sum_nanos as f64 / 1e9));
                out.push('\n');
                out.push_str(&s.name);
                out.push_str("_count");
                prom_labels(&s.labels, None, &mut out);
                out.push(' ');
                out.push_str(&h.count.to_string());
                out.push('\n');
            }
        }
    }
    out
}

fn escape_json(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render a snapshot as a single JSON document:
/// `{"metrics":[{"name":...,"labels":{...},"kind":...,...},...]}`.
/// Counters and gauges carry `"value"`; histograms carry `"count"`,
/// `"sum_nanos"`, `"p50_us"`/`"p99_us"`, and sparse
/// `"buckets":[[index,count],...]`.
pub fn render_json(samples: &[MetricSample]) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"labels\":{");
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("},\"kind\":\"");
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("counter\",\"value\":{v}}}"));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("gauge\",\"value\":{v}}}"));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!(
                    "histogram\",\"count\":{},\"sum_nanos\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[",
                    h.count,
                    h.sum_nanos,
                    h.quantile_us(0.50),
                    h.quantile_us(0.99),
                ));
                let mut first = true;
                for (b, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{b},{c}]"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// A registry with one of everything, at pinned values, so the
    /// golden files stay byte-stable.
    fn golden_registry() -> Registry {
        let reg = Registry::new();
        let knn = reg.counter(
            "dblsh_requests_total",
            "Requests by opcode.",
            &[("op", "knn")],
        );
        knn.add(42);
        let ins = reg.counter(
            "dblsh_requests_total",
            "Requests by opcode.",
            &[("op", "insert")],
        );
        ins.add(7);
        let depth = reg.gauge("dblsh_queue_depth", "Jobs queued.", &[]);
        depth.set(3);
        let stage = reg.histo(
            "dblsh_stage_seconds",
            "Per-stage latency.",
            &[("stage", "verify")],
        );
        for nanos in [1_100u64, 1_100, 70_000, 1_000_000] {
            stage.record(nanos);
        }
        reg
    }

    #[test]
    fn prometheus_exposition_matches_golden_bytes() {
        let got = render_prometheus(&golden_registry().snapshot());
        let want = include_str!("../golden/exposition.prom");
        assert_eq!(got, want, "rendered:\n{got}");
    }

    #[test]
    fn json_exposition_matches_golden_bytes() {
        let got = render_json(&golden_registry().snapshot());
        let want = include_str!("../golden/exposition.json").trim_end_matches('\n');
        assert_eq!(got, want, "rendered:\n{got}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        let c = reg.counter("m", "h", &[("path", "a\"b\\c")]);
        c.inc();
        let prom = render_prometheus(&reg.snapshot());
        assert!(prom.contains("m{path=\"a\\\"b\\\\c\"} 1\n"), "{prom}");
        let json = render_json(&reg.snapshot());
        assert!(json.contains("\"path\":\"a\\\"b\\\\c\""), "{json}");
    }

    #[test]
    fn empty_snapshot_renders_empty_documents() {
        assert_eq!(render_prometheus(&[]), "");
        assert_eq!(render_json(&[]), "{\"metrics\":[]}");
    }
}
