//! The unified metrics registry: named counters, gauges, and log₂
//! histograms behind cheap typed handles.
//!
//! Registration (cold path) takes a mutex and dedupes by
//! `(name, sorted labels)`; the returned [`Counter`] / [`Gauge`] /
//! [`Histo`] handles are `Arc`-shared atomic cells, so the hot path —
//! a worker bumping a counter per request — is a single relaxed
//! `fetch_add` with no lock and no hash lookup. Handles are `Clone` and
//! `Send + Sync`; clones of the same registration share one cell, and
//! re-registering an existing `(name, labels)` pair returns a handle to
//! the original cell (idempotent), so every subsystem can "register" its
//! metrics at startup without coordinating.
//!
//! [`Registry::snapshot`] walks the registrations in a deterministic
//! order — name ascending, then label set ascending — which is what lets
//! the Prometheus exposition be golden-tested byte-for-byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::histogram::{HistoCell, HistoSnapshot};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        // order: standalone monotone count; no other memory is published
        // through it, so atomicity of the add is all we need.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // order: same standalone monotone count as `inc`.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // order: scrape-time read of an independent counter; staleness
        // of a few increments is acceptable, no ordering implied.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (u64 values: depths, byte counts,
/// event totals sampled at scrape time).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // order: last-write-wins sample; the gauge value stands alone
        // and does not release any other writes.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // order: scrape-time sample of an independent gauge.
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂(nanoseconds) histogram handle.
#[derive(Debug, Clone)]
pub struct Histo(Arc<HistoCell>);

impl Histo {
    /// Record one observation of `nanos`.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.0.record(nanos);
    }

    /// Point-in-time copy of the cell.
    pub fn snapshot(&self) -> HistoSnapshot {
        self.0.snapshot()
    }
}

/// What kind of cell a registration holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// log₂(ns) histogram.
    Histogram,
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histo(Arc<HistoCell>),
}

#[derive(Debug)]
struct Registration {
    help: &'static str,
    cell: Cell,
}

/// One sampled series in a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name (e.g. `dblsh_requests_total`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// One-line help text from the first registration of the family.
    pub help: &'static str,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value of one sampled series.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram snapshot (buckets, count, exact nanosecond sum).
    /// Boxed: the 64-bucket snapshot dwarfs the scalar variants.
    Histogram(Box<HistoSnapshot>),
}

/// The registry. Cheap to share (`Arc<Registry>`); see the module docs
/// for the cold/hot path split.
/// A series identity: family name plus its sorted label pairs.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<SeriesKey, Registration>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) the counter `name` with `labels`.
    ///
    /// # Panics
    /// Panics if `(name, labels)` was already registered as a different
    /// kind — one series, one type.
    pub fn counter(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.cell_for(name, help, labels, MetricKind::Counter) {
            Cell::Counter(c) => Counter(c),
            _ => unreachable!(), // lint: allow(panic-free-surface) — cell_for just asserted this cell's kind
        }
    }

    /// Register (or look up) the gauge `name` with `labels`.
    ///
    /// # Panics
    /// Panics on a kind mismatch with an existing registration.
    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell_for(name, help, labels, MetricKind::Gauge) {
            Cell::Gauge(g) => Gauge(g),
            _ => unreachable!(), // lint: allow(panic-free-surface) — cell_for just asserted this cell's kind
        }
    }

    /// Register (or look up) the histogram `name` with `labels`.
    ///
    /// # Panics
    /// Panics on a kind mismatch with an existing registration.
    pub fn histo(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Histo {
        match self.cell_for(name, help, labels, MetricKind::Histogram) {
            Cell::Histo(h) => Histo(h),
            _ => unreachable!(), // lint: allow(panic-free-surface) — cell_for just asserted this cell's kind
        }
    }

    fn cell_for(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Cell {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = (name.to_string(), sorted);
        // The registry map is valid in every published state, so a
        // poisoned lock (a panicking scraper) is recovered — metrics
        // registration and scraping must never take the process down.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let reg = inner.entry(key).or_insert_with(|| Registration {
            help,
            cell: match kind {
                MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
                MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0))),
                MetricKind::Histogram => Cell::Histo(Arc::new(HistoCell::default())),
            },
        });
        let found = match &reg.cell {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histo(_) => MetricKind::Histogram,
        };
        assert_eq!(
            found, kind,
            "metric {name:?} already registered as {found:?}, requested {kind:?}"
        );
        reg.cell.clone()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministically ordered point-in-time samples of every
    /// registered series (name ascending, then label set ascending).
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .iter()
            .map(|((name, labels), reg)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                help: reg.help,
                value: match &reg.cell {
                    // order: scrape-time reads; each series is sampled
                    // independently and cross-series skew of in-flight
                    // updates is inherent to scraping, so no ordering
                    // between cells is promised or needed.
                    Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Histo(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn handles_share_one_cell_per_registration() {
        let reg = Registry::new();
        let a = reg.counter("dblsh_requests_total", "requests", &[("op", "knn")]);
        let b = reg.counter("dblsh_requests_total", "requests", &[("op", "knn")]);
        let other = reg.counter("dblsh_requests_total", "requests", &[("op", "insert")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3, "same (name, labels) must share a cell");
        assert_eq!(other.get(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.gauge("g", "g", &[("a", "1"), ("b", "2")]);
        let b = reg.gauge("g", "g", &[("b", "2"), ("a", "1")]);
        a.set(7);
        assert_eq!(b.get(), 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("m", "m", &[]);
        let _ = reg.gauge("m", "m", &[]);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let reg = Registry::new();
        let _ = reg.counter("zzz", "z", &[]);
        let _ = reg.counter("aaa", "a", &[("shard", "1")]);
        let _ = reg.counter("aaa", "a", &[("shard", "0")]);
        let _ = reg.histo("mid", "m", &[]);
        let names: Vec<String> = reg
            .snapshot()
            .iter()
            .map(|s| {
                let labels: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}{{{}}}", s.name, labels.join(","))
            })
            .collect();
        assert_eq!(
            names,
            vec!["aaa{shard=0}", "aaa{shard=1}", "mid{}", "zzz{}"]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // N threads hammering shared counter/gauge/histogram handles:
        // the final sums must be exact — no lost updates, no torn reads.
        #[test]
        fn concurrent_hammering_keeps_sums_exact(
            threads in 2usize..6,
            per_thread in 1u64..400,
        ) {
            let reg = std::sync::Arc::new(Registry::new());
            let total = reg.counter("hits", "hits", &[]);
            let gauge = reg.gauge("depth", "depth", &[]);
            let histo = reg.histo("lat", "lat", &[]);
            let mut handles = Vec::new();
            for t in 0..threads {
                let total = total.clone();
                let gauge = gauge.clone();
                let histo = histo.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..per_thread {
                        total.inc();
                        gauge.set(t as u64);
                        histo.record(1 + i % 4096);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let want = threads as u64 * per_thread;
            prop_assert_eq!(total.get(), want);
            prop_assert!(gauge.get() < threads as u64);
            let snap = histo.snapshot();
            prop_assert_eq!(snap.count, want);
            prop_assert_eq!(snap.buckets.iter().sum::<u64>(), want);
        }
    }
}
