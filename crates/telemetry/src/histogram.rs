//! The workspace's shared log₂(nanoseconds) histogram shape: 64 buckets
//! where bucket `b` counts observations in `[2^b, 2^{b+1})` ns, plus the
//! one quantile estimator every consumer (engine snapshots, merged
//! sweeps, wire-scraped exposition) routes through.
//!
//! # Quantile convention
//!
//! [`log2_quantile_us`] interpolates *within* the resolved bucket: the
//! observations of a bucket are treated as uniformly spread over its
//! `[2^b, 2^{b+1})` ns span, and the requested rank's position inside the
//! bucket picks the point. Earlier revisions returned the bucket's upper
//! edge, which overstated p50/p99 by up to 2× at low counts (a single
//! 1.1 µs observation reported as 2.048 µs). The pinned edge cases:
//!
//! * empty histogram → `0.0`;
//! * a single observation → its bucket's midpoint (`1.5 · 2^b` ns);
//! * bucket 63 is open-ended, so its reported value is clamped to its
//!   *lower* edge (`2^63` ns) — interpolating into a span the histogram
//!   never measured would fabricate resolution.
//!
//! The estimator is monotone in `q`, so `p99 >= p50` always holds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets (one per `u64` bit position).
pub const BUCKETS: usize = 64;

/// The log₂ bucket index a latency of `nanos` falls into.
#[inline]
pub fn bucket_of(nanos: u64) -> usize {
    63 - nanos.max(1).leading_zeros() as usize
}

/// Inclusive lower edge of bucket `b`, in nanoseconds.
#[inline]
pub fn bucket_lower_nanos(b: usize) -> u64 {
    1u64 << b
}

/// The latency below which fraction `q` of the recorded observations
/// fall, in microseconds, interpolated within its log₂ bucket (see the
/// module docs for the pinned convention). Shared by live engine
/// snapshots, [`crate::LatencyHistogram`], and merged-stat recomputation
/// so every reported quantile means the same thing.
pub fn log2_quantile_us(counts: &[u64; BUCKETS], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lower = bucket_lower_nanos(b) as f64;
            if b == 63 {
                // Open-ended top bucket: report its lower edge rather
                // than fabricating resolution beyond 2^63 ns.
                return lower / 1e3;
            }
            // Rank's midpoint position among the bucket's c observations,
            // spread uniformly over [lower, 2*lower).
            let pos = (rank - seen) as f64 - 0.5;
            return (lower + lower * (pos / c as f64)) / 1e3;
        }
        seen += c;
    }
    // Rank is clamped to the total count, so the loop always returns;
    // a defensive fallback (the top bucket's lower edge) keeps the
    // scrape path free of panic tokens.
    bucket_lower_nanos(BUCKETS - 1) as f64 / 1e3
}

/// A log₂(nanoseconds) latency histogram: 64 buckets, where bucket `b`
/// counts observations in `[2^b, 2^{b+1})` ns. The exact shape behind
/// the engine's quantiles, exposed so out-of-process harnesses (the
/// `loadgen` bench bin measuring wire round-trips) report p50/p99 with
/// identical semantics and can merge distributions exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Raw bucket counts.
    pub buckets: [u64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `nanos`.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[bucket_of(nanos)] += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The latency below which fraction `q` of observations fall, in
    /// microseconds, interpolated within its log₂ bucket (see
    /// [`log2_quantile_us`]).
    pub fn quantile_us(&self, q: f64) -> f64 {
        log2_quantile_us(&self.buckets, q)
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// The lock-free cell behind a registered [`crate::Histo`] handle:
/// per-bucket counts plus an exact observation sum, all plain relaxed
/// atomics so concurrent recorders never contend on a lock. The total
/// count is derived from the buckets at snapshot time, so it can never
/// disagree with them (see [`HistoCell::snapshot`]).
#[derive(Debug)]
pub struct HistoCell {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
}

impl Default for HistoCell {
    fn default() -> Self {
        HistoCell {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl HistoCell {
    /// Record one observation of `nanos`.
    pub fn record(&self, nanos: u64) {
        // order: independent monotone counters; scrapes tolerate (and
        // snapshot() repairs) skew between them, so Relaxed suffices.
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        // order: see above — no reader infers cross-counter ordering.
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Point-in-time copy of the cell.
    ///
    /// The loads are independent, so a snapshot raced by recorders can
    /// see bucket increments whose `count` increment has not landed yet
    /// (or vice versa). The reported `count` is therefore *derived* from
    /// the loaded buckets — the snapshot's count always equals the sum
    /// of its own buckets, which is the invariant every quantile and
    /// mean computation downstream assumes. `sum_nanos` can still lag
    /// the buckets by in-flight recordings; that skews a racing scrape's
    /// mean by at most the in-flight observations, never a quantile.
    pub fn snapshot(&self) -> HistoSnapshot {
        let buckets: [u64; BUCKETS] =
            // order: monotone counters read by a scraper; Relaxed loads
            // are exact for quiescent cells and at most in-flight-racy
            // otherwise, and count is derived from these loads below.
            std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed));
        HistoSnapshot {
            buckets,
            count: buckets.iter().sum(),
            // order: monotone counter; same single-scrape tolerance.
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`HistoCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Raw log₂ bucket counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Exact sum of every observation, nanoseconds.
    pub sum_nanos: u64,
}

impl HistoSnapshot {
    /// Interpolated quantile in microseconds (see [`log2_quantile_us`]).
    pub fn quantile_us(&self, q: f64) -> f64 {
        log2_quantile_us(&self.buckets, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let counts = [0u64; BUCKETS];
        assert_eq!(log2_quantile_us(&counts, 0.5), 0.0);
        assert_eq!(log2_quantile_us(&counts, 0.99), 0.0);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0.0);
    }

    #[test]
    fn single_observation_reports_its_bucket_midpoint() {
        // 1.1 µs lands in bucket 10 ([1024, 2048) ns); every quantile of
        // a one-observation histogram is the midpoint, 1536 ns — not the
        // old upper-edge answer of 2048 ns.
        let mut h = LatencyHistogram::new();
        h.record(1_100);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 1.536, "q={q}");
        }
    }

    #[test]
    fn interpolation_splits_a_bucket_by_rank() {
        // Four observations in bucket 10: ranks 1..=4 sit at 1/8, 3/8,
        // 5/8, 7/8 of the [1024, 2048) span.
        let mut counts = [0u64; BUCKETS];
        counts[10] = 4;
        let span = 1024.0;
        for (q, pos) in [(0.25, 0.5), (0.5, 1.5), (0.75, 2.5), (1.0, 3.5)] {
            let want = (1024.0 + span * (pos / 4.0)) / 1e3;
            assert!((log2_quantile_us(&counts, q) - want).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn saturated_top_bucket_clamps_to_its_lower_edge() {
        // Bucket 63 is open-ended; interpolating past 2^63 ns would
        // overflow the shape's span, so its value clamps to the lower
        // edge regardless of rank.
        let mut counts = [0u64; BUCKETS];
        counts[63] = u64::MAX / 2;
        let want = (1u64 << 63) as f64 / 1e3;
        assert_eq!(log2_quantile_us(&counts, 0.01), want);
        assert_eq!(log2_quantile_us(&counts, 0.99), want);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for nanos in [120u64, 800, 1_500, 1_600, 70_000, 70_001, 2_000_000] {
            h.record(nanos);
        }
        let mut last = 0.0;
        for i in 0..=100 {
            let v = h.quantile_us(i as f64 / 100.0);
            assert!(v >= last, "quantile must be monotone at q={}", i);
            last = v;
        }
    }

    #[test]
    fn quantile_never_exceeds_bucket_upper_edge() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(1_100); // bucket 10: [1024, 2048) ns
        }
        let p99 = h.quantile_us(0.99);
        assert!((1.024..2.048).contains(&p99), "p99={p99}");
    }

    #[test]
    fn histo_cell_snapshot_matches_manual_recording() {
        let cell = HistoCell::default();
        for nanos in [800u64, 1_500, 70_000] {
            cell.record(nanos);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_nanos, 800 + 1_500 + 70_000);
        let mut h = LatencyHistogram::new();
        for nanos in [800u64, 1_500, 70_000] {
            h.record(nanos);
        }
        assert_eq!(snap.buckets, h.buckets);
        assert_eq!(snap.quantile_us(0.5), h.quantile_us(0.5));
    }

    #[test]
    fn latency_histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(1_000);
        let mut b = LatencyHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile_us(0.99) > a.quantile_us(0.01));
    }

    /// Regression: a snapshot raced by concurrent recorders used to
    /// take its `count` from an independent relaxed load, which could
    /// disagree with the bucket counts loaded moments apart. The count
    /// is now derived from the snapshot's own buckets, so the invariant
    /// `count == buckets.sum()` holds in EVERY snapshot, mid-race or
    /// not.
    #[test]
    fn snapshot_count_always_equals_its_own_bucket_sum() {
        let cell = std::sync::Arc::new(HistoCell::default());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let recorders: Vec<_> = (0..4)
            .map(|t| {
                let cell = std::sync::Arc::clone(&cell);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        cell.record(1 + (t as u64 * 7919 + n * 104_729) % 5_000_000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..2_000 {
            let snap = cell.snapshot();
            assert_eq!(
                snap.count,
                snap.buckets.iter().sum::<u64>(),
                "snapshot count disagrees with its own buckets"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let recorded: u64 = recorders.into_iter().map(|h| h.join().unwrap()).sum();
        let settled = cell.snapshot();
        assert_eq!(settled.count, recorded, "quiescent count must be exact");
    }
}
