//! The shared projected-point store.
//!
//! DB-LSH projects every point into `L` K-dimensional spaces. The seed
//! layout stored those projections *inside* the trees — one boxed
//! coordinate slice per leaf entry, per tree — so the same logical matrix
//! was scattered across `n * L` heap allocations. [`ProjStore`] is the
//! flat replacement: **one** contiguous row-major `Vec<f32>` of shape
//! `n x (L*K)`, written once at build/insert time. Row `id` holds the
//! point's `L` projections back to back (`G_0(o), G_1(o), ..,
//! G_{L-1}(o)`), and tree `i` reads its K-wide column window through
//! [`ProjStore::view`] — a borrowed [`StridedCoords`] that implements the
//! `CoordSource` contract the id-only R*-trees resolve coordinates
//! through.
//!
//! # Ownership story
//!
//! The store is owned by `DbLsh`, lives exactly as long as the trees it
//! backs, and is append-only: `insert` appends one row, `remove` only
//! tombstones (rows of removed ids are retained so ids stay stable —
//! exactly mirroring the backing `Dataset`). Because the trees hold bare
//! ids, dropping/rebuilding a tree never touches the store, and all `L`
//! trees read disjoint columns of the same cache-resident buffer.
//!
//! Precision: projections are dot products accumulated in `f64`
//! (`GaussianHasher`) and stored at `f32` — the same precision as the
//! `f32` datasets they are derived from, and half the memory traffic on
//! every leaf scan. The rounding is deterministic, so `check_invariants`
//! still compares stored coordinates with freshly recomputed (and
//! identically rounded) projections by exact equality; query-side
//! geometry is carried out in `f64` over values cast up from the store.

use dblsh_index::StridedCoords;

use crate::hasher::GaussianHasher;

/// Contiguous row-major storage for all `n x (L*K)` projected
/// coordinates, with per-tree column views. See the module docs for the
/// layout and ownership story.
#[derive(Debug, Clone)]
pub struct ProjStore {
    l: usize,
    k: usize,
    data: Vec<f32>,
    /// Reusable K-length f64 projection scratch for [`ProjStore::push_projected`],
    /// so a high-churn update workload pays no per-update allocation.
    scratch: Vec<f64>,
}

impl ProjStore {
    /// Empty store for `l` trees of projected dimensionality `k`.
    pub fn new(l: usize, k: usize) -> Self {
        debug_assert!(l >= 1 && k >= 1);
        ProjStore {
            l,
            k,
            data: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Store over a pre-filled buffer of `n * l * k` values (row-major
    /// `[n][l*k]`, debug-checked).
    pub fn from_flat(l: usize, k: usize, data: Vec<f32>) -> Self {
        debug_assert!(l >= 1 && k >= 1);
        debug_assert_eq!(data.len() % (l * k), 0, "flat buffer length mismatch");
        ProjStore {
            l,
            k,
            data,
            scratch: Vec::new(),
        }
    }

    /// Number of trees sharing the store.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Projected dimensionality per tree.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Width of one row: `l * k`.
    #[inline]
    pub fn row_width(&self) -> usize {
        self.l * self.k
    }

    /// Number of stored rows (points, including tombstoned ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.row_width()
    }

    /// True if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tree `i`'s coordinate view: the K-wide column window
    /// `[i*k, (i+1)*k)` of every row, as a borrowed `CoordSource`.
    #[inline]
    pub fn view(&self, i: usize) -> StridedCoords<'_> {
        debug_assert!(i < self.l, "tree index {i} out of range (L = {})", self.l);
        StridedCoords::new(&self.data, self.row_width(), i * self.k, self.k)
    }

    /// The full `l*k`-wide projection row of point `id`.
    #[inline]
    pub fn row(&self, id: u32) -> &[f32] {
        let w = self.row_width();
        &self.data[id as usize * w..(id as usize + 1) * w]
    }

    /// Append one point's projections (`row.len() == l * k`,
    /// debug-checked) and return its id (the dense row index).
    pub fn push_row(&mut self, row: &[f32]) -> u32 {
        debug_assert_eq!(row.len(), self.row_width(), "projection row width mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(row);
        id
    }

    /// Project `point` with `hasher` into all `l` spaces and append the
    /// resulting row (projection accumulated in `f64`, stored at `f32`),
    /// returning the new id.
    pub fn push_projected(&mut self, hasher: &GaussianHasher, point: &[f32]) -> u32 {
        debug_assert_eq!(hasher.l(), self.l);
        debug_assert_eq!(hasher.k(), self.k);
        let id = self.len() as u32;
        self.scratch.resize(self.k, 0.0);
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.l {
            hasher.project_into(i, point, &mut scratch);
            self.data.extend(scratch.iter().map(|&v| v as f32));
        }
        self.scratch = scratch;
        id
    }

    /// Heap footprint of the store in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_index::CoordSource;

    #[test]
    fn views_are_disjoint_column_windows() {
        // 2 rows, l = 3, k = 2: row r holds [r00, r01, r10, r11, r20, r21]
        let data: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let s = ProjStore::from_flat(3, 2, data);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row_width(), 6);
        assert_eq!(s.view(0).coords(0), &[0.0, 1.0]);
        assert_eq!(s.view(1).coords(0), &[2.0, 3.0]);
        assert_eq!(s.view(2).coords(0), &[4.0, 5.0]);
        assert_eq!(s.view(0).coords(1), &[6.0, 7.0]);
        assert_eq!(s.view(2).coords(1), &[10.0, 11.0]);
        assert_eq!(s.row(1), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn push_projected_matches_project_into() {
        let hasher = GaussianHasher::new(8, 3, 2, 42);
        let mut store = ProjStore::new(2, 3);
        let p: Vec<f32> = (0..8).map(|i| i as f32 * 0.3).collect();
        let id = store.push_projected(&hasher, &p);
        assert_eq!(id, 0);
        assert_eq!(store.len(), 1);
        let mut expect = vec![0.0f64; 3];
        for i in 0..2 {
            hasher.project_into(i, &p, &mut expect);
            let expect32: Vec<f32> = expect.iter().map(|&v| v as f32).collect();
            assert_eq!(store.view(i).coords(0), &expect32[..]);
        }
    }

    #[test]
    fn push_row_appends_dense_ids() {
        let mut s = ProjStore::new(2, 2);
        assert!(s.is_empty());
        assert_eq!(s.push_row(&[1.0, 2.0, 3.0, 4.0]), 0);
        assert_eq!(s.push_row(&[5.0, 6.0, 7.0, 8.0]), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.view(1).coords(1), &[7.0, 8.0]);
        assert!(s.memory_bytes() >= 8 * std::mem::size_of::<f32>());
    }
}
