//! The query phase (paper Section IV-C): Algorithm 1 ((r,c)-NN via
//! query-centric window queries), Algorithm 2 (c-ANN over the radius
//! ladder), and the (c,k)-ANN adaptation.
//!
//! Implementation notes kept faithful to the paper:
//!
//! * a bucket is the hypercube `W(G_i(q), w0 r)` (Eq. 8), enumerated
//!   lazily through the R*-tree window cursor so the scan can stop the
//!   moment a termination condition fires (Line 6 of Algorithm 1);
//! * the candidate budget is `2tL + 1` for (r,c)-NN and `2tL + k` for
//!   (c,k)-ANN; a point is *verified* (exact d-dimensional distance) at
//!   most once per query — re-encounters in other projections or larger
//!   windows are deduplicated with a per-query bitset, which is how the
//!   "access at most 2tL + 1 points" accounting of Section IV-A reads;
//! * the ladder starts at `params.r_min` and multiplies by `c` each round
//!   (`r = 1, c, c^2, ...` in the paper).

use dblsh_data::dataset::sq_dist;
use dblsh_data::{AnnIndex, Neighbor, QueryStats, SearchResult};
use dblsh_index::Rect;

use crate::index::DbLsh;

/// Per-query visited-set bitset (ids are dataset rows).
struct Visited {
    words: Vec<u64>,
}

impl Visited {
    fn new(n: usize) -> Self {
        Visited {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Mark `id`; returns true if it was not marked before.
    #[inline]
    fn insert(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }
}

impl DbLsh {
    /// Algorithm 1: one `(r, c)`-NN probe. Returns a point within `c*r`
    /// of `q` (or the point that exhausted the budget — by event E2 it is
    /// within `c*r` with constant probability), or `None` for "no point
    /// within r" (case 2 of Definition 2).
    pub fn r_c_nn(&self, q: &[f32], r: f64) -> (Option<Neighbor>, QueryStats) {
        assert_eq!(q.len(), self.data.dim(), "query dimensionality mismatch");
        let mut stats = QueryStats::default();
        let mut visited = Visited::new(self.data.len());
        let budget = self.params.rcnn_budget();
        let qproj: Vec<Vec<f64>> = (0..self.params.l)
            .map(|i| self.hasher.project(i, q))
            .collect();
        let cr = self.params.c * r;
        stats.rounds = 1;
        for (i, tree) in self.trees.iter().enumerate() {
            let window = Rect::centered_cube(&qproj[i], self.params.w0 * r);
            for (id, _) in tree.window(&window) {
                stats.index_probes += 1;
                if !visited.insert(id) {
                    continue;
                }
                stats.candidates += 1;
                let d = (sq_dist(q, self.data.point(id as usize)) as f64).sqrt();
                if stats.candidates >= budget || d <= cr {
                    return (
                        Some(Neighbor {
                            id,
                            dist: d as f32,
                        }),
                        stats,
                    );
                }
            }
        }
        (None, stats)
    }

    /// Algorithm 2: c-ANN by (r,c)-NN probes on the ladder
    /// `r = r_min, c r_min, c^2 r_min, ...`. Equivalent to
    /// `k_ann(q, 1)` but returning a single point.
    pub fn c_ann(&self, q: &[f32]) -> (Option<Neighbor>, QueryStats) {
        let res = self.k_ann(q, 1);
        (res.neighbors.first().copied(), res.stats)
    }

    /// (c,k)-ANN (Section IV-C): the two termination conditions become
    /// "`2tL + k` points verified" and "the current k-th NN is within
    /// `c*r`".
    ///
    /// Verified points are shared across ladder rounds (a window at radius
    /// `c*r` is a superset of the window at `r`), so each round only pays
    /// for newly encountered candidates.
    pub fn k_ann(&self, q: &[f32], k: usize) -> SearchResult {
        assert_eq!(q.len(), self.data.dim(), "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        let n = self.data.len();
        let mut stats = QueryStats::default();
        let mut visited = Visited::new(n);
        let mut top: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let budget = self.params.kann_budget(k);
        let qproj: Vec<Vec<f64>> = (0..self.params.l)
            .map(|i| self.hasher.project(i, q))
            .collect();

        let mut r = self.params.r_min;
        let mut verified_total = 0usize;
        'ladder: for _round in 0..self.params.max_rounds {
            stats.rounds += 1;
            let cr = self.params.c * r;
            // Previously verified points may already satisfy the current
            // radius (found "too early" in a smaller round).
            if top.len() == k && top[k - 1].dist as f64 <= cr {
                break 'ladder;
            }
            for (i, tree) in self.trees.iter().enumerate() {
                let window = Rect::centered_cube(&qproj[i], self.params.w0 * r);
                for (id, _) in tree.window(&window) {
                    stats.index_probes += 1;
                    if !visited.insert(id) {
                        continue;
                    }
                    verified_total += 1;
                    stats.candidates += 1;
                    let d = (sq_dist(q, self.data.point(id as usize)) as f64).sqrt();
                    insert_topk(&mut top, Neighbor { id, dist: d as f32 }, k);
                    // Line 6 of Algorithm 1, (c,k) variant:
                    if verified_total >= budget
                        || (top.len() == k && top[k - 1].dist as f64 <= cr)
                    {
                        break 'ladder;
                    }
                }
            }
            if verified_total >= n {
                break; // every point verified; nothing left to find
            }
            r *= self.params.c;
        }

        SearchResult {
            neighbors: top,
            stats,
        }
    }

    /// Total heap footprint of the `L` R*-trees.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.approx_memory()).sum()
    }

    /// Incremental (c,k)-ANN — the "more efficient search strategies and
    /// early termination conditions" the paper's conclusion leaves as
    /// future work, in the style of I-LSH/EI-LSH: instead of the discrete
    /// radius ladder, browse each projected space in *ascending projected
    /// distance* (best-first on the R*-trees) and merge the `L` streams,
    /// verifying candidates as they surface.
    ///
    /// Early termination: for the dynamic family,
    /// `E[||G_i(o) - G_i(q)||^2] = K ||o - q||^2`, so once the smallest
    /// projected distance still unseen exceeds `sqrt(K) * c * d_k` (with
    /// `d_k` the current k-th true distance), no unverified point can
    /// displace the current top-k c-approximately, and the scan stops.
    /// The `2tL + k` budget still applies as a hard cap.
    ///
    /// Compared to [`DbLsh::k_ann`], this trades the ladder's windowing
    /// overhead for heap maintenance: it shines when the NN radius is
    /// unknown or wildly query-dependent (no `r_min` tuning at all).
    pub fn k_ann_incremental(&self, q: &[f32], k: usize) -> SearchResult {
        assert_eq!(q.len(), self.data.dim(), "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        let n = self.data.len();
        let mut stats = QueryStats::default();
        stats.rounds = 1;
        let mut visited = Visited::new(n);
        let mut top: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let budget = self.params.kann_budget(k);
        let stop_scale = (self.params.k as f64).sqrt() * self.params.c;

        let qproj: Vec<Vec<f64>> = (0..self.params.l)
            .map(|i| self.hasher.project(i, q))
            .collect();
        let mut streams: Vec<_> = self
            .trees
            .iter()
            .zip(&qproj)
            .map(|(t, qp)| t.nearest_iter(qp).peekable())
            .collect();

        let mut verified = 0usize;
        loop {
            // pick the stream whose head has the smallest projected dist
            let mut best: Option<(f64, usize)> = None;
            for (i, s) in streams.iter_mut().enumerate() {
                if let Some(&(_, d2)) = s.peek() {
                    if best.is_none_or(|(b, _)| d2 < b) {
                        best = Some((d2, i));
                    }
                }
            }
            let Some((proj_d2, i)) = best else { break };
            // early termination on the projected-distance estimator
            if top.len() == k {
                let dk = top[k - 1].dist as f64;
                if proj_d2.sqrt() > stop_scale * dk {
                    break;
                }
            }
            let (id, _) = streams[i].next().expect("peeked");
            stats.index_probes += 1;
            if !visited.insert(id) {
                continue;
            }
            verified += 1;
            stats.candidates += 1;
            let d = (sq_dist(q, self.data.point(id as usize)) as f64).sqrt();
            insert_topk(&mut top, Neighbor { id, dist: d as f32 }, k);
            if verified >= budget || verified >= n {
                break;
            }
        }

        SearchResult {
            neighbors: top,
            stats,
        }
    }
}

/// Insert into a size-`k` ascending top list (ids are already unique —
/// the visited bitset guarantees each id is verified once).
#[inline]
fn insert_topk(top: &mut Vec<Neighbor>, cand: Neighbor, k: usize) {
    let pos = top.partition_point(|n| n.dist <= cand.dist);
    if pos >= k {
        return;
    }
    top.insert(pos, cand);
    top.truncate(k);
}

impl AnnIndex for DbLsh {
    fn name(&self) -> &'static str {
        "DB-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> SearchResult {
        self.k_ann(query, k)
    }

    fn index_size_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DbLshParams;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
    use dblsh_data::{metrics, Dataset};
    use std::sync::Arc;

    fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n,
            dim,
            clusters: 30,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed,
        })
    }

    fn build(data: &Arc<Dataset>) -> DbLsh {
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(8, 4)
            .with_r_min(0.5);
        DbLsh::build(Arc::clone(data), &params)
    }

    #[test]
    fn k_ann_has_high_recall_on_clustered_data() {
        let mut data = clustered(4000, 24, 11);
        let queries = split_queries(&mut data, 20, 3);
        let data = Arc::new(data);
        let idx = build(&data);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.k_ann(q, 10);
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.8, "mean recall too low: {mean}");
    }

    #[test]
    fn k_ann_respects_c2_guarantee_on_top1() {
        // Theorem 1: returned point within c^2 * r* with constant
        // probability; across 30 queries the *average* must hold easily.
        let mut data = clustered(3000, 16, 5);
        let queries = split_queries(&mut data, 30, 8);
        let data = Arc::new(data);
        let idx = build(&data);
        let c2 = idx.params().c * idx.params().c;
        let mut ok = 0;
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 1)[0];
            if let (Some(got), _) = idx.c_ann(q) {
                if got.dist as f64 <= c2 as f64 * truth.dist as f64 + 1e-6 {
                    ok += 1;
                }
            }
        }
        // far above the theoretical floor of (1/2 - 1/e) ~ 0.13
        assert!(ok >= 25, "only {ok}/30 met the c^2 bound");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let data = Arc::new(clustered(2000, 16, 9));
        let idx = build(&data);
        let res = idx.k_ann(data.point(17), 25);
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids = res.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), res.neighbors.len());
    }

    #[test]
    fn budget_is_respected() {
        let data = Arc::new(clustered(3000, 16, 2));
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(8, 4)
            .with_t(4); // tiny budget: 2*4*4 + k
        let idx = DbLsh::build(Arc::clone(&data), &params);
        let res = idx.k_ann(data.point(0), 5);
        assert!(
            res.stats.candidates <= params.kann_budget(5),
            "verified {} candidates, budget {}",
            res.stats.candidates,
            params.kann_budget(5)
        );
    }

    #[test]
    fn query_on_indexed_point_meets_guarantee() {
        // At r* = 0 the ladder guarantee degrades to c^2 * r_min; on this
        // workload the point itself is found in practice.
        let data = Arc::new(clustered(1500, 12, 4));
        let idx = build(&data);
        let res = idx.k_ann(data.point(42), 1);
        let bound = idx.params().c * idx.params().c * idx.params().r_min;
        assert!((res.neighbors[0].dist as f64) <= bound);
    }

    #[test]
    fn r_c_nn_contract() {
        let data = Arc::new(clustered(2000, 12, 6));
        let idx = build(&data);
        let q = data.point(10);
        // huge radius: must return something within c*r
        let (hit, stats) = idx.r_c_nn(q, 1000.0);
        let hit = hit.expect("radius covers everything");
        assert!(hit.dist as f64 <= idx.params().c * 1000.0);
        assert_eq!(stats.rounds, 1);
        // microscopic radius on a far-away query: typically nothing
        let far = vec![1e4f32; 12];
        let (none, _) = idx.r_c_nn(&far, 1e-9);
        assert!(none.is_none());
    }

    #[test]
    fn k_larger_than_dataset_is_safe() {
        let data = Arc::new(clustered(50, 8, 3));
        let params = DbLshParams::paper_defaults(50).with_kl(4, 2);
        let idx = DbLsh::build(Arc::clone(&data), &params);
        let res = idx.k_ann(data.point(0), 500);
        assert!(res.neighbors.len() <= 50);
        assert!(!res.neighbors.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let data = Arc::new(clustered(2000, 16, 1));
        let idx = build(&data);
        let res = idx.k_ann(data.point(3), 10);
        assert!(res.stats.rounds >= 1);
        assert!(res.stats.candidates >= res.neighbors.len());
        assert!(res.stats.index_probes >= res.stats.candidates);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn incremental_mode_matches_ladder_quality() {
        let mut data = clustered(3000, 16, 8);
        let queries = split_queries(&mut data, 15, 12);
        let data = Arc::new(data);
        let idx = build(&data);
        let mut ladder = Vec::new();
        let mut incremental = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            ladder.push(metrics::recall(&idx.k_ann(q, 10).neighbors, &truth));
            incremental.push(metrics::recall(
                &idx.k_ann_incremental(q, 10).neighbors,
                &truth,
            ));
        }
        let li = metrics::mean(&ladder);
        let inc = metrics::mean(&incremental);
        assert!(inc > 0.8, "incremental recall too low: {inc}");
        assert!(inc + 0.15 > li, "incremental ({inc}) far below ladder ({li})");
    }

    #[test]
    fn incremental_mode_contracts() {
        let data = Arc::new(clustered(1000, 12, 3));
        let idx = build(&data);
        let res = idx.k_ann_incremental(data.point(5), 8);
        assert!(res.neighbors.len() <= 8);
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(res.stats.candidates <= idx.params().kann_budget(8));
        // the query point itself has projected distance 0 in every stream,
        // so incremental browsing always verifies it first
        assert_eq!(res.neighbors[0].id, 5);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn duplicate_points_handled() {
        // 100 copies of the same vector + some distinct ones
        let mut rows = vec![vec![1.0f32; 8]; 100];
        for i in 0..50 {
            rows.push(vec![i as f32 + 10.0; 8]);
        }
        let data = Arc::new(Dataset::from_rows(&rows));
        let params = DbLshParams::paper_defaults(150).with_kl(4, 2);
        let idx = DbLsh::build(Arc::clone(&data), &params);
        let res = idx.k_ann(&vec![1.0f32; 8], 5);
        assert_eq!(res.neighbors.len(), 5);
        assert!(res.neighbors.iter().all(|n| n.dist == 0.0));
    }
}
