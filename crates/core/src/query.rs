//! The query phase (paper Section IV-C): Algorithm 1 ((r,c)-NN via
//! query-centric window queries), Algorithm 2 (c-ANN over the radius
//! ladder), and the (c,k)-ANN adaptation — plus the serving-oriented
//! entry points: per-query tuning through [`SearchOptions`] and
//! multi-threaded [`DbLsh::search_batch`].
//!
//! Implementation notes kept faithful to the paper:
//!
//! * a bucket is the hypercube `W(G_i(q), w0 r)` (Eq. 8), enumerated
//!   lazily through the R*-tree window cursor so the scan can stop the
//!   moment a termination condition fires (Line 6 of Algorithm 1);
//! * the candidate budget is `2tL + 1` for (r,c)-NN and `2tL + k` for
//!   (c,k)-ANN; a point is *verified* (exact d-dimensional distance) at
//!   most once per query — re-encounters in other projections or larger
//!   windows are deduplicated with a per-query bitset, which is how the
//!   "access at most 2tL + 1 points" accounting of Section IV-A reads;
//! * the ladder starts at `r_min` and multiplies by `c` each round
//!   (`r = 1, c, c^2, ...` in the paper).
//!
//! Per-query heap churn is eliminated with a thread-local
//! [`QueryScratch`]: the visited bitset, the `L x K` projection buffer
//! and the candidate-block buffers are reused across queries on the same
//! thread (the bitset is cleared sparsely — only words actually touched
//! are zeroed).
//!
//! # Blocked verification
//!
//! Candidates are no longer verified one at a time as the window cursor
//! yields them. Each tree leaf's in-window ids are drained as one batch
//! ([`dblsh_index::WindowCursor::next_batch`]), deduplicated against the
//! visited bitset, **sorted into memory order** (ascending internal id —
//! near-sequential rows on a locality-relabeled index), and their exact
//! distances computed in one [`dblsh_data::kernels::sq_dist_block`] call
//! whose rows pipeline freely instead of serializing behind each
//! verify-compare-push step. The budget and `c·r`
//! termination conditions of Algorithm 1 are then checked per candidate,
//! in *canonical order* — ascending `(distance, external id)` — so the
//! query accounting is unchanged (each unique candidate counted once, at
//! most one leaf of distance computations beyond the stopping point,
//! exactly the cursor's pre-existing pause granularity) and results are
//! independent of the internal enumeration order. Per-row distances are
//! bit-identical to the scalar kernel, which together with the canonical
//! order makes relabeled and identity-order builds answer byte-identically.

use std::cell::RefCell;
use std::time::Instant;

use dblsh_data::error::check_query;
use dblsh_data::kernels::{
    canonical_verify_keys, canonical_verify_keys_prefiltered,
    canonical_verify_keys_prefiltered_traced, key_parts, VerifySplit,
};
use dblsh_data::{
    push_candidate_unchecked, AnnIndex, Dataset, DbLshError, Neighbor, QueryStats, SearchResult,
    Sq8Query, Visited,
};
use dblsh_index::Rect;
use dblsh_telemetry::{QueryTrace, Stage};

use crate::index::DbLsh;

/// Per-component heap footprint of a [`DbLsh`] index — what the bench
/// harness reports as "index size", split by owner. Returned by
/// [`DbLsh::memory_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// The shared projected-point store: all `n x (L*K)` coordinates,
    /// stored once, row-major.
    pub proj_store_bytes: usize,
    /// The `L` flat tree arenas: id arrays plus inline inner-node bounds.
    /// No point coordinates — those are counted in `proj_store_bytes`.
    pub tree_bytes: usize,
    /// The id-mapping state: the two internal↔external `u32` maps plus
    /// (on relabeled builds) the dataset rows physically reordered into
    /// internal order for verification. Zero on identity-order builds
    /// that were never compacted.
    pub relabel_bytes: usize,
    /// The SQ8 quantized code store the verification pre-filter scans:
    /// one `u8` code per coordinate plus one clamped-flag byte per row,
    /// plus the per-dimension grid — about a quarter of one f32 row copy.
    pub sq8_bytes: usize,
    /// What churn currently costs: the share of the store, the dataset
    /// rows and the id maps occupied by *tombstoned* rows — payload a
    /// [`crate::DbLsh::compact`] call would reclaim. An overlay over the
    /// other components (plus the backing dataset, which the breakdown
    /// otherwise does not count), **not** an additional component:
    /// [`MemoryBreakdown::total`] does not add it. Returns to 0 after a
    /// compaction.
    pub dead_bytes: usize,
}

impl MemoryBreakdown {
    /// Sum of all owned components (`dead_bytes` is an overlay, not a
    /// component — see its field docs).
    pub fn total(&self) -> usize {
        self.proj_store_bytes + self.tree_bytes + self.relabel_bytes + self.sq8_bytes
    }
}

/// Per-query knobs, overriding the index-wide [`crate::DbLshParams`]
/// defaults for a single [`DbLsh::search_with`] /
/// [`DbLsh::search_batch_with`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Override the candidate budget (`2tL + k` by default). Larger
    /// budgets buy recall with verification time — per query, without
    /// rebuilding the index.
    pub budget: Option<usize>,
    /// Override the radius-ladder start for this query (e.g. a known
    /// scale for this tenant's data).
    pub r_min: Option<f64>,
    /// Override the ladder round cap.
    pub max_rounds: Option<usize>,
    /// When `true`, skip the per-query work counters: the returned
    /// [`QueryStats`] is zeroed. The counters are cheap; this mainly
    /// documents intent for latency-critical callers.
    pub skip_stats: bool,
    /// When `true`, time the verification stage (candidate-block sort +
    /// fused distance kernel) and report it in
    /// [`QueryStats::verify_nanos`]. Timed per block, so it costs two
    /// clock reads per drained leaf — off by default to keep the hot
    /// path free of them.
    pub time_verification: bool,
    /// Stage-1 SQ8 quantized pre-filter (on by default). Each candidate
    /// block is first scanned through the u8 code store for a
    /// conservative lower bound on the squared distance; candidates whose
    /// bound exceeds the current k-th-best squared distance are dropped
    /// before any f32 row is read. Answers and the shared work counters
    /// (`candidates`, `rounds`, `index_probes`) are **byte-identical**
    /// with the prefilter on or off — only `prefilter_pruned` /
    /// `prefilter_survivors` (and wall-clock) differ. Applies to the
    /// budgeted k-ANN paths ([`DbLsh::search_with`],
    /// [`DbLsh::search_canonical`], batch); the single-probe
    /// [`DbLsh::r_c_nn`] and incremental modes always verify exactly.
    pub prefilter: bool,
    /// When `true`, request per-stage tracing for this query. The core
    /// search paths themselves never read the flag — tracing goes through
    /// the dedicated traced entry points
    /// ([`DbLsh::search_canonical_traced`],
    /// [`LadderProber::probe_round_traced`]), so the untraced hot path
    /// stays free of clock reads — but the serving engine and the wire
    /// protocol carry it per request to decide whether to record a
    /// [`dblsh_telemetry::QueryTrace`] into the per-stage latency
    /// histograms and the slow-query log. Answers and [`QueryStats`] are
    /// byte-identical with the flag on or off.
    pub trace: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            budget: None,
            r_min: None,
            max_rounds: None,
            skip_stats: false,
            time_verification: false,
            prefilter: true,
            trace: false,
        }
    }
}

/// A resolved per-query execution plan: the [`SearchOptions`] overrides
/// validated against the index parameters. Public so serving layers
/// (the `dblsh-serve` sharded engine) can resolve one plan and apply it
/// across every shard of a fan-out query.
#[derive(Debug, Clone, Copy)]
pub struct LadderPlan {
    /// Candidate budget (`2tL + k` unless overridden).
    pub budget: usize,
    /// Radius-ladder start.
    pub r0: f64,
    /// Ladder round cap.
    pub max_rounds: usize,
    /// Whether verification-stage timing was requested.
    pub timing: bool,
    /// Whether the SQ8 quantized pre-filter screens candidate blocks.
    pub prefilter: bool,
}

impl SearchOptions {
    /// Validate the overrides against a parameter set, without needing a
    /// built index — the serving layer resolves one plan per request and
    /// applies it across every shard.
    pub fn plan(&self, params: &crate::DbLshParams, k: usize) -> Result<LadderPlan, DbLshError> {
        let budget = match self.budget {
            Some(0) => return Err(DbLshError::invalid("budget", "must be at least 1")),
            Some(b) => b,
            None => params.kann_budget(k),
        };
        let r0 = match self.r_min {
            Some(r) if !(r > 0.0 && r.is_finite()) => {
                return Err(DbLshError::invalid(
                    "r_min",
                    "radius ladder start must be positive and finite",
                ))
            }
            Some(r) => r,
            None => params.r_min,
        };
        let max_rounds = match self.max_rounds {
            Some(0) => return Err(DbLshError::invalid("max_rounds", "must be at least 1")),
            Some(m) => m,
            None => params.max_rounds,
        };
        Ok(LadderPlan {
            budget,
            r0,
            max_rounds,
            timing: self.time_verification,
            prefilter: self.prefilter,
        })
    }

    /// Validate the overrides against the index parameters.
    fn resolved(&self, index: &DbLsh, k: usize) -> Result<LadderPlan, DbLshError> {
        self.plan(&index.params, k)
    }
}

/// Reusable per-thread query state: the (sparse-clearing)
/// [`Visited`] bitset, the `L x K` query projection buffer and the
/// candidate-block buffers of the blocked verification stage.
struct QueryScratch {
    visited: Visited,
    /// Flat `[l][k]` projections of the current query.
    qproj: Vec<f64>,
    /// Fresh (unvisited) internal ids of the current candidate block.
    block: Vec<u32>,
    /// Squared distances of the block, parallel to `block`.
    dists: Vec<f32>,
    /// Canonical consumption keys: `(sq-dist bits << 32) | external id`.
    keys: Vec<u64>,
    /// Ids of the current block that survived the SQ8 pre-filter.
    survivors: Vec<u32>,
    /// Quantized-domain query state for the SQ8 bound scan.
    prep: Sq8Query,
}

impl QueryScratch {
    const fn new() -> Self {
        QueryScratch {
            visited: Visited::empty(),
            qproj: Vec::new(),
            block: Vec::new(),
            dists: Vec::new(),
            keys: Vec::new(),
            survivors: Vec::new(),
            prep: Sq8Query::empty(),
        }
    }

    /// Filter one cursor batch against the visited set into `block`,
    /// counting every batch id as an index probe. Returns `false` when
    /// the whole batch was already visited (nothing fresh to verify).
    fn collect_fresh(&mut self, batch: &[u32], stats: &mut QueryStats) -> bool {
        stats.index_probes += batch.len();
        self.block.clear();
        for &id in batch {
            if self.visited.insert(id) {
                self.block.push(id);
            }
        }
        !self.block.is_empty()
    }
}

/// Verify the fresh candidates in `scratch.block` against `q` through
/// the shared canonical staging: sort into memory order, optionally
/// screen through the SQ8 pre-filter
/// ([`dblsh_data::kernels::canonical_verify_keys_prefiltered`], when
/// `prune` carries the current squared-distance threshold), fused
/// distance kernel over the internal-order rows, canonical
/// `(distance, external id)` consumption keys in `scratch.keys`.
///
/// Accumulates `verify_nanos` (when `timing` is set) and the prefilter
/// counters into `stats`.
#[inline]
fn verify_block(
    index: &DbLsh,
    q: &[f32],
    scratch: &mut QueryScratch,
    timing: bool,
    prune: Option<f32>,
    stats: &mut QueryStats,
) {
    let started = if timing { Some(Instant::now()) } else { None };
    let verify = index.verify_data();
    match prune {
        Some(threshold) => {
            let (pruned, survived) = canonical_verify_keys_prefiltered(
                q,
                verify.flat(),
                verify.dim(),
                &index.sq8,
                &scratch.prep,
                threshold,
                &mut scratch.block,
                &mut scratch.dists,
                &mut scratch.survivors,
                &mut scratch.keys,
                |internal| index.to_ext(internal),
            );
            stats.prefilter_pruned += pruned;
            stats.prefilter_survivors += survived;
        }
        None => canonical_verify_keys(
            q,
            verify.flat(),
            verify.dim(),
            &mut scratch.block,
            &mut scratch.dists,
            &mut scratch.keys,
            |internal| index.to_ext(internal),
        ),
    }
    if let Some(t) = started {
        stats.verify_nanos += t.elapsed().as_nanos() as u64;
    }
}

/// [`push_candidate_unchecked`] with a parallel mirror of the raw
/// *squared* f32 distances — the prune-threshold source. The threshold
/// must be the k-th squared distance exactly as the verify kernel
/// produced it (not a re-squared `sqrt`), or the bound comparison would
/// not be conservative.
#[inline]
fn push_candidate_with_sq(
    top: &mut Vec<Neighbor>,
    top_sq: &mut Vec<f32>,
    cand: Neighbor,
    d2: f32,
    k: usize,
) {
    let pos = top.partition_point(|n| n.dist <= cand.dist);
    if pos >= k {
        return;
    }
    top.insert(pos, cand);
    top_sq.insert(pos, d2);
    top.truncate(k);
    top_sq.truncate(k);
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = const { RefCell::new(QueryScratch::new()) };
}

/// Borrow the thread's scratch, prepared for a query against `index`.
fn with_scratch<T>(index: &DbLsh, q: &[f32], f: impl FnOnce(&mut QueryScratch) -> T) -> T {
    SCRATCH.with(|cell| {
        let mut scratch = match cell.try_borrow_mut() {
            Ok(s) => s,
            // A Drop impl re-entering the query path would hit this; fall
            // back to a fresh scratch rather than panicking.
            Err(_) => return f(&mut fresh_scratch(index, q)),
        };
        prepare_scratch(&mut scratch, index, q);
        f(&mut scratch)
    })
}

fn fresh_scratch(index: &DbLsh, q: &[f32]) -> QueryScratch {
    let mut s = QueryScratch::new();
    prepare_scratch(&mut s, index, q);
    s
}

fn prepare_scratch(scratch: &mut QueryScratch, index: &DbLsh, q: &[f32]) {
    // The visited domain is *internal* ids — physical store rows.
    scratch.visited.reset(index.store.len());
    let (l, k) = (index.params.l, index.params.k);
    scratch.qproj.resize(l * k, 0.0);
    for i in 0..l {
        index
            .hasher
            .project_into(i, q, &mut scratch.qproj[i * k..(i + 1) * k]);
    }
    index.sq8.prepare_query(q, &mut scratch.prep);
}

impl DbLsh {
    /// Algorithm 1: one `(r, c)`-NN probe. Returns a point within `c*r`
    /// of `q` (or the point that exhausted the budget — by event E2 it is
    /// within `c*r` with constant probability), or `None` for "no point
    /// within r" (case 2 of Definition 2).
    pub fn r_c_nn(&self, q: &[f32], r: f64) -> Result<(Option<Neighbor>, QueryStats), DbLshError> {
        check_query(self.data.dim(), q, 1)?;
        if !(r > 0.0 && r.is_finite()) {
            return Err(DbLshError::invalid(
                "r",
                "probe radius must be positive and finite",
            ));
        }
        Ok(with_scratch(self, q, |scratch| {
            let mut stats = QueryStats::default();
            let budget = self.params.rcnn_budget();
            let k = self.params.k;
            let cr = self.params.c * r;
            stats.rounds = 1;
            for (i, tree) in self.trees.iter().enumerate() {
                let view = self.store.view(i);
                let qp = &scratch.qproj[i * k..(i + 1) * k];
                let window = Rect::centered_cube(qp, self.params.w0 * r);
                let mut cursor = tree.window(&view, &window);
                while let Some(batch) = cursor.next_batch() {
                    if !scratch.collect_fresh(batch, &mut stats) {
                        continue;
                    }
                    // Always exact: a single probe has no evolving k-th
                    // best to prune against.
                    verify_block(self, q, scratch, false, None, &mut stats);
                    for &key in &scratch.keys {
                        stats.candidates += 1;
                        let (id, d) = key_parts(key);
                        if stats.candidates >= budget || d <= cr {
                            return (Some(Neighbor { id, dist: d as f32 }), stats);
                        }
                    }
                }
            }
            (None, stats)
        }))
    }

    /// Algorithm 2: c-ANN by (r,c)-NN probes on the ladder
    /// `r = r_min, c r_min, c^2 r_min, ...`. Equivalent to
    /// `k_ann(q, 1)` but returning a single point.
    pub fn c_ann(&self, q: &[f32]) -> Result<(Option<Neighbor>, QueryStats), DbLshError> {
        let res = self.k_ann(q, 1)?;
        Ok((res.neighbors.first().copied(), res.stats))
    }

    /// (c,k)-ANN (Section IV-C) with the index-wide defaults; see
    /// [`DbLsh::search_with`] for per-query tuning.
    pub fn k_ann(&self, q: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.search_with(q, k, &SearchOptions::default())
    }

    /// (c,k)-ANN (Section IV-C): the two termination conditions become
    /// "`2tL + k` points verified" and "the current k-th NN is within
    /// `c*r`". `opts` overrides the budget, ladder start and round cap
    /// for this query only.
    ///
    /// Verified points are shared across ladder rounds (a window at radius
    /// `c*r` is a superset of the window at `r`), so each round only pays
    /// for newly encountered candidates.
    pub fn search_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> Result<SearchResult, DbLshError> {
        check_query(self.data.dim(), q, k)?;
        let plan = opts.resolved(self, k)?;
        let mut res = with_scratch(self, q, |scratch| self.ladder_core(q, k, &plan, scratch));
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    fn ladder_core(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        let LadderPlan {
            budget,
            r0,
            max_rounds,
            timing,
            prefilter,
        } = *plan;
        let kdim = self.params.k;
        let live = self.len();
        let mut stats = QueryStats::default();
        let mut top: Vec<Neighbor> = Vec::with_capacity(k + 1);
        // Mirror of `top`'s raw squared f32 distances (the verify
        // kernel's native output) — the prefilter's prune threshold.
        let mut top_sq: Vec<f32> = Vec::with_capacity(k + 1);

        let mut r = r0;
        let mut verified_total = 0usize;
        'ladder: for _round in 0..max_rounds {
            stats.rounds += 1;
            let cr = self.params.c * r;
            // Previously verified points may already satisfy the current
            // radius (found "too early" in a smaller round).
            if top.len() == k && top[k - 1].dist as f64 <= cr {
                break 'ladder;
            }
            for (i, tree) in self.trees.iter().enumerate() {
                let view = self.store.view(i);
                let qp = &scratch.qproj[i * kdim..(i + 1) * kdim];
                let window = Rect::centered_cube(qp, self.params.w0 * r);
                let mut cursor = tree.window(&view, &window);
                while let Some(batch) = cursor.next_batch() {
                    if !scratch.collect_fresh(batch, &mut stats) {
                        continue;
                    }
                    // Prune threshold as of block start: the k-th best
                    // squared distance (∞ while the top is not full — no
                    // pruning until k candidates exist). Pruned
                    // candidates still emit a canonical key carrying
                    // their *bound*, which sorts strictly after every
                    // key that could update the top, so the counters and
                    // the top trajectory are byte-identical to the exact
                    // path.
                    let prune = prefilter.then(|| {
                        if top.len() == k {
                            top_sq[k - 1]
                        } else {
                            f32::INFINITY
                        }
                    });
                    verify_block(self, q, scratch, timing, prune, &mut stats);
                    // Line 6 of Algorithm 1, (c,k) variant, per candidate
                    // in canonical (distance, external id) order:
                    for &key in &scratch.keys {
                        verified_total += 1;
                        stats.candidates += 1;
                        let (id, d) = key_parts(key);
                        let d2 = f32::from_bits((key >> 32) as u32);
                        push_candidate_with_sq(
                            &mut top,
                            &mut top_sq,
                            Neighbor { id, dist: d as f32 },
                            d2,
                            k,
                        );
                        if verified_total >= budget
                            || (top.len() == k && top[k - 1].dist as f64 <= cr)
                        {
                            break 'ladder;
                        }
                    }
                }
            }
            if verified_total >= live {
                break; // every live point verified; nothing left to find
            }
            r *= self.params.c;
        }

        SearchResult {
            neighbors: top,
            stats,
        }
    }

    /// Answer one (c,k)-ANN query per row of `queries`, fanning the rows
    /// across all available cores. Results are in query order.
    pub fn search_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        self.search_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`DbLsh::search_batch`] with per-batch [`SearchOptions`].
    pub fn search_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        let plan = opts.resolved(self, k)?;
        let mut results = dblsh_data::parallel_search_batch(queries, self.data.dim(), k, |q| {
            Ok(with_scratch(self, q, |scratch| {
                self.ladder_core(q, k, &plan, scratch)
            }))
        })?;
        if opts.skip_stats {
            for r in &mut results {
                r.stats = QueryStats::default();
            }
        }
        Ok(results)
    }

    /// Total heap footprint of the index structures: the shared
    /// projection store plus the `L` flat R*-tree arenas. See
    /// [`DbLsh::memory_breakdown`] for the per-component split.
    pub fn memory_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }

    /// Per-component heap footprint: the one shared [`crate::ProjStore`]
    /// (all `n x (L*K)` projected coordinates), the `L` id-only tree
    /// arenas (node structure and inline inner bounds, no coordinates),
    /// the id-mapping state (maps + any reordered verification rows),
    /// and — as an overlay — the `dead_bytes` that tombstoned rows
    /// currently pin across the store, the dataset rows and the maps.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let dead = self.dead_rows();
        let dim = self.data.dim();
        // Per dead row: its projection row, its external dataset row,
        // its verification-copy row (relabeled builds only), and its two
        // u32 map entries (mapped indexes only). Logical (len-based)
        // size, like every other figure here.
        let per_dead_row = self.store.row_width() * std::mem::size_of::<f32>()
            + dim * std::mem::size_of::<f32>() * (1 + usize::from(self.verify_rows.is_some()))
            + 2 * std::mem::size_of::<u32>() * usize::from(self.maps.is_some())
            + dim * std::mem::size_of::<u8>() // sq8 code row
            + 1; // sq8 clamped flag
        MemoryBreakdown {
            proj_store_bytes: self.store.memory_bytes(),
            tree_bytes: self.trees.iter().map(|t| t.approx_memory()).sum(),
            // Logical (len-based) size throughout, so the id maps and the
            // row copy are accounted on one basis; Vec growth slack after
            // heavy insert traffic is deliberately excluded.
            relabel_bytes: self.maps.as_ref().map_or(0, |m| {
                (m.ext_of_int.len() + m.int_of_ext.len()) * std::mem::size_of::<u32>()
            }) + self
                .verify_rows
                .as_ref()
                .map_or(0, |v| std::mem::size_of_val(v.flat())),
            sq8_bytes: self.sq8.memory_bytes(),
            dead_bytes: dead * per_dead_row,
        }
    }

    /// Incremental (c,k)-ANN — the "more efficient search strategies and
    /// early termination conditions" the paper's conclusion leaves as
    /// future work, in the style of I-LSH/EI-LSH: instead of the discrete
    /// radius ladder, browse each projected space in *ascending projected
    /// distance* (best-first on the R*-trees) and merge the `L` streams,
    /// verifying candidates as they surface.
    ///
    /// Early termination: for the dynamic family,
    /// `E[||G_i(o) - G_i(q)||^2] = K ||o - q||^2`, so once the smallest
    /// projected distance still unseen exceeds `sqrt(K) * c * d_k` (with
    /// `d_k` the current k-th true distance), no unverified point can
    /// displace the current top-k c-approximately, and the scan stops.
    /// The `2tL + k` budget still applies as a hard cap.
    ///
    /// Compared to [`DbLsh::k_ann`], this trades the ladder's windowing
    /// overhead for heap maintenance: it shines when the NN radius is
    /// unknown or wildly query-dependent (no `r_min` tuning at all).
    pub fn k_ann_incremental(&self, q: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        /// Candidates drained from the merged streams per verification
        /// block: enough to amortize the fused kernel, small enough that
        /// the early-termination test (whose `d_k` is frozen during one
        /// drain) lags by at most one block.
        const INCR_BLOCK: usize = 16;
        check_query(self.data.dim(), q, k)?;
        let live = self.len();
        Ok(with_scratch(self, q, |scratch| {
            let kdim = self.params.k;
            let mut stats = QueryStats {
                rounds: 1,
                ..Default::default()
            };
            let mut top: Vec<Neighbor> = Vec::with_capacity(k + 1);
            let budget = self.params.kann_budget(k);
            let stop_scale = (self.params.k as f64).sqrt() * self.params.c;

            let views: Vec<_> = (0..self.trees.len()).map(|i| self.store.view(i)).collect();
            let mut streams: Vec<_> = self
                .trees
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    t.nearest_iter(&views[i], &scratch.qproj[i * kdim..(i + 1) * kdim])
                        .peekable()
                })
                .collect();

            let mut verified = 0usize;
            'merge: loop {
                // Drain phase: up to INCR_BLOCK fresh candidates in
                // ascending projected distance across the L streams.
                scratch.block.clear();
                let dk = if top.len() == k {
                    top[k - 1].dist as f64
                } else {
                    f64::INFINITY
                };
                let mut drained_dry = false;
                while scratch.block.len() < INCR_BLOCK {
                    // pick the stream whose head has the smallest
                    // projected distance
                    let mut best: Option<(f64, usize)> = None;
                    for (i, s) in streams.iter_mut().enumerate() {
                        if let Some(&(_, d2)) = s.peek() {
                            if best.is_none_or(|(b, _)| d2 < b) {
                                best = Some((d2, i));
                            }
                        }
                    }
                    let Some((proj_d2, i)) = best else {
                        drained_dry = true;
                        break;
                    };
                    // early termination on the projected-distance
                    // estimator (d_k frozen for this block)
                    if dk.is_finite() && proj_d2.sqrt() > stop_scale * dk {
                        drained_dry = true;
                        break;
                    }
                    // `best` was computed from a successful peek of
                    // stream `i`, so `next` cannot come up empty.
                    let Some((id, _)) = streams[i].next() else {
                        drained_dry = true;
                        break;
                    };
                    stats.index_probes += 1;
                    if scratch.visited.insert(id) {
                        scratch.block.push(id);
                    }
                }
                // Verify phase: blocked kernel, canonical consumption —
                // always exact (the projected-distance early-termination
                // test needs every drained candidate's true distance).
                if !scratch.block.is_empty() {
                    verify_block(self, q, scratch, false, None, &mut stats);
                    for &key in &scratch.keys {
                        verified += 1;
                        stats.candidates += 1;
                        let (id, d) = key_parts(key);
                        push_candidate_unchecked(&mut top, Neighbor { id, dist: d as f32 }, k);
                        if verified >= budget || verified >= live {
                            break 'merge;
                        }
                    }
                }
                if drained_dry {
                    break;
                }
            }

            SearchResult {
                neighbors: top,
                stats,
            }
        }))
    }
}

/// Reusable buffers for a [`LadderProber`]: the visited bitset, the
/// query-projection buffer and the candidate-block staging of the blocked
/// verification stage. Owned by the caller (serving workers keep a pool
/// of these in thread-locals — one per shard — and reuse them across
/// requests, which is what keeps the fan-out path allocation-free after
/// warm-up).
#[derive(Debug)]
pub struct ProberScratch {
    visited: Visited,
    qproj: Vec<f64>,
    block: Vec<u32>,
    dists: Vec<f32>,
    keys: Vec<u64>,
    survivors: Vec<u32>,
    prep: Sq8Query,
}

impl ProberScratch {
    /// Empty buffers (const-constructible for thread-local pools); they
    /// size themselves on first use.
    pub const fn new() -> Self {
        ProberScratch {
            visited: Visited::empty(),
            qproj: Vec::new(),
            block: Vec::new(),
            dists: Vec::new(),
            keys: Vec::new(),
            survivors: Vec::new(),
            prep: Sq8Query::empty(),
        }
    }
}

impl Default for ProberScratch {
    fn default() -> Self {
        ProberScratch::new()
    }
}

/// Per-query probing state over one [`DbLsh`] index: the building block
/// of the *canonical round-exhaustive* query mode ([`CanonicalLadder`]).
///
/// A prober is created once per (query, index) pair and asked for one
/// ladder round at a time via [`LadderProber::probe_round`]; its visited
/// bitset persists across rounds, so every candidate is verified at most
/// once per query. A sharded serving layer holds one prober per shard
/// and merges their per-round key streams; because window membership,
/// per-row distances and the canonical `(distance, id)` key order are all
/// independent of which shard a point lives in, the merged stream is
/// byte-identical to a single prober over the union of the shards.
pub struct LadderProber<'a> {
    index: &'a DbLsh,
    q: &'a [f32],
    scratch: &'a mut ProberScratch,
}

impl<'a> LadderProber<'a> {
    /// Number of live points in the probed index.
    pub fn live(&self) -> usize {
        self.index.len()
    }

    /// Probe one ladder round at radius `r`: scan the window
    /// `W(G_i(q), w0 r)` in all `L` trees, verify every *fresh* (not yet
    /// visited) candidate with the blocked distance kernel, and append
    /// the canonical consumption keys — `(squared-distance bits << 32) |
    /// to_global(external id)` — to `out`, sorted ascending among
    /// themselves.
    ///
    /// `to_global` maps this index's external ids into the caller's id
    /// space (identity for an unsharded index; the shard's global-id
    /// table in `dblsh-serve`). Window hits are counted into
    /// `stats.index_probes` here; `candidates` and `rounds` are counted
    /// by the consumer ([`CanonicalLadder`]), which alone decides how far
    /// into the round the query actually reads. When `timing` is set the
    /// verification stage is timed into `stats.verify_nanos`.
    ///
    /// `prune` is the SQ8 pre-filter threshold for this round —
    /// [`CanonicalLadder::prune_threshold`] when the plan enables the
    /// prefilter, `None` for the always-exact path. Pruned candidates
    /// still emit a canonical key (carrying their conservative *bound*,
    /// which sorts strictly after every key that could change the
    /// consumer's top-k), so the merged stream stays byte-identical to
    /// the exact path; prune counts land in `stats.prefilter_pruned` /
    /// `prefilter_survivors`. Because every shard of a fan-out quantizes
    /// against the same grid, per-shard prune decisions — and therefore
    /// the merged counters — match an unsharded probe exactly.
    pub fn probe_round(
        &mut self,
        r: f64,
        timing: bool,
        prune: Option<f32>,
        stats: &mut QueryStats,
        to_global: impl Fn(u32) -> u32,
        out: &mut Vec<u64>,
    ) {
        let kdim = self.index.params.k;
        self.scratch.block.clear();
        for (i, tree) in self.index.trees.iter().enumerate() {
            let view = self.index.store.view(i);
            let qp = &self.scratch.qproj[i * kdim..(i + 1) * kdim];
            let window = Rect::centered_cube(qp, self.index.params.w0 * r);
            let mut cursor = tree.window(&view, &window);
            while let Some(batch) = cursor.next_batch() {
                stats.index_probes += batch.len();
                for &id in batch {
                    if self.scratch.visited.insert(id) {
                        self.scratch.block.push(id);
                    }
                }
            }
        }
        if self.scratch.block.is_empty() {
            return;
        }
        let started = if timing { Some(Instant::now()) } else { None };
        let verify = self.index.verify_data();
        match prune {
            Some(threshold) => {
                let (pruned, survived) = canonical_verify_keys_prefiltered(
                    self.q,
                    verify.flat(),
                    verify.dim(),
                    &self.index.sq8,
                    &self.scratch.prep,
                    threshold,
                    &mut self.scratch.block,
                    &mut self.scratch.dists,
                    &mut self.scratch.survivors,
                    &mut self.scratch.keys,
                    |internal| to_global(self.index.to_ext(internal)),
                );
                stats.prefilter_pruned += pruned;
                stats.prefilter_survivors += survived;
            }
            None => canonical_verify_keys(
                self.q,
                verify.flat(),
                verify.dim(),
                &mut self.scratch.block,
                &mut self.scratch.dists,
                &mut self.scratch.keys,
                |internal| to_global(self.index.to_ext(internal)),
            ),
        }
        if let Some(t) = started {
            stats.verify_nanos += t.elapsed().as_nanos() as u64;
        }
        out.extend_from_slice(&self.scratch.keys);
    }

    /// [`LadderProber::probe_round`] with per-stage timing into `trace`:
    /// the window scan lands under [`dblsh_telemetry::Stage::TreeProbe`],
    /// and the verification splits into
    /// [`dblsh_telemetry::Stage::Prefilter`] (SQ8 bound scan + survivor
    /// partition) and [`dblsh_telemetry::Stage::Verify`] (fused distance
    /// kernel + canonical key sort) via
    /// [`dblsh_data::kernels::canonical_verify_keys_prefiltered_traced`].
    /// Keys, counters and prune decisions are byte-identical to the
    /// untraced method (the traced kernel mirrors the untraced one
    /// statement for statement); only the clock reads are added.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_round_traced(
        &mut self,
        r: f64,
        timing: bool,
        prune: Option<f32>,
        stats: &mut QueryStats,
        to_global: impl Fn(u32) -> u32,
        out: &mut Vec<u64>,
        trace: &mut QueryTrace,
    ) {
        let kdim = self.index.params.k;
        let scan_started = Instant::now();
        self.scratch.block.clear();
        for (i, tree) in self.index.trees.iter().enumerate() {
            let view = self.index.store.view(i);
            let qp = &self.scratch.qproj[i * kdim..(i + 1) * kdim];
            let window = Rect::centered_cube(qp, self.index.params.w0 * r);
            let mut cursor = tree.window(&view, &window);
            while let Some(batch) = cursor.next_batch() {
                stats.index_probes += batch.len();
                for &id in batch {
                    if self.scratch.visited.insert(id) {
                        self.scratch.block.push(id);
                    }
                }
            }
        }
        trace.add(Stage::TreeProbe, scan_started.elapsed().as_nanos() as u64);
        if self.scratch.block.is_empty() {
            return;
        }
        let started = if timing { Some(Instant::now()) } else { None };
        let verify = self.index.verify_data();
        match prune {
            Some(threshold) => {
                let mut split = VerifySplit::default();
                let (pruned, survived) = canonical_verify_keys_prefiltered_traced(
                    self.q,
                    verify.flat(),
                    verify.dim(),
                    &self.index.sq8,
                    &self.scratch.prep,
                    threshold,
                    &mut self.scratch.block,
                    &mut self.scratch.dists,
                    &mut self.scratch.survivors,
                    &mut self.scratch.keys,
                    |internal| to_global(self.index.to_ext(internal)),
                    &mut split,
                );
                stats.prefilter_pruned += pruned;
                stats.prefilter_survivors += survived;
                trace.add(Stage::Prefilter, split.prefilter_nanos);
                trace.add(Stage::Verify, split.verify_nanos);
            }
            None => {
                let verify_started = Instant::now();
                canonical_verify_keys(
                    self.q,
                    verify.flat(),
                    verify.dim(),
                    &mut self.scratch.block,
                    &mut self.scratch.dists,
                    &mut self.scratch.keys,
                    |internal| to_global(self.index.to_ext(internal)),
                );
                trace.add(Stage::Verify, verify_started.elapsed().as_nanos() as u64);
            }
        }
        if let Some(t) = started {
            stats.verify_nanos += t.elapsed().as_nanos() as u64;
        }
        out.extend_from_slice(&self.scratch.keys);
    }
}

/// The deterministic coordinator of the canonical round-exhaustive
/// (c,k)-ANN ladder — the serving engine's query semantics.
///
/// Unlike [`DbLsh::k_ann`], which stops mid-round at whatever point of
/// its internal tree-enumeration order the budget or `c·r` condition
/// fires, the canonical ladder collects *every* in-window candidate of a
/// round (from one prober, or merged from one prober per shard), sorts
/// them into canonical `(distance, external id)` order, and only then
/// applies the per-candidate budget and termination checks of
/// Algorithm 1. The answer therefore depends only on the candidate
/// *sets* per round — never on tree layout, shard assignment or
/// enumeration order — which is what makes a sharded index answer
/// byte-identically to an unsharded one.
///
/// Drive it as: `while let Some(r) = ladder.begin_round(&mut stats) {
/// probe all sources at r; sort the merged keys; ladder.consume(..) }`,
/// then [`CanonicalLadder::into_result`].
#[derive(Debug)]
pub struct CanonicalLadder {
    top: Vec<Neighbor>,
    /// Raw squared f32 distances mirroring `top` — the prune-threshold
    /// source for [`CanonicalLadder::prune_threshold`].
    top_sq: Vec<f32>,
    k: usize,
    c: f64,
    r: f64,
    cr: f64,
    budget: usize,
    max_rounds: usize,
    rounds_begun: usize,
    live: usize,
    verified: usize,
    done: bool,
}

impl CanonicalLadder {
    /// A ladder for one query: `plan` from [`SearchOptions::plan`], `c`
    /// from the (shared) index parameters, `live` the total number of
    /// live points across every probed source.
    pub fn new(plan: &LadderPlan, c: f64, k: usize, live: usize) -> Self {
        CanonicalLadder {
            top: Vec::with_capacity(k + 1),
            top_sq: Vec::with_capacity(k + 1),
            k,
            c,
            r: plan.r0,
            cr: 0.0,
            budget: plan.budget,
            max_rounds: plan.max_rounds,
            rounds_begun: 0,
            live,
            verified: 0,
            done: false,
        }
    }

    /// Start the next round. Returns the radius to probe, or `None` when
    /// the ladder has terminated (answer already within `c·r`, budget
    /// spent, every live point verified, or round cap reached). Must be
    /// followed by exactly one [`CanonicalLadder::consume`] of the
    /// round's merged keys when it returns `Some`.
    pub fn begin_round(&mut self, stats: &mut QueryStats) -> Option<f64> {
        if self.done || self.rounds_begun == self.max_rounds {
            return None;
        }
        self.rounds_begun += 1;
        stats.rounds += 1;
        self.cr = self.c * self.r;
        // Previously verified points may already satisfy the current
        // radius (found "too early" in a smaller round).
        if self.top.len() == self.k && self.top[self.k - 1].dist as f64 <= self.cr {
            self.done = true;
            return None;
        }
        Some(self.r)
    }

    /// The SQ8 pre-filter threshold for the coming round: the k-th best
    /// *squared* distance exactly as the verify kernel produced it, or
    /// `+∞` while the top is not yet full (no pruning until `k`
    /// candidates exist). Pass to every
    /// [`LadderProber::probe_round`] of the round when the plan enables
    /// the prefilter.
    pub fn prune_threshold(&self) -> f32 {
        if self.top.len() == self.k {
            self.top_sq[self.k - 1]
        } else {
            f32::INFINITY
        }
    }

    /// Consume one round's candidates — the concatenation of every
    /// prober's [`LadderProber::probe_round`] output, sorted ascending
    /// (already sorted for a single prober) — applying the budget and
    /// `c·r` termination checks per candidate in canonical order.
    pub fn consume(&mut self, sorted_keys: &[u64], stats: &mut QueryStats) {
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        for &key in sorted_keys {
            self.verified += 1;
            stats.candidates += 1;
            let (id, d) = key_parts(key);
            let d2 = f32::from_bits((key >> 32) as u32);
            push_candidate_with_sq(
                &mut self.top,
                &mut self.top_sq,
                Neighbor { id, dist: d as f32 },
                d2,
                self.k,
            );
            if self.verified >= self.budget
                || (self.top.len() == self.k && self.top[self.k - 1].dist as f64 <= self.cr)
            {
                self.done = true;
                return;
            }
        }
        if self.verified >= self.live {
            self.done = true; // every live point verified; nothing left
            return;
        }
        self.r *= self.c;
    }

    /// The current top-k (ascending distance), e.g. for inspection
    /// between rounds.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.top
    }

    /// Finish the query.
    pub fn into_result(self, stats: QueryStats) -> SearchResult {
        SearchResult {
            neighbors: self.top,
            stats,
        }
    }
}

impl DbLsh {
    /// Create a [`LadderProber`] for `q` over this index, using (and
    /// resetting) the caller's `scratch` buffers. Fails on a malformed
    /// query vector.
    pub fn ladder_prober<'a>(
        &'a self,
        q: &'a [f32],
        scratch: &'a mut ProberScratch,
    ) -> Result<LadderProber<'a>, DbLshError> {
        check_query(self.data.dim(), q, 1)?;
        // Internal-id domain: physical store rows.
        scratch.visited.reset(self.store.len());
        let (l, k) = (self.params.l, self.params.k);
        scratch.qproj.resize(l * k, 0.0);
        for i in 0..l {
            self.hasher
                .project_into(i, q, &mut scratch.qproj[i * k..(i + 1) * k]);
        }
        self.sq8.prepare_query(q, &mut scratch.prep);
        Ok(LadderProber {
            index: self,
            q,
            scratch,
        })
    }

    /// [`DbLsh::ladder_prober`] with the projection stage — the `L x K`
    /// matrix-vector products plus the SQ8 query preparation — timed into
    /// `trace` under [`dblsh_telemetry::Stage::Projection`].
    pub fn ladder_prober_traced<'a>(
        &'a self,
        q: &'a [f32],
        scratch: &'a mut ProberScratch,
        trace: &mut QueryTrace,
    ) -> Result<LadderProber<'a>, DbLshError> {
        let started = Instant::now();
        let prober = self.ladder_prober(q, scratch)?;
        trace.add(Stage::Projection, started.elapsed().as_nanos() as u64);
        Ok(prober)
    }

    /// (c,k)-ANN in the *canonical round-exhaustive* mode — the serving
    /// engine's query semantics (see [`CanonicalLadder`]).
    ///
    /// Each ladder round verifies **every** in-window candidate and
    /// consumes them in canonical `(distance, external id)` order, so the
    /// answer (and its work counters) depends only on the per-round
    /// candidate sets — a `dblsh_serve`-sharded index over the same data
    /// and parameters answers byte-identically for any shard count.
    /// Compared to [`DbLsh::k_ann`] this may verify up to one round of
    /// candidates beyond the budget/termination point (the classic mode
    /// stops at leaf-batch granularity instead); recall is never lower.
    pub fn search_canonical(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> Result<SearchResult, DbLshError> {
        thread_local! {
            // Reused across queries on the same thread, like the classic
            // path's SCRATCH — the canonical and classic modes must not
            // differ by allocation overhead.
            static CANONICAL_SCRATCH: RefCell<ProberScratch> =
                const { RefCell::new(ProberScratch::new()) };
        }
        check_query(self.data.dim(), q, k)?;
        let plan = opts.resolved(self, k)?;
        let mut res = CANONICAL_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.canonical_core(q, k, &plan, &mut scratch),
            // Re-entrancy (a Drop impl querying mid-query) falls back to
            // fresh buffers rather than panicking.
            Err(_) => self.canonical_core(q, k, &plan, &mut ProberScratch::new()),
        })?;
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    fn canonical_core(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut ProberScratch,
    ) -> Result<SearchResult, DbLshError> {
        let mut prober = self.ladder_prober(q, scratch)?;
        let mut ladder = CanonicalLadder::new(plan, self.params.c, k, self.len());
        let mut stats = QueryStats::default();
        let mut keys: Vec<u64> = Vec::new();
        while let Some(r) = ladder.begin_round(&mut stats) {
            keys.clear();
            let prune = plan.prefilter.then(|| ladder.prune_threshold());
            // A single prober's round output is already canonically
            // sorted — no merge needed.
            prober.probe_round(r, plan.timing, prune, &mut stats, |ext| ext, &mut keys);
            ladder.consume(&keys, &mut stats);
        }
        Ok(ladder.into_result(stats))
    }

    /// [`DbLsh::search_canonical`] with a per-stage [`QueryTrace`]:
    /// projection, window scanning, SQ8 pre-filtering, exact
    /// verification and canonical-order consumption
    /// ([`dblsh_telemetry::Stage::Merge`]) are timed into `trace`.
    /// Answers and [`QueryStats`] are byte-identical to the untraced
    /// path — pinned by tests — so the serving engine can flip tracing
    /// per request without perturbing results.
    pub fn search_canonical_traced(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
        trace: &mut QueryTrace,
    ) -> Result<SearchResult, DbLshError> {
        thread_local! {
            static CANONICAL_SCRATCH: RefCell<ProberScratch> =
                const { RefCell::new(ProberScratch::new()) };
        }
        check_query(self.data.dim(), q, k)?;
        let plan = opts.resolved(self, k)?;
        let mut res = CANONICAL_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.canonical_core_traced(q, k, &plan, &mut scratch, trace),
            Err(_) => self.canonical_core_traced(q, k, &plan, &mut ProberScratch::new(), trace),
        })?;
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    fn canonical_core_traced(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut ProberScratch,
        trace: &mut QueryTrace,
    ) -> Result<SearchResult, DbLshError> {
        let mut prober = self.ladder_prober_traced(q, scratch, trace)?;
        let mut ladder = CanonicalLadder::new(plan, self.params.c, k, self.len());
        let mut stats = QueryStats::default();
        let mut keys: Vec<u64> = Vec::new();
        while let Some(r) = ladder.begin_round(&mut stats) {
            keys.clear();
            let prune = plan.prefilter.then(|| ladder.prune_threshold());
            prober.probe_round_traced(
                r,
                plan.timing,
                prune,
                &mut stats,
                |ext| ext,
                &mut keys,
                trace,
            );
            let merge_started = Instant::now();
            ladder.consume(&keys, &mut stats);
            trace.add(Stage::Merge, merge_started.elapsed().as_nanos() as u64);
        }
        Ok(ladder.into_result(stats))
    }
}

impl AnnIndex for DbLsh {
    fn name(&self) -> &'static str {
        "DB-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.k_ann(query, k)
    }

    fn search_batch(&self, queries: &Dataset, k: usize) -> Result<Vec<SearchResult>, DbLshError> {
        DbLsh::search_batch(self, queries, k)
    }

    fn index_size_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DbLshParams;
    use dblsh_data::ground_truth::exact_knn_single;
    use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
    use dblsh_data::{metrics, Dataset};
    use std::sync::Arc;

    fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n,
            dim,
            clusters: 30,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed,
        })
    }

    fn build(data: &Arc<Dataset>) -> DbLsh {
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(8, 4)
            .with_r_min(0.5);
        DbLsh::build(Arc::clone(data), &params).unwrap()
    }

    #[test]
    fn k_ann_has_high_recall_on_clustered_data() {
        let mut data = clustered(4000, 24, 11);
        let queries = split_queries(&mut data, 20, 3);
        let data = Arc::new(data);
        let idx = build(&data);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let got = idx.k_ann(q, 10).unwrap();
            recalls.push(metrics::recall(&got.neighbors, &truth));
        }
        let mean = metrics::mean(&recalls);
        assert!(mean > 0.8, "mean recall too low: {mean}");
    }

    #[test]
    fn k_ann_respects_c2_guarantee_on_top1() {
        // Theorem 1: returned point within c^2 * r* with constant
        // probability; across 30 queries the *average* must hold easily.
        let mut data = clustered(3000, 16, 5);
        let queries = split_queries(&mut data, 30, 8);
        let data = Arc::new(data);
        let idx = build(&data);
        let c2 = idx.params().c * idx.params().c;
        let mut ok = 0;
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 1)[0];
            if let (Some(got), _) = idx.c_ann(q).unwrap() {
                if got.dist as f64 <= c2 * truth.dist as f64 + 1e-6 {
                    ok += 1;
                }
            }
        }
        // far above the theoretical floor of (1/2 - 1/e) ~ 0.13
        assert!(ok >= 25, "only {ok}/30 met the c^2 bound");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let data = Arc::new(clustered(2000, 16, 9));
        let idx = build(&data);
        let res = idx.k_ann(data.point(17), 25).unwrap();
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids = res.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), res.neighbors.len());
    }

    #[test]
    fn budget_is_respected() {
        let data = Arc::new(clustered(3000, 16, 2));
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(8, 4)
            .with_t(4); // tiny budget: 2*4*4 + k
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let res = idx.k_ann(data.point(0), 5).unwrap();
        assert!(
            res.stats.candidates <= params.kann_budget(5),
            "verified {} candidates, budget {}",
            res.stats.candidates,
            params.kann_budget(5)
        );
    }

    #[test]
    fn search_options_override_budget_and_ladder() {
        let data = Arc::new(clustered(3000, 16, 21));
        let idx = build(&data);
        let q = data.point(7);
        // budget of 1: exactly one candidate verified
        let tight = idx
            .search_with(
                q,
                5,
                &SearchOptions {
                    budget: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(tight.stats.candidates, 1);
        // one round only
        let one_round = idx
            .search_with(
                q,
                5,
                &SearchOptions {
                    max_rounds: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(one_round.stats.rounds, 1);
        // larger per-query budget may only help recall
        let wide = idx
            .search_with(
                q,
                5,
                &SearchOptions {
                    budget: Some(data.len()),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(wide.neighbors.len() == 5);
        // stats can be suppressed
        let quiet = idx
            .search_with(
                q,
                5,
                &SearchOptions {
                    skip_stats: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(quiet.stats, QueryStats::default());
        assert!(!quiet.neighbors.is_empty());
    }

    #[test]
    fn search_options_validate() {
        let data = Arc::new(clustered(500, 8, 1));
        let idx = build(&data);
        let q = data.point(0);
        for opts in [
            SearchOptions {
                budget: Some(0),
                ..Default::default()
            },
            SearchOptions {
                r_min: Some(0.0),
                ..Default::default()
            },
            SearchOptions {
                r_min: Some(f64::NAN),
                ..Default::default()
            },
            SearchOptions {
                max_rounds: Some(0),
                ..Default::default()
            },
        ] {
            assert!(
                matches!(
                    idx.search_with(q, 3, &opts),
                    Err(DbLshError::InvalidParameter { .. })
                ),
                "{opts:?} accepted"
            );
        }
    }

    #[test]
    fn malformed_queries_error_not_panic() {
        let data = Arc::new(clustered(500, 8, 4));
        let idx = build(&data);
        assert!(matches!(
            idx.k_ann(&[1.0; 3], 5),
            Err(DbLshError::DimensionMismatch {
                expected: 8,
                got: 3
            })
        ));
        assert!(matches!(
            idx.k_ann(&[f32::NAN; 8], 5),
            Err(DbLshError::NonFiniteCoordinate)
        ));
        assert!(matches!(
            idx.k_ann(&[0.0; 8], 0),
            Err(DbLshError::InvalidParameter { param: "k", .. })
        ));
        assert!(matches!(
            idx.r_c_nn(&[0.0; 8], -1.0),
            Err(DbLshError::InvalidParameter { param: "r", .. })
        ));
        assert!(matches!(
            idx.k_ann_incremental(&[1.0; 2], 5),
            Err(DbLshError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn search_batch_matches_sequential() {
        let mut data = clustered(3000, 16, 14);
        let queries = split_queries(&mut data, 40, 6);
        let data = Arc::new(data);
        let idx = build(&data);
        let batch = idx.search_batch(&queries, 10).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (qi, res) in batch.iter().enumerate() {
            let solo = idx.k_ann(queries.point(qi), 10).unwrap();
            assert_eq!(res.ids(), solo.ids(), "query {qi} differs in batch mode");
            assert_eq!(res.stats, solo.stats);
        }
    }

    #[test]
    fn search_batch_validates_and_handles_empty() {
        let data = Arc::new(clustered(500, 8, 3));
        let idx = build(&data);
        assert!(idx.search_batch(&Dataset::empty(8), 5).unwrap().is_empty());
        assert!(matches!(
            idx.search_batch(&Dataset::empty(4), 5),
            Err(DbLshError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.search_batch(&Dataset::empty(8), 0),
            Err(DbLshError::InvalidParameter { param: "k", .. })
        ));
    }

    #[test]
    fn query_on_indexed_point_meets_guarantee() {
        // At r* = 0 the ladder guarantee degrades to c^2 * r_min; on this
        // workload the point itself is found in practice.
        let data = Arc::new(clustered(1500, 12, 4));
        let idx = build(&data);
        let res = idx.k_ann(data.point(42), 1).unwrap();
        let bound = idx.params().c * idx.params().c * idx.params().r_min;
        assert!((res.neighbors[0].dist as f64) <= bound);
    }

    #[test]
    fn r_c_nn_contract() {
        let data = Arc::new(clustered(2000, 12, 6));
        let idx = build(&data);
        let q = data.point(10);
        // huge radius: must return something within c*r
        let (hit, stats) = idx.r_c_nn(q, 1000.0).unwrap();
        let hit = hit.expect("radius covers everything");
        assert!(hit.dist as f64 <= idx.params().c * 1000.0);
        assert_eq!(stats.rounds, 1);
        // microscopic radius on a far-away query: typically nothing
        let far = vec![1e4f32; 12];
        let (none, _) = idx.r_c_nn(&far, 1e-9).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn k_larger_than_dataset_is_safe() {
        let data = Arc::new(clustered(50, 8, 3));
        let params = DbLshParams::paper_defaults(50).with_kl(4, 2);
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let res = idx.k_ann(data.point(0), 500).unwrap();
        assert!(res.neighbors.len() <= 50);
        assert!(!res.neighbors.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let data = Arc::new(clustered(2000, 16, 1));
        let idx = build(&data);
        let res = idx.k_ann(data.point(3), 10).unwrap();
        assert!(res.stats.rounds >= 1);
        assert!(res.stats.candidates >= res.neighbors.len());
        assert!(res.stats.index_probes >= res.stats.candidates);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn incremental_mode_matches_ladder_quality() {
        let mut data = clustered(3000, 16, 8);
        let queries = split_queries(&mut data, 15, 12);
        let data = Arc::new(data);
        let idx = build(&data);
        let mut ladder = Vec::new();
        let mut incremental = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            ladder.push(metrics::recall(
                &idx.k_ann(q, 10).unwrap().neighbors,
                &truth,
            ));
            incremental.push(metrics::recall(
                &idx.k_ann_incremental(q, 10).unwrap().neighbors,
                &truth,
            ));
        }
        let li = metrics::mean(&ladder);
        let inc = metrics::mean(&incremental);
        assert!(inc > 0.8, "incremental recall too low: {inc}");
        assert!(
            inc + 0.15 > li,
            "incremental ({inc}) far below ladder ({li})"
        );
    }

    #[test]
    fn incremental_mode_contracts() {
        let data = Arc::new(clustered(1000, 12, 3));
        let idx = build(&data);
        let res = idx.k_ann_incremental(data.point(5), 8).unwrap();
        assert!(res.neighbors.len() <= 8);
        assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(res.stats.candidates <= idx.params().kann_budget(8));
        // the query point itself has projected distance 0 in every stream,
        // so incremental browsing always verifies it first
        assert_eq!(res.neighbors[0].id, 5);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn canonical_mode_contracts() {
        let mut data = clustered(3000, 16, 8);
        let queries = split_queries(&mut data, 15, 12);
        let data = Arc::new(data);
        let idx = build(&data);
        let mut recalls = Vec::new();
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let truth = exact_knn_single(&data, q, 10);
            let res = idx
                .search_canonical(q, 10, &SearchOptions::default())
                .unwrap();
            // deterministic: same call, same bytes
            let again = idx
                .search_canonical(q, 10, &SearchOptions::default())
                .unwrap();
            assert_eq!(res.neighbors, again.neighbors);
            assert_eq!(res.stats, again.stats);
            assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
            recalls.push(metrics::recall(&res.neighbors, &truth));
            // canonical consumption is a canonical-order prefix of the
            // same candidate pool the classic ladder draws from, so it
            // can only improve on the classic answer's k-th distance
            let classic = idx.k_ann(q, 10).unwrap();
            if res.neighbors.len() == 10 && classic.neighbors.len() == 10 {
                assert!(res.neighbors[9].dist <= classic.neighbors[9].dist + 1e-6);
            }
        }
        assert!(metrics::mean(&recalls) > 0.8);
    }

    #[test]
    fn canonical_mode_respects_overrides() {
        let data = Arc::new(clustered(2000, 16, 31));
        let idx = build(&data);
        let q = data.point(3);
        let tight = idx
            .search_canonical(
                q,
                5,
                &SearchOptions {
                    budget: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(tight.stats.candidates, 1);
        let one_round = idx
            .search_canonical(
                q,
                5,
                &SearchOptions {
                    max_rounds: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(one_round.stats.rounds, 1);
        let quiet = idx
            .search_canonical(
                q,
                5,
                &SearchOptions {
                    skip_stats: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(quiet.stats, QueryStats::default());
        assert!(!quiet.neighbors.is_empty());
        assert!(matches!(
            idx.search_canonical(&[1.0; 3], 5, &SearchOptions::default()),
            Err(DbLshError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn canonical_mode_is_relabel_invariant() {
        // the serving semantics must not depend on the internal layout
        let data = Arc::new(clustered(1500, 12, 44));
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(6, 3)
            .with_r_min(0.5);
        let relabeled = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let identity =
            DbLsh::build(Arc::clone(&data), &params.clone().with_relabel(false)).unwrap();
        for qi in [0usize, 7, 500, 1499] {
            let q = data.point(qi);
            let a = relabeled
                .search_canonical(q, 8, &SearchOptions::default())
                .unwrap();
            let b = identity
                .search_canonical(q, 8, &SearchOptions::default())
                .unwrap();
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn prober_reuse_across_queries_is_clean() {
        // one scratch, many queries: the visited bitset must reset fully
        let data = Arc::new(clustered(800, 12, 9));
        let idx = build(&data);
        let mut scratch = ProberScratch::default();
        for qi in [3usize, 3, 50, 3] {
            let q = data.point(qi).to_vec();
            let mut stats = QueryStats::default();
            let mut keys = Vec::new();
            let mut prober = idx.ladder_prober(&q, &mut scratch).unwrap();
            prober.probe_round(5.0, false, None, &mut stats, |e| e, &mut keys);
            // the query point itself is always in its own window
            assert!(
                keys.iter().any(|&key| key_parts(key).0 == qi as u32),
                "query point missing from its own window probe"
            );
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn prefilter_answers_and_shared_counters_are_byte_identical() {
        let mut data = clustered(3000, 16, 77);
        let queries = split_queries(&mut data, 12, 5);
        let data = Arc::new(data);
        let idx = build(&data);
        let on = SearchOptions::default();
        assert!(on.prefilter, "prefilter is the default");
        let off = SearchOptions {
            prefilter: false,
            ..Default::default()
        };
        let mut total_pruned = 0usize;
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            for (a, b) in [
                (
                    idx.search_with(q, 10, &on).unwrap(),
                    idx.search_with(q, 10, &off).unwrap(),
                ),
                (
                    idx.search_canonical(q, 10, &on).unwrap(),
                    idx.search_canonical(q, 10, &off).unwrap(),
                ),
            ] {
                assert_eq!(a.neighbors, b.neighbors, "query {qi}");
                // The shared work counters match bit for bit — pruned
                // candidates are still counted (their bound-keys flow
                // through the same canonical consumption).
                assert_eq!(a.stats.candidates, b.stats.candidates, "query {qi}");
                assert_eq!(a.stats.rounds, b.stats.rounds, "query {qi}");
                assert_eq!(a.stats.index_probes, b.stats.index_probes, "query {qi}");
                // Only the prefilter's own counters differ.
                assert_eq!(b.stats.prefilter_pruned, 0);
                assert_eq!(b.stats.prefilter_survivors, 0);
                // Every screened candidate is either pruned or verified;
                // consumption may stop mid-block, so the screen covers
                // at least the consumed candidates.
                assert!(
                    a.stats.prefilter_pruned + a.stats.prefilter_survivors >= a.stats.candidates,
                    "query {qi}: screened fewer candidates than consumed"
                );
                assert!(a.stats.prefilter_survivors > 0, "query {qi}");
                total_pruned += a.stats.prefilter_pruned;
            }
        }
        assert!(
            total_pruned > 0,
            "prefilter never pruned anything across 12 clustered queries"
        );
    }

    #[test]
    fn duplicate_points_handled() {
        // 100 copies of the same vector + some distinct ones
        let mut rows = vec![vec![1.0f32; 8]; 100];
        for i in 0..50 {
            rows.push(vec![i as f32 + 10.0; 8]);
        }
        let data = Arc::new(Dataset::from_rows(&rows));
        let params = DbLshParams::paper_defaults(150).with_kl(4, 2);
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let res = idx.k_ann(&[1.0f32; 8], 5).unwrap();
        assert_eq!(res.neighbors.len(), 5);
        assert!(res.neighbors.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn removed_points_never_returned() {
        let data = Arc::new(clustered(800, 12, 19));
        let mut idx = build(&data);
        let q = data.point(5).to_vec();
        // remove the query point and its current neighbors
        let before = idx.k_ann(&q, 5).unwrap();
        for id in before.ids() {
            idx.remove(id).unwrap();
        }
        let after = idx.k_ann(&q, 5).unwrap();
        for n in &after.neighbors {
            assert!(
                !before.ids().contains(&n.id),
                "removed id {} resurfaced",
                n.id
            );
            assert!(idx.contains(n.id));
        }
    }

    #[test]
    fn inserted_points_are_findable() {
        let data = Arc::new(clustered(800, 12, 23));
        let mut idx = build(&data);
        let novel = vec![500.0f32; 12]; // far from all mass
        let id = idx.insert(&novel).unwrap();
        let res = idx.k_ann(&novel, 1).unwrap();
        assert_eq!(res.neighbors[0].id, id);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn traced_canonical_matches_untraced_byte_for_byte() {
        // The span recorder must be a pure observer: answers and every
        // work counter byte-identical with tracing on, prefilter on or
        // off — only the QueryTrace differs from zero.
        let mut data = clustered(2500, 16, 31);
        let queries = split_queries(&mut data, 8, 12);
        let data = Arc::new(data);
        let idx = build(&data);
        for prefilter in [true, false] {
            let opts = SearchOptions {
                prefilter,
                ..Default::default()
            };
            for qi in 0..queries.len() {
                let q = queries.point(qi);
                let plain = idx.search_canonical(q, 10, &opts).unwrap();
                let mut trace = dblsh_telemetry::QueryTrace::default();
                let traced = idx
                    .search_canonical_traced(q, 10, &opts, &mut trace)
                    .unwrap();
                assert_eq!(plain.neighbors, traced.neighbors, "query {qi}");
                assert_eq!(plain.stats, traced.stats, "query {qi}");
                assert!(
                    trace.get(Stage::Projection) > 0,
                    "query {qi}: projection stage not timed"
                );
                assert!(
                    trace.get(Stage::TreeProbe) > 0,
                    "query {qi}: tree-probe stage not timed"
                );
            }
        }
    }

    #[test]
    fn traced_prober_round_matches_untraced_keys() {
        let data = Arc::new(clustered(1500, 12, 37));
        let idx = build(&data);
        let q = data.point(3);
        for prune in [None, Some(f32::INFINITY), Some(25.0)] {
            let mut s1 = ProberScratch::new();
            let mut s2 = ProberScratch::new();
            let mut stats1 = QueryStats::default();
            let mut stats2 = QueryStats::default();
            let mut keys1 = Vec::new();
            let mut keys2 = Vec::new();
            let mut trace = QueryTrace::default();
            let mut p1 = idx.ladder_prober(q, &mut s1).unwrap();
            p1.probe_round(2.0, false, prune, &mut stats1, |e| e, &mut keys1);
            let mut p2 = idx.ladder_prober_traced(q, &mut s2, &mut trace).unwrap();
            p2.probe_round_traced(
                2.0,
                false,
                prune,
                &mut stats2,
                |e| e,
                &mut keys2,
                &mut trace,
            );
            assert_eq!(keys1, keys2, "prune {prune:?}");
            assert_eq!(stats1, stats2, "prune {prune:?}");
        }
    }
}
