//! DB-LSH parameters: the paper's practical defaults plus the
//! theory-derived alternative of Lemma 1.
//!
//! `DbLshParams` is a plain bag of values: the `with_*` combinators store
//! whatever they are given and [`DbLshParams::validate`] reports every
//! constraint violation as a [`DbLshError`] — construction through
//! [`crate::DbLshBuilder`] surfaces bad settings as `Err`, never panics.

use dblsh_data::DbLshError;
use dblsh_math::theory::derive_kl;

/// Parameters of a [`crate::DbLsh`] index.
#[derive(Debug, Clone, PartialEq)]
pub struct DbLshParams {
    /// Approximation ratio `c > 1` (paper default 1.5).
    pub c: f64,
    /// Base bucket width `w0` (paper default `4 c^2`, i.e. `gamma = 2`).
    pub w0: f64,
    /// Number of hash functions per compound hash (projected dim).
    pub k: usize,
    /// Number of compound hashes / R*-trees.
    pub l: usize,
    /// Candidate-budget constant of Remark 2: an (r,c)-NN probe verifies at
    /// most `2tL + 1` points (`2tL + k` for (c,k)-ANN).
    pub t: usize,
    /// Radius ladder start (the paper assumes `r = 1` w.l.o.g.; real data
    /// has arbitrary scale, see [`DbLshParams::with_r_min`]).
    pub r_min: f64,
    /// Safety cap on ladder rounds, in case of degenerate data.
    pub max_rounds: usize,
    /// R*-tree node capacity.
    pub node_capacity: usize,
    /// Seed for the Gaussian projections.
    pub seed: u64,
    /// Locality-aware id relabeling at bulk build (default `true`): the
    /// index computes a locality-preserving permutation of the points
    /// (tree-0 STR leaf order over the first projected space), physically
    /// reorders its dataset and projection-store rows to match, and maps
    /// internal ids back to the caller's ids on every returned result.
    /// Costs one extra copy of the raw vectors plus two `u32` maps; buys
    /// near-sequential memory reads in leaf scans and candidate
    /// verification. Query answers are byte-identical either way for
    /// datasets of distinct points; exact duplicate rows project to
    /// identical coordinates, and which duplicate's id is reported can
    /// depend on tie-breaking in the build order (the reported distances
    /// are identical regardless).
    pub relabel: bool,
}

impl DbLshParams {
    /// The experimental settings of Section VI-A: `c = 1.5`, `w0 = 4 c^2`,
    /// `L = 5`, `K = 12` for datasets over one million points, else
    /// `K = 10`.
    pub fn paper_defaults(n: usize) -> Self {
        let c = 1.5f64;
        DbLshParams {
            c,
            w0: 4.0 * c * c,
            k: if n > 1_000_000 { 12 } else { 10 },
            l: 5,
            t: 64,
            r_min: 1.0,
            max_rounds: 64,
            node_capacity: 32,
            seed: 0x05EE_DD81,
            relabel: true,
        }
    }

    /// Fully theory-driven parameters per Lemma 1 / Remark 2:
    /// `K = ceil(log_{1/p2}(n/t))`, `L = ceil((n/t)^{rho*})`.
    ///
    /// Note that at `w0 = 4c^2` the theoretical `K` is enormous (p2 is
    /// close to 1); this constructor is most useful at moderate widths
    /// (`w0` around `2c`), and for studying the theory itself.
    pub fn theory_driven(n: usize, t: usize, c: f64, w0: f64) -> Self {
        let derived = derive_kl(n, t, c, w0);
        DbLshParams {
            c,
            w0,
            k: derived.k,
            l: derived.l,
            t,
            r_min: 1.0,
            max_rounds: 64,
            node_capacity: 32,
            seed: 0x05EE_DD81,
            relabel: true,
        }
    }

    /// Override the approximation ratio, keeping `w0 = 4 c^2` coupled.
    /// Validated at build time: `c` must exceed 1.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self.w0 = 4.0 * c * c;
        self
    }

    /// Override the bucket width `w0` (validated at build time).
    pub fn with_w0(mut self, w0: f64) -> Self {
        self.w0 = w0;
        self
    }

    /// Override `K` and `L` (validated at build time).
    pub fn with_kl(mut self, k: usize, l: usize) -> Self {
        self.k = k;
        self.l = l;
        self
    }

    /// Override the candidate-budget constant `t` (validated at build
    /// time).
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Override the radius-ladder start. The ladder `r_min * c^j` should
    /// start at or below the typical NN distance; too small only costs a
    /// few empty probe rounds (each `O(L log n)`), too large costs
    /// accuracy.
    pub fn with_r_min(mut self, r_min: f64) -> Self {
        self.r_min = r_min;
        self
    }

    /// Override the projection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable locality-aware id relabeling at bulk build (see
    /// [`DbLshParams::relabel`]). Answers are byte-identical either way
    /// (up to duplicate-point tie-breaking — see [`DbLshParams::relabel`]);
    /// disabling trades query-time memory locality for a smaller build
    /// footprint (no reordered dataset copy, no id maps).
    pub fn with_relabel(mut self, relabel: bool) -> Self {
        self.relabel = relabel;
        self
    }

    /// Candidate budget of one (r,c)-NN probe (`2tL + 1`, Algorithm 1).
    pub fn rcnn_budget(&self) -> usize {
        2 * self.t * self.l + 1
    }

    /// Candidate budget of a (c,k)-ANN query (`2tL + k`, Section IV-C).
    pub fn kann_budget(&self, k: usize) -> usize {
        2 * self.t * self.l + k
    }

    /// Check every constraint; called by [`crate::DbLshBuilder::build`]
    /// and [`crate::DbLsh::build`] so malformed settings surface as
    /// `Err`, not panics.
    pub fn validate(&self) -> Result<(), DbLshError> {
        if !(self.c > 1.0 && self.c.is_finite()) {
            return Err(DbLshError::invalid(
                "c",
                "approximation ratio must exceed 1",
            ));
        }
        if !(self.w0 > 0.0 && self.w0.is_finite()) {
            return Err(DbLshError::invalid(
                "w0",
                "bucket width must be positive and finite",
            ));
        }
        if self.k < 1 {
            return Err(DbLshError::invalid("k", "K must be at least 1"));
        }
        if self.l < 1 {
            return Err(DbLshError::invalid("l", "L must be at least 1"));
        }
        if self.t < 1 {
            return Err(DbLshError::invalid("t", "t must be at least 1"));
        }
        if !(self.r_min > 0.0 && self.r_min.is_finite()) {
            return Err(DbLshError::invalid(
                "r_min",
                "radius ladder start must be positive and finite",
            ));
        }
        if self.max_rounds < 1 {
            return Err(DbLshError::invalid("max_rounds", "must be at least 1"));
        }
        if self.node_capacity < 4 {
            return Err(DbLshError::invalid(
                "node_capacity",
                "R*-tree node capacity must be at least 4",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vi() {
        let small = DbLshParams::paper_defaults(60_000);
        assert_eq!(small.c, 1.5);
        assert_eq!(small.w0, 9.0);
        assert_eq!(small.k, 10);
        assert_eq!(small.l, 5);
        let big = DbLshParams::paper_defaults(10_000_000);
        assert_eq!(big.k, 12);
    }

    #[test]
    fn budgets_match_paper_formulas() {
        let p = DbLshParams::paper_defaults(60_000);
        assert_eq!(p.rcnn_budget(), 2 * 64 * 5 + 1);
        assert_eq!(p.kann_budget(50), 2 * 64 * 5 + 50);
    }

    #[test]
    fn theory_driven_is_consistent() {
        let p = DbLshParams::theory_driven(100_000, 32, 2.0, 4.0);
        p.validate().unwrap();
        assert!(p.k >= 1);
        assert!(p.l >= 1);
    }

    #[test]
    fn builder_overrides() {
        let p = DbLshParams::paper_defaults(1000)
            .with_c(2.0)
            .with_kl(8, 3)
            .with_t(16)
            .with_r_min(0.5)
            .with_seed(7);
        assert_eq!(p.c, 2.0);
        assert_eq!(p.w0, 16.0);
        assert_eq!(p.k, 8);
        assert_eq!(p.l, 3);
        assert_eq!(p.t, 16);
        assert_eq!(p.r_min, 0.5);
        assert_eq!(p.seed, 7);
        p.validate().unwrap();
    }

    #[test]
    fn every_constraint_is_reported() {
        let base = DbLshParams::paper_defaults(1000);
        let bad: Vec<(DbLshParams, &str)> = vec![
            (base.clone().with_c(1.0), "c"),
            (base.clone().with_c(f64::NAN), "c"),
            (base.clone().with_w0(0.0), "w0"),
            (base.clone().with_w0(f64::INFINITY), "w0"),
            (base.clone().with_kl(0, 5), "k"),
            (base.clone().with_kl(4, 0), "l"),
            (base.clone().with_t(0), "t"),
            (base.clone().with_r_min(0.0), "r_min"),
            (base.clone().with_r_min(f64::NAN), "r_min"),
            (
                DbLshParams {
                    max_rounds: 0,
                    ..base.clone()
                },
                "max_rounds",
            ),
            (
                DbLshParams {
                    node_capacity: 2,
                    ..base.clone()
                },
                "node_capacity",
            ),
        ];
        for (params, knob) in bad {
            match params.validate() {
                Err(DbLshError::InvalidParameter { param, .. }) => {
                    assert_eq!(param, knob, "wrong knob blamed for {params:?}")
                }
                other => panic!("{knob}: expected InvalidParameter, got {other:?}"),
            }
        }
    }
}
