//! The `L x K` Gaussian projection family (paper Eq. 3, 6, 7).
//!
//! The dynamic family is `h(o) = a . o` with `a ~ N(0, I_d)` — no floor
//! quantization and no offset `b`; bucketing is deferred to query time.

use rand::prelude::*;
use rand::rngs::StdRng;

/// `L` compound hashes `G_i(o) = (h_{i1}(o), ..., h_{iK}(o))`, i.e.
/// `L * K` independent Gaussian projection vectors of dimension `d`.
#[derive(Debug, Clone)]
pub struct GaussianHasher {
    dim: usize,
    k: usize,
    l: usize,
    /// Projection matrix, laid out `[l][k][dim]`.
    a: Vec<f64>,
}

impl GaussianHasher {
    /// Sample a new family. Deterministic in `seed`.
    pub fn new(dim: usize, k: usize, l: usize, seed: u64) -> Self {
        assert!(dim >= 1 && k >= 1 && l >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..l * k * dim)
            .map(|_| standard_normal(&mut rng))
            .collect();
        GaussianHasher { dim, k, l, a }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// `G_i(o)`: project `point` into the `i`-th K-dimensional space,
    /// writing into `out` (length `K`) — a blocked row-panel matvec
    /// ([`dblsh_data::kernels::matvec`]): projection rows are consumed in
    /// pairs sharing each point load, with the per-row 4-way `f64`
    /// accumulation of [`dblsh_data::kernels::dot_f64`].
    ///
    /// This sits on the query hot path (`L` calls per query, every call
    /// a `K x d` panel), so the preconditions are a documented contract
    /// checked only in debug builds, per the workspace convention —
    /// `dblsh-core` validates inputs once at its public boundary via
    /// [`dblsh_data::DbLshError`].
    ///
    /// # Contract
    /// (debug-checked) `i < self.l()`, `point.len() == self.dim()`,
    /// `out.len() == self.k()`.
    pub fn project_into(&self, i: usize, point: &[f32], out: &mut [f64]) {
        debug_assert!(i < self.l, "projection index out of range");
        debug_assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        debug_assert_eq!(out.len(), self.k, "output length must be K");
        let base = i * self.k * self.dim;
        dblsh_data::kernels::matvec(
            &self.a[base..base + self.k * self.dim],
            self.dim,
            point,
            out,
        );
    }

    /// `G_i(o)` as a fresh vector.
    pub fn project(&self, i: usize, point: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0; self.k];
        self.project_into(i, point, &mut out);
        out
    }

    /// Project an entire dataset (flat `f32` row-major, `n x dim`) into the
    /// `i`-th space, returning a flat `n x K` matrix.
    pub fn project_all(&self, i: usize, data: &[f32]) -> Vec<f64> {
        assert_eq!(data.len() % self.dim, 0, "flat data length mismatch");
        let n = data.len() / self.dim;
        let mut out = vec![0.0f64; n * self.k];
        for (row, chunk) in out.chunks_exact_mut(self.k).enumerate() {
            self.project_into(i, &data[row * self.dim..(row + 1) * self.dim], chunk);
        }
        out
    }
}

/// Box–Muller standard normal sample.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = GaussianHasher::new(16, 4, 3, 9);
        let b = GaussianHasher::new(16, 4, 3, 9);
        let p: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(a.project(1, &p), b.project(1, &p));
        let c = GaussianHasher::new(16, 4, 3, 10);
        assert_ne!(a.project(1, &p), c.project(1, &p));
    }

    #[test]
    fn projection_is_linear() {
        let h = GaussianHasher::new(8, 5, 2, 3);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        let y: Vec<f32> = (0..8).map(|i| (8 - i) as f32).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let hx = h.project(0, &x);
        let hy = h.project(0, &y);
        let hsum = h.project(0, &sum);
        for j in 0..5 {
            assert!((hsum[j] - (hx[j] + hy[j])).abs() < 1e-6);
        }
    }

    #[test]
    fn projections_differ_across_tables() {
        let h = GaussianHasher::new(8, 3, 4, 1);
        let p = vec![1.0f32; 8];
        let g0 = h.project(0, &p);
        let g1 = h.project(1, &p);
        assert_ne!(g0, g1);
    }

    #[test]
    fn project_all_matches_single() {
        let h = GaussianHasher::new(6, 4, 2, 5);
        let data: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect(); // 5 points
        let all = h.project_all(1, &data);
        assert_eq!(all.len(), 5 * 4);
        for row in 0..5 {
            let single = h.project(1, &data[row * 6..(row + 1) * 6]);
            assert_eq!(&all[row * 4..(row + 1) * 4], &single[..]);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        // mean ~ 0, variance ~ 1 over many coefficients
        let h = GaussianHasher::new(100, 10, 10, 77);
        let coeffs = &h.a;
        let n = coeffs.len() as f64;
        let mean: f64 = coeffs.iter().sum::<f64>() / n;
        let var: f64 = coeffs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn projected_distance_concentrates() {
        // E[ (h(o1) - h(o2))^2 ] = ||o1 - o2||^2: check the average over
        // many hash functions is close.
        let dim = 64;
        let h = GaussianHasher::new(dim, 32, 8, 13);
        let o1: Vec<f32> = (0..dim).map(|i| (i % 7) as f32).collect();
        let o2: Vec<f32> = (0..dim).map(|i| (i % 5) as f32 + 1.0).collect();
        let true_d2: f64 = o1
            .iter()
            .zip(&o2)
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum();
        let mut acc = 0.0;
        let mut cnt = 0;
        for i in 0..8 {
            let g1 = h.project(i, &o1);
            let g2 = h.project(i, &o2);
            for j in 0..32 {
                acc += (g1[j] - g2[j]).powi(2);
                cnt += 1;
            }
        }
        let est = acc / cnt as f64;
        assert!(
            (est - true_d2).abs() / true_d2 < 0.25,
            "estimate {est} vs true {true_d2}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_table_index_panics() {
        let h = GaussianHasher::new(4, 2, 2, 0);
        h.project(2, &[0.0; 4]);
    }
}
