//! Index construction (paper Section IV-B) and dynamic maintenance:
//! project the dataset into `L` K-dimensional spaces, bulk-load one
//! R*-tree per space, and keep the trees in sync under point insertions
//! and removals — the update path the paper's dynamic bucketing makes
//! possible ("DB-LSH naturally supports updates since the R*-tree is a
//! dynamic structure").

use std::sync::Arc;

use dblsh_data::{Dataset, DbLshError};
use dblsh_index::RStarTree;

use crate::hasher::GaussianHasher;
use crate::params::DbLshParams;

/// A built DB-LSH index.
///
/// Construct through [`crate::DbLshBuilder`] (or the lower-level
/// [`DbLsh::build`]); query through [`DbLsh::k_ann`] /
/// [`DbLsh::search_with`] / [`DbLsh::search_batch`]; maintain dynamically
/// through [`DbLsh::insert`] and [`DbLsh::remove`].
///
/// Removed points are *tombstoned*: their rows stay in the backing
/// [`Dataset`] (ids are stable row indexes) but they are deleted from all
/// `L` trees, so no query ever returns them. [`DbLsh::len`] counts live
/// points only.
#[derive(Debug)]
pub struct DbLsh {
    pub(crate) params: DbLshParams,
    pub(crate) hasher: GaussianHasher,
    pub(crate) trees: Vec<RStarTree>,
    pub(crate) data: Arc<Dataset>,
    /// Tombstone bitset over dataset rows (1 = removed).
    removed: Vec<u64>,
    /// Number of live (non-tombstoned) points.
    live: usize,
    /// Reusable K-length projection buffer for `insert`/`remove`, so a
    /// high-churn update workload pays no per-update allocation.
    update_proj: Vec<f64>,
}

impl DbLsh {
    /// Build the index: `L` projections of the full dataset, each
    /// bulk-loaded into an R*-tree. Projection and tree construction for
    /// the `L` spaces run on separate threads.
    ///
    /// Fails with [`DbLshError::EmptyDataset`] on an empty dataset and
    /// [`DbLshError::InvalidParameter`] on malformed parameters.
    pub fn build(data: Arc<Dataset>, params: &DbLshParams) -> Result<Self, DbLshError> {
        params.validate()?;
        if data.is_empty() {
            return Err(DbLshError::EmptyDataset);
        }
        if data.len() > u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let hasher = GaussianHasher::new(data.dim(), params.k, params.l, params.seed);
        let ids: Vec<u32> = (0..data.len() as u32).collect();

        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(params.l, || None);
        let cap = params.node_capacity;
        std::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let hasher = &hasher;
                let data = &data;
                let ids = &ids;
                s.spawn(move || {
                    let projected = hasher.project_all(i, data.flat());
                    *slot = Some(RStarTree::bulk_load_with_capacity(
                        hasher.k(),
                        ids,
                        &projected,
                        cap,
                    ));
                });
            }
        });

        let live = data.len();
        Ok(DbLsh {
            params: params.clone(),
            hasher,
            trees: trees.into_iter().map(|t| t.expect("tree built")).collect(),
            data,
            removed: vec![0; live.div_ceil(64)],
            live,
            update_proj: vec![0.0; params.k],
        })
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The backing dataset. Rows of removed points are still present
    /// (ids are stable row indexes); see [`DbLsh::contains`].
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The projection family.
    pub fn hasher(&self) -> &GaussianHasher {
        &self.hasher
    }

    /// Number of live indexed points (insertions minus removals).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` names a live point of this index.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.data.len() && !self.is_removed(id)
    }

    #[inline]
    pub(crate) fn is_removed(&self, id: u32) -> bool {
        self.removed[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    /// Insert one point, projecting it into all `L` spaces and inserting
    /// it into every tree (R\* insertion with forced reinsertion). Returns
    /// the new point's id — its row index in [`DbLsh::data`].
    ///
    /// If other `Arc` handles to the dataset are alive, the first insert
    /// after a build clones the backing matrix (copy-on-write); handles
    /// held by callers keep observing the pre-insert dataset.
    pub fn insert(&mut self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.data.dim() {
            return Err(DbLshError::DimensionMismatch {
                expected: self.data.dim(),
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        if self.data.len() >= u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let id = self.data.len() as u32;
        Arc::make_mut(&mut self.data).try_push(point)?;
        let mut proj = std::mem::take(&mut self.update_proj);
        for i in 0..self.params.l {
            self.hasher.project_into(i, point, &mut proj);
            self.trees[i].insert(id, &proj);
        }
        self.update_proj = proj;
        if self.removed.len() * 64 <= id as usize {
            self.removed.push(0);
        }
        self.live += 1;
        Ok(id)
    }

    /// Remove the point `id` from all `L` trees, tombstoning its dataset
    /// row. Returns `Ok(true)` if the point was live, `Ok(false)` if it
    /// had already been removed, and `Err(UnknownId)` if `id` never named
    /// a point of this index.
    pub fn remove(&mut self, id: u32) -> Result<bool, DbLshError> {
        if id as usize >= self.data.len() {
            return Err(DbLshError::UnknownId { id });
        }
        if self.is_removed(id) {
            return Ok(false);
        }
        let mut proj = std::mem::take(&mut self.update_proj);
        for i in 0..self.params.l {
            self.hasher
                .project_into(i, self.data.point(id as usize), &mut proj);
            let found = self.trees[i].remove(id, &proj);
            debug_assert!(found, "live id {id} missing from tree {i}");
        }
        self.update_proj = proj;
        self.removed[(id / 64) as usize] |= 1u64 << (id % 64);
        self.live -= 1;
        Ok(true)
    }

    /// Verify cross-structure invariants: every tree holds exactly the
    /// live ids, at exactly the coordinates the hasher assigns them, and
    /// satisfies its own R\* invariants. Panics with a description on
    /// violation. Exposed for tests and debugging; cost is
    /// `O(L * n * (K * d + log n))`.
    pub fn check_invariants(&self) {
        let live_ids: Vec<u32> = (0..self.data.len() as u32)
            .filter(|&id| !self.is_removed(id))
            .collect();
        assert_eq!(live_ids.len(), self.live, "live counter out of sync");
        let mut proj = vec![0.0f64; self.params.k];
        for (i, tree) in self.trees.iter().enumerate() {
            tree.check_invariants();
            assert_eq!(tree.len(), self.live, "tree {i} size != live count");
            let mut ids: Vec<u32> = tree.iter_points().map(|(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, live_ids, "tree {i} does not hold exactly the live ids");
            for (id, coords) in tree.iter_points() {
                self.hasher
                    .project_into(i, self.data.point(id as usize), &mut proj);
                assert_eq!(
                    coords,
                    &proj[..],
                    "tree {i} stores id {id} at stale coordinates"
                );
            }
        }
    }

    /// Estimate a radius-ladder start from the data: the median
    /// nearest-neighbor distance within an evenly spaced sample, divided
    /// by `c^4`. Starting the ladder below the true NN radius only costs
    /// a few empty probe rounds (each `O(L log n)`); starting above it
    /// makes the very first `(r, c)`-NN probe accept points within `c*r`
    /// that are far beyond the real neighbors, which destroys recall —
    /// so the estimate is deliberately biased low.
    pub fn estimate_r_min(data: &Dataset, params: &DbLshParams, sample: usize) -> f64 {
        let n = data.len();
        if n < 2 {
            return params.r_min;
        }
        // Exact NN distance of up to 16 evenly spaced probes against the
        // *full* dataset. Sampling both sides instead would overestimate
        // badly on clustered data (a sparse sample sees inter-cluster
        // distances, not NN distances). Cost: <= 16 linear scans, once,
        // at build time.
        let probes = sample.clamp(1, 16).min(n);
        let step = (n / probes).max(1);
        let mut nn_dists: Vec<f64> = Vec::with_capacity(probes);
        for i in (0..n).step_by(step).take(probes) {
            let p = data.point(i);
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = dblsh_data::dataset::sq_dist(p, data.point(j)) as f64;
                if d > 0.0 && d < best {
                    best = d;
                }
            }
            if best.is_finite() {
                nn_dists.push(best.sqrt());
            }
        }
        if nn_dists.is_empty() {
            return params.r_min;
        }
        nn_dists.sort_by(f64::total_cmp);
        let median = nn_dists[nn_dists.len() / 2];
        (median / params.c.powi(4)).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small_data() -> Arc<Dataset> {
        Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 16,
            clusters: 10,
            ..Default::default()
        }))
    }

    #[test]
    fn build_creates_l_trees_with_all_points() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(6, 3);
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(idx.trees.len(), 3);
        for t in &idx.trees {
            assert_eq!(t.len(), 1000);
            assert_eq!(t.dim(), 6);
            t.check_invariants();
        }
        assert_eq!(idx.len(), 1000);
        assert!(!idx.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let a = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let b = DbLsh::build(Arc::clone(&data), &params).unwrap();
        // same projections => same tree MBRs
        for (ta, tb) in a.trees.iter().zip(&b.trees) {
            assert_eq!(ta.mbr(), tb.mbr());
        }
    }

    #[test]
    fn estimate_r_min_is_positive_and_modest() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len());
        let r = DbLsh::estimate_r_min(&data, &params, 100);
        assert!(r > 0.0);
        assert!(r < 1e4);
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = Arc::new(Dataset::empty(8));
        let err = DbLsh::build(data, &DbLshParams::paper_defaults(10)).unwrap_err();
        assert_eq!(err, DbLshError::EmptyDataset);
    }

    #[test]
    fn invalid_params_rejected_not_panicking() {
        let data = small_data();
        let err = DbLsh::build(
            Arc::clone(&data),
            &DbLshParams::paper_defaults(1000).with_c(0.5),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DbLshError::InvalidParameter { param: "c", .. }
        ));
    }

    #[test]
    fn insert_grows_every_tree() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let p = vec![0.25f32; 16];
        let id = idx.insert(&p).unwrap();
        assert_eq!(id, 1000);
        assert_eq!(idx.len(), 1001);
        assert!(idx.contains(id));
        for t in &idx.trees {
            assert_eq!(t.len(), 1001);
            t.check_invariants();
        }
        // the backing dataset gained the row
        assert_eq!(idx.data().point(1000), &p[..]);
    }

    #[test]
    fn insert_validates_input() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(
            idx.insert(&[1.0; 3]).unwrap_err(),
            DbLshError::DimensionMismatch {
                expected: 16,
                got: 3
            }
        );
        assert_eq!(
            idx.insert(&[f32::NAN; 16]).unwrap_err(),
            DbLshError::NonFiniteCoordinate
        );
        assert_eq!(idx.len(), 1000, "failed inserts must not change the index");
    }

    #[test]
    fn remove_tombstones_and_shrinks_trees() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert!(idx.remove(17).unwrap());
        assert!(!idx.remove(17).unwrap(), "second removal reports false");
        assert_eq!(
            idx.remove(5000).unwrap_err(),
            DbLshError::UnknownId { id: 5000 }
        );
        assert_eq!(idx.len(), 999);
        assert!(!idx.contains(17));
        for t in &idx.trees {
            assert_eq!(t.len(), 999);
            t.check_invariants();
        }
    }

    #[test]
    fn insert_after_remove_uses_fresh_id() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        idx.remove(0).unwrap();
        let id = idx.insert(&[1.5f32; 16]).unwrap();
        assert_eq!(id, 1000, "tombstoned rows are never recycled");
        assert!(idx.contains(id));
        assert!(!idx.contains(0));
        assert_eq!(idx.len(), 1000);
    }
}
