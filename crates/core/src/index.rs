//! Index construction (paper Section IV-B): project the dataset into `L`
//! K-dimensional spaces and bulk-load one R*-tree per space.

use std::sync::Arc;

use dblsh_data::Dataset;
use dblsh_index::RStarTree;

use crate::hasher::GaussianHasher;
use crate::params::DbLshParams;

/// A built DB-LSH index over an immutable dataset.
#[derive(Debug)]
pub struct DbLsh {
    pub(crate) params: DbLshParams,
    pub(crate) hasher: GaussianHasher,
    pub(crate) trees: Vec<RStarTree>,
    pub(crate) data: Arc<Dataset>,
}

impl DbLsh {
    /// Build the index: `L` projections of the full dataset, each
    /// bulk-loaded into an R*-tree. Projection and tree construction for
    /// the `L` spaces run on separate threads.
    pub fn build(data: Arc<Dataset>, params: &DbLshParams) -> Self {
        params.validate();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let hasher = GaussianHasher::new(data.dim(), params.k, params.l, params.seed);
        let ids: Vec<u32> = (0..data.len() as u32).collect();

        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(params.l, || None);
        let cap = params.node_capacity;
        crossbeam::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let hasher = &hasher;
                let data = &data;
                let ids = &ids;
                s.spawn(move |_| {
                    let projected = hasher.project_all(i, data.flat());
                    *slot = Some(RStarTree::bulk_load_with_capacity(
                        hasher.k(),
                        ids,
                        &projected,
                        cap,
                    ));
                });
            }
        })
        .expect("index construction worker panicked");

        DbLsh {
            params: params.clone(),
            hasher,
            trees: trees.into_iter().map(|t| t.expect("tree built")).collect(),
            data,
        }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The projection family.
    pub fn hasher(&self) -> &GaussianHasher {
        &self.hasher
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the index holds no points (unreachable via `build`, which
    /// rejects empty datasets, but part of the container contract).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Estimate a radius-ladder start from the data: the median
    /// nearest-neighbor distance within an evenly spaced sample, divided
    /// by `c^4`. Starting the ladder below the true NN radius only costs
    /// a few empty probe rounds (each `O(L log n)`); starting above it
    /// makes the very first `(r, c)`-NN probe accept points within `c*r`
    /// that are far beyond the real neighbors, which destroys recall —
    /// so the estimate is deliberately biased low.
    pub fn estimate_r_min(data: &Dataset, params: &DbLshParams, sample: usize) -> f64 {
        let n = data.len();
        if n < 2 {
            return params.r_min;
        }
        // Exact NN distance of up to 16 evenly spaced probes against the
        // *full* dataset. Sampling both sides instead would overestimate
        // badly on clustered data (a sparse sample sees inter-cluster
        // distances, not NN distances). Cost: <= 16 linear scans, once,
        // at build time.
        let probes = sample.clamp(1, 16).min(n);
        let step = (n / probes).max(1);
        let mut nn_dists: Vec<f64> = Vec::with_capacity(probes);
        for i in (0..n).step_by(step).take(probes) {
            let p = data.point(i);
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = dblsh_data::dataset::sq_dist(p, data.point(j)) as f64;
                if d > 0.0 && d < best {
                    best = d;
                }
            }
            if best.is_finite() {
                nn_dists.push(best.sqrt());
            }
        }
        if nn_dists.is_empty() {
            return params.r_min;
        }
        nn_dists.sort_by(f64::total_cmp);
        let median = nn_dists[nn_dists.len() / 2];
        (median / params.c.powi(4)).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small_data() -> Arc<Dataset> {
        Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 16,
            clusters: 10,
            ..Default::default()
        }))
    }

    #[test]
    fn build_creates_l_trees_with_all_points() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(6, 3);
        let idx = DbLsh::build(Arc::clone(&data), &params);
        assert_eq!(idx.trees.len(), 3);
        for t in &idx.trees {
            assert_eq!(t.len(), 1000);
            assert_eq!(t.dim(), 6);
            t.check_invariants();
        }
        assert_eq!(idx.len(), 1000);
        assert!(!idx.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let a = DbLsh::build(Arc::clone(&data), &params);
        let b = DbLsh::build(Arc::clone(&data), &params);
        // same projections => same tree MBRs
        for (ta, tb) in a.trees.iter().zip(&b.trees) {
            assert_eq!(ta.mbr(), tb.mbr());
        }
    }

    #[test]
    fn estimate_r_min_is_positive_and_modest() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len());
        let r = DbLsh::estimate_r_min(&data, &params, 100);
        assert!(r > 0.0);
        assert!(r < 1e4);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let data = Arc::new(Dataset::empty(8));
        DbLsh::build(data, &DbLshParams::paper_defaults(10));
    }
}
