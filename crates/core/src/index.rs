//! Index construction (paper Section IV-B) and dynamic maintenance:
//! project the dataset into `L` K-dimensional spaces — all into one
//! shared [`ProjStore`] row per point — bulk-load one id-only R*-tree per
//! space over the store's column views, and keep the trees in sync under
//! point insertions and removals — the update path the paper's dynamic
//! bucketing makes possible ("DB-LSH naturally supports updates since the
//! R*-tree is a dynamic structure").
//!
//! # Internal vs external id space
//!
//! At bulk build the index (by default) computes a *locality-preserving
//! permutation* of the points — the STR leaf order of tree 0 over the
//! first projected space ([`dblsh_index::str_order`]) — and physically
//! reorders its own copies of the dataset rows and the projection-store
//! rows to match. Every id inside the trees and the store is an
//! **internal** id (a row in the relabeled layout); every id that crosses
//! the public API — [`DbLsh::insert`]'s return value, [`DbLsh::remove`]'s
//! argument, `Neighbor::id` in results — is an **external** id (the
//! caller's original row index), translated through two `u32` maps.
//! Queries therefore read near-sequential memory in leaf scans and
//! candidate verification while callers never observe the permutation:
//! answers are byte-identical to an identity-order build — up to
//! tie-breaking among exact duplicate points, whose identical projections
//! make leaf assignment order-dependent — a property the relabel parity
//! tests assert on distinct-point data.

use std::sync::Arc;

use dblsh_data::{Dataset, DbLshError, Sq8Grid, Sq8Store};
use dblsh_index::{RStarTree, StridedCoords};

use crate::hasher::GaussianHasher;
use crate::params::DbLshParams;
use crate::proj_store::ProjStore;

/// Sentinel in [`IdMaps::int_of_ext`] for external ids whose rows were
/// dropped by [`DbLsh::compact`]: the id is still part of the external
/// id space (ids are never recycled) but no longer has a physical row.
/// Guarded everywhere by the tombstone bitset — a dead id is rejected
/// before any map lookup would dereference it.
pub(crate) const DEAD: u32 = u32::MAX;

/// The internal↔external id maps. Present on locality-relabeled builds
/// (where they carry the build permutation) and on any index that has
/// been [`DbLsh::compact`]ed (where external ids become sparse over the
/// dense internal rows — compaction is a second permutation through the
/// same machinery the PR-3 relabeling introduced).
#[derive(Debug)]
pub(crate) struct IdMaps {
    /// `ext_of_int[internal] = external`, one entry per physical row.
    pub(crate) ext_of_int: Vec<u32>,
    /// `int_of_ext[external] = internal`, one entry per external id ever
    /// handed out; [`DEAD`] for ids whose rows were compacted away.
    pub(crate) int_of_ext: Vec<u32>,
}

/// What one [`DbLsh::compact`] call reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Tombstoned rows whose space was dropped from the store, the
    /// dataset and the maps.
    pub dropped_rows: usize,
    /// Live rows surviving the compaction.
    pub live_rows: usize,
    /// Logical bytes reclaimed — the [`crate::MemoryBreakdown`]
    /// `dead_bytes` figure at the moment of compaction (0 when the call
    /// was a no-op).
    pub reclaimed_bytes: usize,
}

/// A built DB-LSH index.
///
/// Construct through [`crate::DbLshBuilder`] (or the lower-level
/// [`DbLsh::build`]); query through [`DbLsh::k_ann`] /
/// [`DbLsh::search_with`] / [`DbLsh::search_batch`]; maintain dynamically
/// through [`DbLsh::insert`] and [`DbLsh::remove`].
///
/// Internally the index is **flat**: every point's `L` projections live
/// in one row of the shared [`ProjStore`], and the `L` R*-trees store
/// only `u32` ids, resolving coordinates through per-tree column views of
/// the store. See the [`crate::proj_store`] module docs for the layout.
///
/// Removed points are *tombstoned*: their rows stay in the backing
/// [`Dataset`] and in the projection store (ids are stable row indexes)
/// but they are deleted from all `L` trees, so no query ever returns
/// them. [`DbLsh::len`] counts live points only.
///
/// All ids on this public surface — arguments to [`DbLsh::remove`] /
/// [`DbLsh::contains`], return values of [`DbLsh::insert`], and
/// `Neighbor::id` in every query result — are **external** ids: row
/// indexes into the dataset exactly as the caller supplied it (see
/// [`DbLsh::data`]). The locality-relabeled internal id space (module
/// docs) never leaks.
#[derive(Debug)]
pub struct DbLsh {
    pub(crate) params: DbLshParams,
    pub(crate) hasher: GaussianHasher,
    pub(crate) trees: Vec<RStarTree>,
    pub(crate) store: ProjStore,
    /// The point rows, ascending by external id (until the first
    /// [`DbLsh::compact`] this means row `i` = id `i`). Holds the rows
    /// of tombstoned-but-not-yet-compacted ids too; always in lockstep
    /// with the store row for row.
    pub(crate) data: Arc<Dataset>,
    /// Internal↔external id maps; `None` while internal id == external
    /// id (identity-order builds that were never compacted).
    pub(crate) maps: Option<IdMaps>,
    /// Dataset rows physically reordered into *internal* (store/tree)
    /// order — what candidate verification reads. Present only when the
    /// internal order differs from `data`'s own row order, i.e. on
    /// locality-relabeled builds; compacted identity-order indexes keep
    /// `data` itself in internal order and carry no copy.
    pub(crate) verify_rows: Option<Dataset>,
    /// SQ8 quantized codes of the rows in *internal* (verification)
    /// order — the stage-1 pre-filter scans these before any f32 row is
    /// touched. Kept in lockstep with [`DbLsh::verify_data`] through
    /// insert/compact; the grid (per-dimension `min`/`step`) is learned
    /// once at build and never re-learned, so pruning decisions — and
    /// therefore the prefilter counters — are stable across churn,
    /// compaction and save/load.
    pub(crate) sq8: Sq8Store,
    /// Tombstone bitset over *external* ids (1 = removed). Compaction
    /// drops the rows but keeps the bits: a dead id must answer
    /// `contains == false` / `remove == Ok(false)` forever, at one bit
    /// per id ever handed out.
    pub(crate) removed: Vec<u64>,
    /// Number of live (non-tombstoned) points.
    pub(crate) live: usize,
    /// One past the largest external id ever handed out — the id the
    /// next [`DbLsh::insert`] returns. Exceeds the physical row count
    /// once compaction has dropped dead rows.
    pub(crate) ext_len: usize,
}

impl DbLsh {
    /// Build the index: `L` projections of the full dataset written into
    /// the shared projection store (row-parallel), a locality-preserving
    /// relabel of the rows (unless [`DbLshParams::relabel`] is off), then
    /// one bulk-loaded R*-tree per space (tree-parallel) over the store's
    /// column views.
    ///
    /// Fails with [`DbLshError::EmptyDataset`] on an empty dataset and
    /// [`DbLshError::InvalidParameter`] on malformed parameters.
    pub fn build(data: Arc<Dataset>, params: &DbLshParams) -> Result<Self, DbLshError> {
        Self::build_with_grid(data, params, None)
    }

    /// [`DbLsh::build`] with an externally supplied SQ8 quantization
    /// grid. `None` learns the grid from this dataset (the normal path);
    /// `Some` injects a grid learned over a *superset* of the data — the
    /// sharded serving layer uses this so every shard quantizes against
    /// the same grid and per-shard prune decisions (and therefore the
    /// merged prefilter counters) match an unsharded build exactly.
    ///
    /// Grid learning is order-independent (a per-dimension min/max over
    /// the point multiset), so a relabeled and an identity build of the
    /// same rows always learn the same grid.
    pub fn build_with_grid(
        data: Arc<Dataset>,
        params: &DbLshParams,
        grid: Option<Sq8Grid>,
    ) -> Result<Self, DbLshError> {
        params.validate()?;
        if data.is_empty() {
            return Err(DbLshError::EmptyDataset);
        }
        if data.len() > u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let (l, k) = (params.l, params.k);
        let hasher = GaussianHasher::new(data.dim(), k, l, params.seed);
        let n = data.len();
        let ids: Vec<u32> = (0..n as u32).collect();

        // Phase 1: fill the projection rows (external order) row-parallel — each worker projects a
        // contiguous run of points into all L column windows of its rows
        // (accumulating in f64, storing at f32).
        let width = l * k;
        let mut flat = vec![0.0f32; n * width];
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .clamp(1, n);
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, chunk) in flat.chunks_mut(rows_per * width).enumerate() {
                let hasher = &hasher;
                let data = &data;
                s.spawn(move || {
                    let mut scratch = vec![0.0f64; k];
                    for (r, row) in chunk.chunks_exact_mut(width).enumerate() {
                        let point = data.point(t * rows_per + r);
                        for i in 0..l {
                            hasher.project_into(i, point, &mut scratch);
                            for (dst, &v) in row[i * k..(i + 1) * k].iter_mut().zip(&scratch) {
                                *dst = v as f32;
                            }
                        }
                    }
                });
            }
        });
        // Phase 2: locality-aware relabeling. The STR leaf order of tree 0
        // over the first projected space is a locality-preserving
        // permutation: relabeled to it, every leaf of every future tree-0
        // bulk load is a contiguous run of row ids, and the other trees'
        // leaves (correlated through the shared Gaussian family) stay far
        // more local than insertion order. Both the projection rows and
        // the verification rows are physically reordered so leaf scans
        // and exact-distance verification read near-sequential memory.
        let (maps, verify_rows) = if params.relabel {
            let view0 = StridedCoords::new(&flat, width, 0, k);
            let perm = dblsh_index::str_order(&view0, &ids, params.node_capacity);
            let mut permuted = vec![0.0f32; flat.len()];
            for (int, &ext) in perm.iter().enumerate() {
                let src = ext as usize * width;
                permuted[int * width..(int + 1) * width].copy_from_slice(&flat[src..src + width]);
            }
            flat = permuted;
            let mut int_of_ext = vec![0u32; n];
            for (int, &ext) in perm.iter().enumerate() {
                int_of_ext[ext as usize] = int as u32;
            }
            let rows = data.reordered(&perm);
            (
                Some(IdMaps {
                    ext_of_int: perm,
                    int_of_ext,
                }),
                Some(rows),
            )
        } else {
            (None, None)
        };
        let store = ProjStore::from_flat(l, k, flat);

        // Phase 3: bulk-load the L trees in parallel; each reads only its
        // own column view of the (now immutable) store.
        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(l, || None);
        let cap = params.node_capacity;
        std::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let store = &store;
                let ids = &ids;
                s.spawn(move || {
                    *slot = Some(RStarTree::bulk_load_with_capacity(&store.view(i), ids, cap));
                });
            }
        });

        // Stage-1 pre-filter state: resolve the quantization grid
        // (injected or learned over the full dataset — order-independent
        // either way), then encode the rows in *internal* order so the
        // bound scan walks the same layout verification does.
        let grid = match grid {
            Some(g) => {
                if g.dim() != data.dim() {
                    return Err(DbLshError::DimensionMismatch {
                        expected: data.dim(),
                        got: g.dim(),
                    });
                }
                g
            }
            None => Sq8Grid::learn(data.dim(), data.flat()),
        };
        let sq8 = Sq8Store::build(grid, verify_rows.as_ref().map_or(data.flat(), |v| v.flat()));

        let live = data.len();
        Ok(DbLsh {
            params: params.clone(),
            hasher,
            // lint: allow(panic-free-surface) — thread::scope joined every tree builder, so each slot was written
            trees: trees.into_iter().map(|t| t.expect("tree built")).collect(),
            store,
            data,
            maps,
            verify_rows,
            sq8,
            removed: vec![0; live.div_ceil(64)],
            live,
            ext_len: live,
        })
    }

    /// Map an internal id (tree/store row) to the caller-visible external
    /// id. Identity on unmapped indexes.
    #[inline]
    pub(crate) fn to_ext(&self, internal: u32) -> u32 {
        match &self.maps {
            Some(m) => m.ext_of_int[internal as usize],
            None => internal,
        }
    }

    /// Map an external id to the internal id the trees and the store use.
    /// Callers guard with the tombstone bitset first — a compacted-away
    /// id maps to the [`DEAD`] sentinel.
    #[inline]
    pub(crate) fn to_int(&self, external: u32) -> u32 {
        match &self.maps {
            Some(m) => m.int_of_ext[external as usize],
            None => external,
        }
    }

    /// The dataset rows in *internal* order — what candidate verification
    /// reads. On relabeled indexes this is the physically reordered copy;
    /// otherwise `data` itself (whose row order is internal order on
    /// identity builds, compacted or not).
    #[inline]
    pub(crate) fn verify_data(&self) -> &Dataset {
        match &self.verify_rows {
            Some(rows) => rows,
            None => &self.data,
        }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The backing dataset, rows ascending by external id. Until the
    /// first [`DbLsh::compact`] this means row `i` *is* the point with
    /// id `i`, exactly as supplied at build time plus any
    /// [`DbLsh::insert`]ed rows, with removed points' rows still present
    /// (tombstoned, see [`DbLsh::contains`]). After a compaction the
    /// dead rows are gone, so row indexes and ids diverge — use
    /// [`DbLsh::point`] for id-addressed access. The locality-relabeled
    /// internal layout is never observable here.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Borrow the point with external id `id`, or `None` if `id` does
    /// not name a live point of this index. Works identically before and
    /// after [`DbLsh::compact`].
    pub fn point(&self, id: u32) -> Option<&[f32]> {
        if !self.contains(id) {
            return None;
        }
        Some(self.verify_data().point(self.to_int(id) as usize))
    }

    /// Whether this index carries a locality-reordered verification copy
    /// of its rows (see the module docs and [`DbLshParams::relabel`]).
    pub fn is_relabeled(&self) -> bool {
        self.verify_rows.is_some()
    }

    /// The projection family.
    pub fn hasher(&self) -> &GaussianHasher {
        &self.hasher
    }

    /// The shared projected-point store backing all `L` trees.
    pub fn proj_store(&self) -> &ProjStore {
        &self.store
    }

    /// The SQ8 quantized code store the stage-1 verification pre-filter
    /// scans (codes in internal order, grid fixed at build).
    pub fn sq8_store(&self) -> &Sq8Store {
        &self.sq8
    }

    /// Per-tree structure statistics (node counts, entry counts, arena
    /// bytes) — the tree side of [`DbLsh::memory_breakdown`].
    pub fn tree_stats(&self) -> Vec<dblsh_index::TreeStats> {
        self.trees.iter().map(|t| t.stats()).collect()
    }

    /// Number of live indexed points (insertions minus removals).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// One past the largest external id ever handed out — the id the
    /// next [`DbLsh::insert`] returns. Every id in `0..id_bound()` has
    /// been handed out exactly once (ids are never recycled); ids of
    /// removed points stay tombstoned forever, even after their rows are
    /// reclaimed by [`DbLsh::compact`].
    pub fn id_bound(&self) -> usize {
        self.ext_len
    }

    /// Number of tombstoned rows still occupying physical space (in the
    /// store, the dataset and the maps) — what [`DbLsh::compact`] would
    /// reclaim, and what drives a serving layer's compaction policy.
    pub fn dead_rows(&self) -> usize {
        self.store.len() - self.live
    }

    /// Whether `id` names a live point of this index.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.ext_len && !self.is_removed(id)
    }

    #[inline]
    pub(crate) fn is_removed(&self, id: u32) -> bool {
        self.removed[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    /// Insert one point: append its row to the dataset and the projection
    /// store, then insert the id into every tree (R\* insertion with
    /// forced reinsertion). Returns the new point's id — its row index in
    /// [`DbLsh::data`].
    ///
    /// If other `Arc` handles to the dataset are alive, the first insert
    /// after a build clones the backing matrix (copy-on-write); handles
    /// held by callers keep observing the pre-insert dataset.
    pub fn insert(&mut self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.data.dim() {
            return Err(DbLshError::DimensionMismatch {
                expected: self.data.dim(),
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        // DEAD (u32::MAX) is reserved as the dropped-row sentinel, so the
        // largest usable id is u32::MAX - 1.
        if self.ext_len >= u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let id = self.ext_len as u32;
        Arc::make_mut(&mut self.data).try_push(point)?;
        // The appended row is the largest external id and the newest
        // internal row at once, so it lands at the tail of every
        // structure: external data (ascending by id), verification rows
        // (internal order), store, and both maps.
        if let Some(rows) = &mut self.verify_rows {
            // The point was validated at the top of `insert`, so the
            // push cannot fail — `?` spells that without a panic token.
            rows.try_push(point)?;
        }
        // The new row is the internal tail, so its codes append in step
        // with the verification order. The grid is NOT re-learned: a
        // point outside the build-time range is flagged clamped and the
        // pre-filter never prunes it (bound 0), keeping the bound
        // conservative without perturbing existing codes.
        self.sq8.push(point);
        if let Some(m) = &mut self.maps {
            let internal = self.store.len() as u32;
            m.ext_of_int.push(id);
            debug_assert_eq!(m.int_of_ext.len(), id as usize);
            m.int_of_ext.push(internal);
        }
        let store_id = self.store.push_projected(&self.hasher, point);
        debug_assert_eq!(
            store_id,
            self.to_int(id),
            "store rows out of step with the id maps"
        );
        let store = &self.store;
        for (i, tree) in self.trees.iter_mut().enumerate() {
            tree.insert(&store.view(i), store_id);
        }
        if self.removed.len() * 64 <= id as usize {
            self.removed.push(0);
        }
        self.live += 1;
        self.ext_len += 1;
        Ok(id)
    }

    /// Remove the point `id` from all `L` trees, tombstoning its dataset
    /// row. Returns `Ok(true)` if the point was live, `Ok(false)` if it
    /// had already been removed, and `Err(UnknownId)` if `id` never named
    /// a point of this index.
    ///
    /// The removal descends each tree guided by the id's stored
    /// projection row — no re-projection work is done.
    pub fn remove(&mut self, id: u32) -> Result<bool, DbLshError> {
        if id as usize >= self.ext_len {
            return Err(DbLshError::UnknownId { id });
        }
        if self.is_removed(id) {
            return Ok(false);
        }
        let internal = self.to_int(id);
        let store = &self.store;
        for (i, tree) in self.trees.iter_mut().enumerate() {
            let found = tree.remove(&store.view(i), internal);
            debug_assert!(
                found,
                "live id {id} (internal {internal}) missing from tree {i}"
            );
        }
        self.removed[(id / 64) as usize] |= 1u64 << (id % 64);
        self.live -= 1;
        Ok(true)
    }

    /// Reclaim the space of every tombstoned row: rewrite the projection
    /// store, the dataset rows and the id maps without the dead rows, and
    /// rebuild the `L` trees over the compacted store through the bulk
    /// path. External ids are **preserved** — live points keep the ids
    /// they had, dead ids stay dead forever (never recycled) — and
    /// canonical-mode query answers ([`DbLsh::search_canonical`]) are
    /// byte-identical before and after, because per-round window
    /// candidate *sets* and per-row distances are unchanged. (The classic
    /// [`DbLsh::k_ann`] mode stops at leaf-batch granularity, and
    /// rebuilding the trees can move leaf boundaries, so it guarantees
    /// the same candidate pool but not bit-equal early-exit points.)
    ///
    /// The relative internal order of the surviving rows is kept, so the
    /// locality of a relabeled build survives compaction. A compacted
    /// identity-order index keeps its single `data` copy as the
    /// verification rows (its internal order stays ascending-by-id);
    /// only genuinely relabeled builds carry a reordered copy.
    ///
    /// No-op (and cheap) when there are no dead rows. Cost otherwise is
    /// `O(n)` copying plus the `L` parallel bulk loads — comparable to a
    /// fresh build minus all projection work.
    pub fn compact(&mut self) -> CompactionStats {
        let dropped = self.dead_rows();
        let live = self.live;
        if dropped == 0 {
            return CompactionStats {
                dropped_rows: 0,
                live_rows: live,
                reclaimed_bytes: 0,
            };
        }
        let reclaimed_bytes = self.memory_breakdown().dead_bytes;
        let n_old = self.store.len();
        let (l, k) = (self.params.l, self.params.k);
        let width = l * k;

        // The compaction permutation: surviving rows keep their relative
        // internal order (`keep[new_int] = old_int`, ascending).
        let mut keep: Vec<u32> = Vec::with_capacity(live);
        for old_int in 0..n_old as u32 {
            if !self.is_removed(self.to_ext(old_int)) {
                keep.push(old_int);
            }
        }
        debug_assert_eq!(keep.len(), live, "live counter out of sync");
        // Surviving rows keep their codes (and the build-time grid), so
        // prune decisions are byte-identical across a compaction.
        self.sq8 = self.sq8.retained(&keep);

        // New projection rows and id maps, in one pass over `keep`.
        let mut flat = Vec::with_capacity(live * width);
        let mut ext_of_int = Vec::with_capacity(live);
        let mut int_of_ext = vec![DEAD; self.ext_len];
        for (new_int, &old_int) in keep.iter().enumerate() {
            flat.extend_from_slice(self.store.row(old_int));
            let ext = self.to_ext(old_int);
            ext_of_int.push(ext);
            int_of_ext[ext as usize] = new_int as u32;
        }

        // New row payloads: the verification copy in internal (`keep`)
        // order — only for relabeled builds — and the external dataset in
        // ascending-id order. On an identity build those two orders
        // coincide, so the single `data` copy serves both.
        let verify_src = self.verify_data();
        let dim = verify_src.dim();
        let new_verify: Option<Dataset> = self.verify_rows.as_ref().map(|_| {
            let mut rows = Vec::with_capacity(live * dim);
            for &old_int in &keep {
                rows.extend_from_slice(verify_src.point(old_int as usize));
            }
            Dataset::from_flat(dim, rows)
        });
        let mut by_ext = ext_of_int.clone();
        by_ext.sort_unstable();
        let mut ext_rows = Vec::with_capacity(live * dim);
        for &ext in &by_ext {
            ext_rows.extend_from_slice(verify_src.point(self.to_int(ext) as usize));
        }

        // Swap everything in, then rebuild the trees over the compacted
        // store (tree-parallel, exactly the build path). The tombstone
        // bits of the dropped ids stay set — one bit per id is the
        // price of never recycling ids.
        self.store = ProjStore::from_flat(l, k, flat);
        self.verify_rows = new_verify;
        self.maps = Some(IdMaps {
            ext_of_int,
            int_of_ext,
        });
        self.data = Arc::new(Dataset::from_flat(dim, ext_rows));
        let ids: Vec<u32> = (0..live as u32).collect();
        let cap = self.params.node_capacity;
        let store = &self.store;
        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(l, || None);
        std::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let ids = &ids;
                s.spawn(move || {
                    *slot = Some(RStarTree::bulk_load_with_capacity(&store.view(i), ids, cap));
                });
            }
        });
        // lint: allow(panic-free-surface) — thread::scope joined every tree builder, so each slot was written
        self.trees = trees.into_iter().map(|t| t.expect("tree built")).collect();

        CompactionStats {
            dropped_rows: dropped,
            live_rows: live,
            reclaimed_bytes,
        }
    }

    /// Verify cross-structure invariants: the store mirrors the dataset
    /// row for row, the id maps are mutually inverse over the physical
    /// rows (with every compacted-away id tombstoned and mapped to the
    /// dead sentinel), the dataset rows ascend by external id and mirror
    /// the verification rows, every tree holds exactly the live
    /// (internal) ids, at exactly the coordinates the hasher assigns
    /// them, and satisfies its own R\* invariants. Panics with a
    /// description on violation. Exposed for tests and debugging; cost
    /// is `O(L * n * (K * d + log n))`.
    pub fn check_invariants(&self) {
        let rows = self.store.len();
        assert_eq!(
            rows,
            self.data.len(),
            "projection store out of sync with dataset"
        );
        assert!(rows <= self.ext_len, "more rows than ids handed out");
        if let Some(m) = &self.maps {
            assert_eq!(m.ext_of_int.len(), rows, "ext_of_int out of step");
            assert_eq!(m.int_of_ext.len(), self.ext_len, "int_of_ext out of step");
            for int in 0..rows {
                let ext = m.ext_of_int[int] as usize;
                assert!(ext < self.ext_len, "row {int} maps to unissued id {ext}");
                assert_eq!(
                    m.int_of_ext[ext], int as u32,
                    "id maps are not inverse at internal {int}"
                );
            }
            let present = m.int_of_ext.iter().filter(|&&i| i != DEAD).count();
            assert_eq!(present, rows, "int_of_ext names phantom rows");
            for (ext, &int) in m.int_of_ext.iter().enumerate() {
                if int == DEAD {
                    assert!(
                        self.is_removed(ext as u32),
                        "id {ext} has no row but is not tombstoned"
                    );
                }
            }
        } else {
            assert_eq!(self.ext_len, rows, "unmapped index must have dense ids");
        }
        if let Some(v) = &self.verify_rows {
            assert_eq!(v.len(), rows, "verification rows out of sync");
        }
        assert_eq!(self.sq8.len(), rows, "sq8 code store out of sync");
        assert_eq!(
            self.sq8.grid().dim(),
            self.data.dim(),
            "sq8 grid dimensionality out of step with the dataset"
        );
        // Codes must be encoded over the *internal* row order: re-encode
        // row 0 under the store's own grid and compare.
        if rows > 0 {
            let probe = Sq8Store::build(self.sq8.grid().clone(), self.verify_data().point(0));
            assert_eq!(
                probe.codes_row(0),
                self.sq8.codes_row(0),
                "sq8 codes do not encode the internal row order"
            );
        }
        // `data` rows ascend by external id and mirror the verification
        // rows through the maps.
        let verify = self.verify_data();
        let mut by_ext: Vec<u32> = (0..rows as u32).map(|int| self.to_ext(int)).collect();
        by_ext.sort_unstable();
        for (row, &ext) in by_ext.iter().enumerate() {
            assert_eq!(
                self.data.point(row),
                verify.point(self.to_int(ext) as usize),
                "external row {row} does not mirror id {ext}"
            );
        }
        let live_ids: Vec<u32> = {
            let mut v: Vec<u32> = (0..self.ext_len as u32)
                .filter(|&ext| !self.is_removed(ext))
                .map(|ext| self.to_int(ext))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(live_ids.len(), self.live, "live counter out of sync");
        let verify = self.verify_data();
        let mut proj = vec![0.0f64; self.params.k];
        for (i, tree) in self.trees.iter().enumerate() {
            let view = self.store.view(i);
            tree.check_invariants(&view);
            assert_eq!(tree.len(), self.live, "tree {i} size != live count");
            let mut ids: Vec<u32> = tree.iter_points(&view).map(|(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, live_ids, "tree {i} does not hold exactly the live ids");
            for (id, coords) in tree.iter_points(&view) {
                self.hasher
                    .project_into(i, verify.point(id as usize), &mut proj);
                assert!(
                    coords.iter().zip(&proj).all(|(&c, &p)| c == p as f32),
                    "tree {i} stores internal id {id} at stale coordinates"
                );
            }
        }
    }

    /// Estimate a radius-ladder start from the data: the median
    /// nearest-neighbor distance within an evenly spaced sample, divided
    /// by `c^4`. Starting the ladder below the true NN radius only costs
    /// a few empty probe rounds (each `O(L log n)`); starting above it
    /// makes the very first `(r, c)`-NN probe accept points within `c*r`
    /// that are far beyond the real neighbors, which destroys recall —
    /// so the estimate is deliberately biased low.
    pub fn estimate_r_min(data: &Dataset, params: &DbLshParams, sample: usize) -> f64 {
        let n = data.len();
        if n < 2 {
            return params.r_min;
        }
        // Exact NN distance of up to 16 evenly spaced probes against the
        // *full* dataset. Sampling both sides instead would overestimate
        // badly on clustered data (a sparse sample sees inter-cluster
        // distances, not NN distances). Cost: <= 16 linear scans, once,
        // at build time.
        let probes = sample.clamp(1, 16).min(n);
        let step = (n / probes).max(1);
        let mut nn_dists: Vec<f64> = Vec::with_capacity(probes);
        for i in (0..n).step_by(step).take(probes) {
            let p = data.point(i);
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = dblsh_data::dataset::sq_dist(p, data.point(j)) as f64;
                if d > 0.0 && d < best {
                    best = d;
                }
            }
            if best.is_finite() {
                nn_dists.push(best.sqrt());
            }
        }
        if nn_dists.is_empty() {
            return params.r_min;
        }
        nn_dists.sort_by(f64::total_cmp);
        let median = nn_dists[nn_dists.len() / 2];
        (median / params.c.powi(4)).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small_data() -> Arc<Dataset> {
        Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 16,
            clusters: 10,
            ..Default::default()
        }))
    }

    #[test]
    fn build_creates_l_trees_with_all_points() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(6, 3);
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(idx.trees.len(), 3);
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 1000);
            assert_eq!(t.dim(), 6);
            t.check_invariants(&idx.store.view(i));
        }
        assert_eq!(idx.store.len(), 1000);
        assert_eq!(idx.store.row_width(), 18);
        assert_eq!(idx.len(), 1000);
        assert!(!idx.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let a = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let b = DbLsh::build(Arc::clone(&data), &params).unwrap();
        // same projections => identical stores and same tree MBRs
        assert_eq!(a.store.row(0), b.store.row(0));
        for i in 0..a.trees.len() {
            assert_eq!(
                a.trees[i].mbr(&a.store.view(i)),
                b.trees[i].mbr(&b.store.view(i))
            );
        }
    }

    #[test]
    fn estimate_r_min_is_positive_and_modest() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len());
        let r = DbLsh::estimate_r_min(&data, &params, 100);
        assert!(r > 0.0);
        assert!(r < 1e4);
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = Arc::new(Dataset::empty(8));
        let err = DbLsh::build(data, &DbLshParams::paper_defaults(10)).unwrap_err();
        assert_eq!(err, DbLshError::EmptyDataset);
    }

    #[test]
    fn invalid_params_rejected_not_panicking() {
        let data = small_data();
        let err = DbLsh::build(
            Arc::clone(&data),
            &DbLshParams::paper_defaults(1000).with_c(0.5),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DbLshError::InvalidParameter { param: "c", .. }
        ));
    }

    #[test]
    fn insert_grows_every_tree_and_the_store() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let p = vec![0.25f32; 16];
        let id = idx.insert(&p).unwrap();
        assert_eq!(id, 1000);
        assert_eq!(idx.len(), 1001);
        assert_eq!(idx.store.len(), 1001);
        assert!(idx.contains(id));
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 1001);
            t.check_invariants(&idx.store.view(i));
        }
        // the backing dataset gained the row
        assert_eq!(idx.data().point(1000), &p[..]);
    }

    #[test]
    fn insert_validates_input() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(
            idx.insert(&[1.0; 3]).unwrap_err(),
            DbLshError::DimensionMismatch {
                expected: 16,
                got: 3
            }
        );
        assert_eq!(
            idx.insert(&[f32::NAN; 16]).unwrap_err(),
            DbLshError::NonFiniteCoordinate
        );
        assert_eq!(idx.len(), 1000, "failed inserts must not change the index");
        assert_eq!(idx.store.len(), 1000);
    }

    #[test]
    fn remove_tombstones_and_shrinks_trees() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert!(idx.remove(17).unwrap());
        assert!(!idx.remove(17).unwrap(), "second removal reports false");
        assert_eq!(
            idx.remove(5000).unwrap_err(),
            DbLshError::UnknownId { id: 5000 }
        );
        assert_eq!(idx.len(), 999);
        assert!(!idx.contains(17));
        // the store keeps the tombstoned row (ids are stable)
        assert_eq!(idx.store.len(), 1000);
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 999);
            t.check_invariants(&idx.store.view(i));
        }
    }

    #[test]
    fn insert_after_remove_uses_fresh_id() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        idx.remove(0).unwrap();
        let id = idx.insert(&[1.5f32; 16]).unwrap();
        assert_eq!(id, 1000, "tombstoned rows are never recycled");
        assert!(idx.contains(id));
        assert!(!idx.contains(0));
        assert_eq!(idx.len(), 1000);
    }

    #[test]
    fn compact_reclaims_dead_rows_and_preserves_ids() {
        for relabel in [true, false] {
            let data = small_data();
            let params = DbLshParams::paper_defaults(data.len())
                .with_kl(5, 3)
                .with_relabel(relabel);
            let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
            for id in 0..500u32 {
                idx.remove(id).unwrap();
            }
            assert_eq!(idx.dead_rows(), 500);
            assert!(idx.memory_breakdown().dead_bytes > 0);
            let before_total = idx.memory_breakdown().total();
            let stats = idx.compact();
            assert_eq!(stats.dropped_rows, 500);
            assert_eq!(stats.live_rows, 500);
            assert!(stats.reclaimed_bytes > 0);
            idx.check_invariants();
            assert_eq!(idx.dead_rows(), 0);
            assert_eq!(idx.memory_breakdown().dead_bytes, 0);
            assert!(
                idx.memory_breakdown().total() < before_total,
                "relabel={relabel}: total bytes must shrink"
            );
            assert_eq!(idx.len(), 500);
            assert_eq!(idx.id_bound(), 1000, "external id space is preserved");
            assert_eq!(idx.data().len(), 500, "dead dataset rows dropped");
            assert_eq!(idx.store.len(), 500, "dead store rows dropped");
            for id in 0..500u32 {
                assert!(!idx.contains(id));
                assert!(!idx.remove(id).unwrap(), "dead ids stay dead");
                assert!(idx.point(id).is_none());
            }
            for id in 500..1000u32 {
                assert!(idx.contains(id));
                assert_eq!(idx.point(id).unwrap(), data.point(id as usize));
            }
            // ids are still never recycled after a compaction
            let id = idx.insert(&[2.5f32; 16]).unwrap();
            assert_eq!(id, 1000);
            idx.check_invariants();
        }
    }

    #[test]
    fn compact_on_clean_index_is_a_noop() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let stats = idx.compact();
        assert_eq!(stats.dropped_rows, 0);
        assert_eq!(stats.reclaimed_bytes, 0);
        assert!(idx.is_relabeled(), "no-op compaction keeps the layout");
        idx.check_invariants();
    }

    #[test]
    fn compact_preserves_canonical_answers() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(6, 3)
            .with_r_min(0.5);
        let mut never = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let mut compacted = DbLsh::build(Arc::clone(&data), &params).unwrap();
        for id in (0..1000u32).step_by(3) {
            never.remove(id).unwrap();
            compacted.remove(id).unwrap();
        }
        compacted.compact();
        let opts = crate::SearchOptions::default();
        for qi in [1usize, 400, 999] {
            let q = data.point(qi);
            let a = never.search_canonical(q, 8, &opts).unwrap();
            let b = compacted.search_canonical(q, 8, &opts).unwrap();
            assert_eq!(a.neighbors, b.neighbors, "query {qi}");
            assert_eq!(a.stats, b.stats, "query {qi}");
        }
    }

    #[test]
    fn repeated_compactions_through_churn_stay_consistent() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let mut next_remove = 0u32;
        for round in 0..4 {
            for _ in 0..100 {
                idx.remove(next_remove).unwrap();
                next_remove += 2; // 400 removes, all inside the bulk ids
            }
            for i in 0..50 {
                idx.insert(&[round as f32 + i as f32 * 0.01; 16]).unwrap();
            }
            idx.compact();
            idx.check_invariants();
            assert_eq!(idx.dead_rows(), 0);
        }
        assert_eq!(idx.len(), 1000 - 400 + 200);
        assert_eq!(idx.id_bound(), 1000 + 200);
    }
}
