//! Index construction (paper Section IV-B) and dynamic maintenance:
//! project the dataset into `L` K-dimensional spaces — all into one
//! shared [`ProjStore`] row per point — bulk-load one id-only R*-tree per
//! space over the store's column views, and keep the trees in sync under
//! point insertions and removals — the update path the paper's dynamic
//! bucketing makes possible ("DB-LSH naturally supports updates since the
//! R*-tree is a dynamic structure").
//!
//! # Internal vs external id space
//!
//! At bulk build the index (by default) computes a *locality-preserving
//! permutation* of the points — the STR leaf order of tree 0 over the
//! first projected space ([`dblsh_index::str_order`]) — and physically
//! reorders its own copies of the dataset rows and the projection-store
//! rows to match. Every id inside the trees and the store is an
//! **internal** id (a row in the relabeled layout); every id that crosses
//! the public API — [`DbLsh::insert`]'s return value, [`DbLsh::remove`]'s
//! argument, `Neighbor::id` in results — is an **external** id (the
//! caller's original row index), translated through two `u32` maps.
//! Queries therefore read near-sequential memory in leaf scans and
//! candidate verification while callers never observe the permutation:
//! answers are byte-identical to an identity-order build — up to
//! tie-breaking among exact duplicate points, whose identical projections
//! make leaf assignment order-dependent — a property the relabel parity
//! tests assert on distinct-point data.

use std::sync::Arc;

use dblsh_data::{Dataset, DbLshError};
use dblsh_index::{RStarTree, StridedCoords};

use crate::hasher::GaussianHasher;
use crate::params::DbLshParams;
use crate::proj_store::ProjStore;

/// The locality-relabeling state: the internal↔external id maps plus the
/// dataset rows physically reordered into internal order (what candidate
/// verification reads). Present only on relabeled indexes.
#[derive(Debug)]
pub(crate) struct Relabel {
    /// `ext_of_int[internal] = external`; also the build permutation.
    pub(crate) ext_of_int: Vec<u32>,
    /// `int_of_ext[external] = internal` (inverse of `ext_of_int`).
    pub(crate) int_of_ext: Vec<u32>,
    /// Dataset rows in internal order (row `i` = external row
    /// `ext_of_int[i]`), kept in lockstep with the external dataset under
    /// `insert`.
    pub(crate) data: Dataset,
}

/// A built DB-LSH index.
///
/// Construct through [`crate::DbLshBuilder`] (or the lower-level
/// [`DbLsh::build`]); query through [`DbLsh::k_ann`] /
/// [`DbLsh::search_with`] / [`DbLsh::search_batch`]; maintain dynamically
/// through [`DbLsh::insert`] and [`DbLsh::remove`].
///
/// Internally the index is **flat**: every point's `L` projections live
/// in one row of the shared [`ProjStore`], and the `L` R*-trees store
/// only `u32` ids, resolving coordinates through per-tree column views of
/// the store. See the [`crate::proj_store`] module docs for the layout.
///
/// Removed points are *tombstoned*: their rows stay in the backing
/// [`Dataset`] and in the projection store (ids are stable row indexes)
/// but they are deleted from all `L` trees, so no query ever returns
/// them. [`DbLsh::len`] counts live points only.
///
/// All ids on this public surface — arguments to [`DbLsh::remove`] /
/// [`DbLsh::contains`], return values of [`DbLsh::insert`], and
/// `Neighbor::id` in every query result — are **external** ids: row
/// indexes into the dataset exactly as the caller supplied it (see
/// [`DbLsh::data`]). The locality-relabeled internal id space (module
/// docs) never leaks.
#[derive(Debug)]
pub struct DbLsh {
    pub(crate) params: DbLshParams,
    pub(crate) hasher: GaussianHasher,
    pub(crate) trees: Vec<RStarTree>,
    pub(crate) store: ProjStore,
    pub(crate) data: Arc<Dataset>,
    /// Internal↔external id maps plus the reordered verification rows;
    /// `None` for identity-order builds (internal id == external id).
    pub(crate) relabel: Option<Relabel>,
    /// Tombstone bitset over *external* dataset rows (1 = removed).
    removed: Vec<u64>,
    /// Number of live (non-tombstoned) points.
    live: usize,
}

impl DbLsh {
    /// Build the index: `L` projections of the full dataset written into
    /// the shared projection store (row-parallel), a locality-preserving
    /// relabel of the rows (unless [`DbLshParams::relabel`] is off), then
    /// one bulk-loaded R*-tree per space (tree-parallel) over the store's
    /// column views.
    ///
    /// Fails with [`DbLshError::EmptyDataset`] on an empty dataset and
    /// [`DbLshError::InvalidParameter`] on malformed parameters.
    pub fn build(data: Arc<Dataset>, params: &DbLshParams) -> Result<Self, DbLshError> {
        params.validate()?;
        if data.is_empty() {
            return Err(DbLshError::EmptyDataset);
        }
        if data.len() > u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let (l, k) = (params.l, params.k);
        let hasher = GaussianHasher::new(data.dim(), k, l, params.seed);
        let n = data.len();
        let ids: Vec<u32> = (0..n as u32).collect();

        // Phase 1: fill the projection rows (external order) row-parallel — each worker projects a
        // contiguous run of points into all L column windows of its rows
        // (accumulating in f64, storing at f32).
        let width = l * k;
        let mut flat = vec![0.0f32; n * width];
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .clamp(1, n);
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, chunk) in flat.chunks_mut(rows_per * width).enumerate() {
                let hasher = &hasher;
                let data = &data;
                s.spawn(move || {
                    let mut scratch = vec![0.0f64; k];
                    for (r, row) in chunk.chunks_exact_mut(width).enumerate() {
                        let point = data.point(t * rows_per + r);
                        for i in 0..l {
                            hasher.project_into(i, point, &mut scratch);
                            for (dst, &v) in row[i * k..(i + 1) * k].iter_mut().zip(&scratch) {
                                *dst = v as f32;
                            }
                        }
                    }
                });
            }
        });
        // Phase 2: locality-aware relabeling. The STR leaf order of tree 0
        // over the first projected space is a locality-preserving
        // permutation: relabeled to it, every leaf of every future tree-0
        // bulk load is a contiguous run of row ids, and the other trees'
        // leaves (correlated through the shared Gaussian family) stay far
        // more local than insertion order. Both the projection rows and
        // the verification rows are physically reordered so leaf scans
        // and exact-distance verification read near-sequential memory.
        let relabel = if params.relabel {
            let view0 = StridedCoords::new(&flat, width, 0, k);
            let perm = dblsh_index::str_order(&view0, &ids, params.node_capacity);
            let mut permuted = vec![0.0f32; flat.len()];
            for (int, &ext) in perm.iter().enumerate() {
                let src = ext as usize * width;
                permuted[int * width..(int + 1) * width].copy_from_slice(&flat[src..src + width]);
            }
            flat = permuted;
            let mut int_of_ext = vec![0u32; n];
            for (int, &ext) in perm.iter().enumerate() {
                int_of_ext[ext as usize] = int as u32;
            }
            Some(Relabel {
                data: data.reordered(&perm),
                ext_of_int: perm,
                int_of_ext,
            })
        } else {
            None
        };
        let store = ProjStore::from_flat(l, k, flat);

        // Phase 3: bulk-load the L trees in parallel; each reads only its
        // own column view of the (now immutable) store.
        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(l, || None);
        let cap = params.node_capacity;
        std::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let store = &store;
                let ids = &ids;
                s.spawn(move || {
                    *slot = Some(RStarTree::bulk_load_with_capacity(&store.view(i), ids, cap));
                });
            }
        });

        let live = data.len();
        Ok(DbLsh {
            params: params.clone(),
            hasher,
            trees: trees.into_iter().map(|t| t.expect("tree built")).collect(),
            store,
            data,
            relabel,
            removed: vec![0; live.div_ceil(64)],
            live,
        })
    }

    /// Map an internal id (tree/store row) to the caller-visible external
    /// id. Identity on non-relabeled indexes.
    #[inline]
    pub(crate) fn to_ext(&self, internal: u32) -> u32 {
        match &self.relabel {
            Some(r) => r.ext_of_int[internal as usize],
            None => internal,
        }
    }

    /// Map an external id to the internal id the trees and the store use.
    #[inline]
    pub(crate) fn to_int(&self, external: u32) -> u32 {
        match &self.relabel {
            Some(r) => r.int_of_ext[external as usize],
            None => external,
        }
    }

    /// The dataset rows in *internal* order — what candidate verification
    /// reads. On relabeled indexes this is the physically reordered copy;
    /// otherwise the external dataset itself.
    #[inline]
    pub(crate) fn verify_data(&self) -> &Dataset {
        match &self.relabel {
            Some(r) => &r.data,
            None => &self.data,
        }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The backing dataset in the caller's (external) row order: row `i`
    /// is the point whose external id is `i`, exactly as supplied at
    /// build time plus any [`DbLsh::insert`]ed rows. Rows of removed
    /// points are still present (ids are stable row indexes); see
    /// [`DbLsh::contains`]. The locality-relabeled internal layout is not
    /// observable here.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Whether this index was built with locality-aware id relabeling
    /// (see the module docs and [`DbLshParams::relabel`]).
    pub fn is_relabeled(&self) -> bool {
        self.relabel.is_some()
    }

    /// The projection family.
    pub fn hasher(&self) -> &GaussianHasher {
        &self.hasher
    }

    /// The shared projected-point store backing all `L` trees.
    pub fn proj_store(&self) -> &ProjStore {
        &self.store
    }

    /// Per-tree structure statistics (node counts, entry counts, arena
    /// bytes) — the tree side of [`DbLsh::memory_breakdown`].
    pub fn tree_stats(&self) -> Vec<dblsh_index::TreeStats> {
        self.trees.iter().map(|t| t.stats()).collect()
    }

    /// Number of live indexed points (insertions minus removals).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` names a live point of this index.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.data.len() && !self.is_removed(id)
    }

    #[inline]
    pub(crate) fn is_removed(&self, id: u32) -> bool {
        self.removed[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    /// Insert one point: append its row to the dataset and the projection
    /// store, then insert the id into every tree (R\* insertion with
    /// forced reinsertion). Returns the new point's id — its row index in
    /// [`DbLsh::data`].
    ///
    /// If other `Arc` handles to the dataset are alive, the first insert
    /// after a build clones the backing matrix (copy-on-write); handles
    /// held by callers keep observing the pre-insert dataset.
    pub fn insert(&mut self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.data.dim() {
            return Err(DbLshError::DimensionMismatch {
                expected: self.data.dim(),
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        if self.data.len() >= u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let id = self.data.len() as u32;
        Arc::make_mut(&mut self.data).try_push(point)?;
        // Appended rows land at the same index in both id spaces (the
        // external dataset, the internal verification rows and the store
        // grow in lockstep), so the maps extend with a fixed point.
        if let Some(rl) = &mut self.relabel {
            rl.data
                .try_push(point)
                .expect("validated point rejected by internal rows");
            rl.ext_of_int.push(id);
            rl.int_of_ext.push(id);
        }
        let store_id = self.store.push_projected(&self.hasher, point);
        debug_assert_eq!(store_id, id, "store rows out of step with dataset rows");
        let store = &self.store;
        for (i, tree) in self.trees.iter_mut().enumerate() {
            tree.insert(&store.view(i), store_id);
        }
        if self.removed.len() * 64 <= id as usize {
            self.removed.push(0);
        }
        self.live += 1;
        Ok(id)
    }

    /// Remove the point `id` from all `L` trees, tombstoning its dataset
    /// row. Returns `Ok(true)` if the point was live, `Ok(false)` if it
    /// had already been removed, and `Err(UnknownId)` if `id` never named
    /// a point of this index.
    ///
    /// The removal descends each tree guided by the id's stored
    /// projection row — no re-projection work is done.
    pub fn remove(&mut self, id: u32) -> Result<bool, DbLshError> {
        if id as usize >= self.data.len() {
            return Err(DbLshError::UnknownId { id });
        }
        if self.is_removed(id) {
            return Ok(false);
        }
        let internal = self.to_int(id);
        let store = &self.store;
        for (i, tree) in self.trees.iter_mut().enumerate() {
            let found = tree.remove(&store.view(i), internal);
            debug_assert!(
                found,
                "live id {id} (internal {internal}) missing from tree {i}"
            );
        }
        self.removed[(id / 64) as usize] |= 1u64 << (id % 64);
        self.live -= 1;
        Ok(true)
    }

    /// Verify cross-structure invariants: the store mirrors the dataset
    /// row for row, the relabel maps are inverse permutations whose
    /// reordered rows match the external dataset, every tree holds
    /// exactly the live (internal) ids, at exactly the coordinates the
    /// hasher assigns them, and satisfies its own R\* invariants. Panics
    /// with a description on violation. Exposed for tests and debugging;
    /// cost is `O(L * n * (K * d + log n))`.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.store.len(),
            self.data.len(),
            "projection store out of sync with dataset"
        );
        if let Some(rl) = &self.relabel {
            assert_eq!(rl.data.len(), self.data.len(), "internal rows out of sync");
            assert_eq!(rl.ext_of_int.len(), self.data.len());
            assert_eq!(rl.int_of_ext.len(), self.data.len());
            for int in 0..self.data.len() {
                let ext = rl.ext_of_int[int];
                assert_eq!(
                    rl.int_of_ext[ext as usize], int as u32,
                    "id maps are not inverse at internal {int}"
                );
                assert_eq!(
                    rl.data.point(int),
                    self.data.point(ext as usize),
                    "internal row {int} does not mirror external row {ext}"
                );
            }
        }
        let live_ids: Vec<u32> = {
            let mut v: Vec<u32> = (0..self.data.len() as u32)
                .filter(|&ext| !self.is_removed(ext))
                .map(|ext| self.to_int(ext))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(live_ids.len(), self.live, "live counter out of sync");
        let verify = self.verify_data();
        let mut proj = vec![0.0f64; self.params.k];
        for (i, tree) in self.trees.iter().enumerate() {
            let view = self.store.view(i);
            tree.check_invariants(&view);
            assert_eq!(tree.len(), self.live, "tree {i} size != live count");
            let mut ids: Vec<u32> = tree.iter_points(&view).map(|(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, live_ids, "tree {i} does not hold exactly the live ids");
            for (id, coords) in tree.iter_points(&view) {
                self.hasher
                    .project_into(i, verify.point(id as usize), &mut proj);
                assert!(
                    coords.iter().zip(&proj).all(|(&c, &p)| c == p as f32),
                    "tree {i} stores internal id {id} at stale coordinates"
                );
            }
        }
    }

    /// Estimate a radius-ladder start from the data: the median
    /// nearest-neighbor distance within an evenly spaced sample, divided
    /// by `c^4`. Starting the ladder below the true NN radius only costs
    /// a few empty probe rounds (each `O(L log n)`); starting above it
    /// makes the very first `(r, c)`-NN probe accept points within `c*r`
    /// that are far beyond the real neighbors, which destroys recall —
    /// so the estimate is deliberately biased low.
    pub fn estimate_r_min(data: &Dataset, params: &DbLshParams, sample: usize) -> f64 {
        let n = data.len();
        if n < 2 {
            return params.r_min;
        }
        // Exact NN distance of up to 16 evenly spaced probes against the
        // *full* dataset. Sampling both sides instead would overestimate
        // badly on clustered data (a sparse sample sees inter-cluster
        // distances, not NN distances). Cost: <= 16 linear scans, once,
        // at build time.
        let probes = sample.clamp(1, 16).min(n);
        let step = (n / probes).max(1);
        let mut nn_dists: Vec<f64> = Vec::with_capacity(probes);
        for i in (0..n).step_by(step).take(probes) {
            let p = data.point(i);
            let mut best = f64::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = dblsh_data::dataset::sq_dist(p, data.point(j)) as f64;
                if d > 0.0 && d < best {
                    best = d;
                }
            }
            if best.is_finite() {
                nn_dists.push(best.sqrt());
            }
        }
        if nn_dists.is_empty() {
            return params.r_min;
        }
        nn_dists.sort_by(f64::total_cmp);
        let median = nn_dists[nn_dists.len() / 2];
        (median / params.c.powi(4)).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small_data() -> Arc<Dataset> {
        Arc::new(gaussian_mixture(&MixtureConfig {
            n: 1000,
            dim: 16,
            clusters: 10,
            ..Default::default()
        }))
    }

    #[test]
    fn build_creates_l_trees_with_all_points() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(6, 3);
        let idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(idx.trees.len(), 3);
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 1000);
            assert_eq!(t.dim(), 6);
            t.check_invariants(&idx.store.view(i));
        }
        assert_eq!(idx.store.len(), 1000);
        assert_eq!(idx.store.row_width(), 18);
        assert_eq!(idx.len(), 1000);
        assert!(!idx.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let a = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let b = DbLsh::build(Arc::clone(&data), &params).unwrap();
        // same projections => identical stores and same tree MBRs
        assert_eq!(a.store.row(0), b.store.row(0));
        for i in 0..a.trees.len() {
            assert_eq!(
                a.trees[i].mbr(&a.store.view(i)),
                b.trees[i].mbr(&b.store.view(i))
            );
        }
    }

    #[test]
    fn estimate_r_min_is_positive_and_modest() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len());
        let r = DbLsh::estimate_r_min(&data, &params, 100);
        assert!(r > 0.0);
        assert!(r < 1e4);
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = Arc::new(Dataset::empty(8));
        let err = DbLsh::build(data, &DbLshParams::paper_defaults(10)).unwrap_err();
        assert_eq!(err, DbLshError::EmptyDataset);
    }

    #[test]
    fn invalid_params_rejected_not_panicking() {
        let data = small_data();
        let err = DbLsh::build(
            Arc::clone(&data),
            &DbLshParams::paper_defaults(1000).with_c(0.5),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DbLshError::InvalidParameter { param: "c", .. }
        ));
    }

    #[test]
    fn insert_grows_every_tree_and_the_store() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let p = vec![0.25f32; 16];
        let id = idx.insert(&p).unwrap();
        assert_eq!(id, 1000);
        assert_eq!(idx.len(), 1001);
        assert_eq!(idx.store.len(), 1001);
        assert!(idx.contains(id));
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 1001);
            t.check_invariants(&idx.store.view(i));
        }
        // the backing dataset gained the row
        assert_eq!(idx.data().point(1000), &p[..]);
    }

    #[test]
    fn insert_validates_input() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert_eq!(
            idx.insert(&[1.0; 3]).unwrap_err(),
            DbLshError::DimensionMismatch {
                expected: 16,
                got: 3
            }
        );
        assert_eq!(
            idx.insert(&[f32::NAN; 16]).unwrap_err(),
            DbLshError::NonFiniteCoordinate
        );
        assert_eq!(idx.len(), 1000, "failed inserts must not change the index");
        assert_eq!(idx.store.len(), 1000);
    }

    #[test]
    fn remove_tombstones_and_shrinks_trees() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(5, 3);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        assert!(idx.remove(17).unwrap());
        assert!(!idx.remove(17).unwrap(), "second removal reports false");
        assert_eq!(
            idx.remove(5000).unwrap_err(),
            DbLshError::UnknownId { id: 5000 }
        );
        assert_eq!(idx.len(), 999);
        assert!(!idx.contains(17));
        // the store keeps the tombstoned row (ids are stable)
        assert_eq!(idx.store.len(), 1000);
        for (i, t) in idx.trees.iter().enumerate() {
            assert_eq!(t.len(), 999);
            t.check_invariants(&idx.store.view(i));
        }
    }

    #[test]
    fn insert_after_remove_uses_fresh_id() {
        let data = small_data();
        let params = DbLshParams::paper_defaults(data.len()).with_kl(4, 2);
        let mut idx = DbLsh::build(Arc::clone(&data), &params).unwrap();
        idx.remove(0).unwrap();
        let id = idx.insert(&[1.5f32; 16]).unwrap();
        assert_eq!(id, 1000, "tombstoned rows are never recycled");
        assert!(idx.contains(id));
        assert!(!idx.contains(0));
        assert_eq!(idx.len(), 1000);
    }
}
