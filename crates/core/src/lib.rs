//! # DB-LSH — Locality-Sensitive Hashing with Query-based Dynamic Bucketing
//!
//! Rust implementation of Tian, Zhao, Zhou, *"DB-LSH: Locality-Sensitive
//! Hashing with Query-based Dynamic Bucketing"*, ICDE 2022.
//!
//! DB-LSH keeps the classic `(K, L)`-index *hashing* step — `L` compound
//! hashes, each of `K` Gaussian projections (Eq. 6/7) — but replaces the
//! fixed-width buckets of E2LSH with **query-centric dynamic buckets**:
//! every projected K-dimensional point set is stored in an R*-tree, and a
//! bucket is materialized at query time as the hypercubic window
//! `W(G_i(q), w0 r)` (Eq. 8), answered by an index window query.
//!
//! A `c`-ANN query (Algorithm 2) issues `(r, c)`-NN probes (Algorithm 1)
//! on the radius ladder `r = r_min, c r_min, c^2 r_min, ...`, enlarging the
//! window width as `w = w0 r`, and stops as soon as either a point within
//! `c r` is verified or `2tL + 1` candidates have been checked. With
//! `K = log_{1/p2}(n/t)` and `L = (n/t)^{rho*}` this answers a `c^2`-ANN
//! query with probability at least `1/2 - 1/e` in `O(n^{rho*} d log n)`
//! time (Theorems 1 and 2), where `rho* <= 1/c^alpha` (Lemma 3).
//!
//! ## Quick start
//!
//! ```
//! use dblsh_core::{DbLsh, DbLshParams};
//! use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
//! use std::sync::Arc;
//!
//! let data = Arc::new(gaussian_mixture(&MixtureConfig {
//!     n: 2000, dim: 24, clusters: 20, ..Default::default()
//! }));
//! let params = DbLshParams::paper_defaults(data.len());
//! let index = DbLsh::build(Arc::clone(&data), &params);
//! let result = index.k_ann(data.point(0), 10);
//! assert!(!result.neighbors.is_empty());
//! ```

mod hasher;
mod index;
mod params;
mod query;

pub use hasher::GaussianHasher;
pub use index::DbLsh;
pub use params::DbLshParams;
