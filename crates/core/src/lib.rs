//! # DB-LSH — Locality-Sensitive Hashing with Query-based Dynamic Bucketing
//!
//! Rust implementation of Tian, Zhao, Zhou, *"DB-LSH: Locality-Sensitive
//! Hashing with Query-based Dynamic Bucketing"*, ICDE 2022.
//!
//! DB-LSH keeps the classic `(K, L)`-index *hashing* step — `L` compound
//! hashes, each of `K` Gaussian projections (Eq. 6/7) — but replaces the
//! fixed-width buckets of E2LSH with **query-centric dynamic buckets**:
//! every projected K-dimensional point set is stored in an R*-tree, and a
//! bucket is materialized at query time as the hypercubic window
//! `W(G_i(q), w0 r)` (Eq. 8), answered by an index window query.
//!
//! A `c`-ANN query (Algorithm 2) issues `(r, c)`-NN probes (Algorithm 1)
//! on the radius ladder `r = r_min, c r_min, c^2 r_min, ...`, enlarging the
//! window width as `w = w0 r`, and stops as soon as either a point within
//! `c r` is verified or `2tL + 1` candidates have been checked. With
//! `K = log_{1/p2}(n/t)` and `L = (n/t)^{rho*}` this answers a `c^2`-ANN
//! query with probability at least `1/2 - 1/e` in `O(n^{rho*} d log n)`
//! time (Theorems 1 and 2), where `rho* <= 1/c^alpha` (Lemma 3).
//!
//! Because buckets are materialized at query time over *dynamic* R*-trees,
//! the index is updatable: [`DbLsh::insert`] and [`DbLsh::remove`] keep
//! all `L` trees in sync, per-query tuning goes through [`SearchOptions`],
//! and [`DbLsh::search_batch`] fans query rows across threads.
//!
//! Internally the index keeps a **locality-relabeled** layout: points are
//! permuted to tree-0 STR leaf order at bulk build so leaf scans and the
//! blocked candidate-verification stage read near-sequential memory. The
//! permutation is invisible at this API — every id accepted or returned
//! here is the caller's original row index, and answers are byte-identical
//! to an identity-order build, up to tie-breaking among exact duplicate
//! points (see the [`index`-module docs](DbLsh) and
//! [`DbLshParams::relabel`]).
//!
//! ## Quick start
//!
//! ```
//! use dblsh_core::DbLshBuilder;
//! use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig {
//!     n: 2000, dim: 24, clusters: 20, ..Default::default()
//! });
//! let mut index = DbLshBuilder::new()
//!     .auto_r_min()           // data-driven radius-ladder start
//!     .build(data)            // Result: bad input is Err, never a panic
//!     .expect("valid configuration");
//!
//! let query = index.data().point(0).to_vec();
//! let top10 = index.k_ann(&query, 10).expect("well-formed query");
//! assert!(!top10.neighbors.is_empty());
//!
//! // The index is dynamic:
//! let id = index.insert(&vec![1.0; 24]).unwrap();
//! assert!(index.contains(id));
//! index.remove(id).unwrap();
//! assert!(!index.contains(id));
//! ```

mod builder;
mod hasher;
mod index;
mod params;
pub mod proj_store;
mod query;
mod snapshot;

pub use builder::DbLshBuilder;
pub use hasher::GaussianHasher;
pub use index::{CompactionStats, DbLsh};
pub use params::DbLshParams;
pub use proj_store::ProjStore;
pub use query::{
    CanonicalLadder, LadderPlan, LadderProber, MemoryBreakdown, ProberScratch, SearchOptions,
};
pub use snapshot::INDEX_SNAPSHOT_KIND;

// The workspace error type originates in `dblsh_data` (the crate that
// defines `AnnIndex`); re-exported here so `dblsh_core` users need not
// name that crate.
pub use dblsh_data::DbLshError;
