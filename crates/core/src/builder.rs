//! The builder-first construction surface: chainable configuration,
//! data-dependent defaults resolved at build time, and fallible `build`.
//!
//! ```
//! use dblsh_core::DbLshBuilder;
//! use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig {
//!     n: 2000, dim: 24, clusters: 20, ..Default::default()
//! });
//! let index = DbLshBuilder::new()
//!     .k(8)
//!     .l(4)
//!     .auto_r_min()
//!     .build(data)
//!     .expect("valid configuration and data");
//! let result = index.k_ann(index.data().point(0), 10).expect("well-formed query");
//! assert!(!result.neighbors.is_empty());
//! ```

use std::sync::Arc;

use dblsh_data::{Dataset, DbLshError};

use crate::index::DbLsh;
use crate::params::DbLshParams;

/// How the radius-ladder start is chosen at build time.
#[derive(Debug, Clone, PartialEq)]
enum RMinChoice {
    /// The [`DbLshParams::r_min`] default (1.0) or an explicit value.
    Fixed(Option<f64>),
    /// Estimate from the data via [`DbLsh::estimate_r_min`] with the
    /// given probe-sample size.
    Auto { sample: usize },
}

/// Chainable configuration for a [`DbLsh`] index.
///
/// Every knob is optional: unset knobs resolve at [`DbLshBuilder::build`]
/// against the dataset (the paper's defaults are cardinality-dependent —
/// `K = 12` beyond one million points, else `K = 10`). All validation is
/// deferred to `build`, which reports the first violated constraint as a
/// [`DbLshError`] and never panics.
#[derive(Debug, Clone, Default)]
pub struct DbLshBuilder {
    c: Option<f64>,
    w0: Option<f64>,
    k: Option<usize>,
    l: Option<usize>,
    t: Option<usize>,
    r_min: RMinBuilderState,
    max_rounds: Option<usize>,
    node_capacity: Option<usize>,
    seed: Option<u64>,
    relabel: Option<bool>,
}

#[derive(Debug, Clone, PartialEq)]
struct RMinBuilderState(RMinChoice);

impl Default for RMinBuilderState {
    fn default() -> Self {
        RMinBuilderState(RMinChoice::Fixed(None))
    }
}

impl DbLshBuilder {
    /// Start from the paper's defaults (resolved against the dataset at
    /// build time).
    pub fn new() -> Self {
        DbLshBuilder::default()
    }

    /// Approximation ratio `c > 1` (default 1.5). Re-couples the bucket
    /// width to `w0 = 4 c^2`; call [`w0`] *after* this to decouple.
    ///
    /// [`w0`]: DbLshBuilder::w0
    pub fn c(mut self, c: f64) -> Self {
        self.c = Some(c);
        self.w0 = None;
        self
    }

    /// Base bucket width `w0` (default `4 c^2`, coupled to `c` until
    /// this is called).
    pub fn w0(mut self, w0: f64) -> Self {
        self.w0 = Some(w0);
        self
    }

    /// Hash functions per compound hash, i.e. the projected
    /// dimensionality `K` (paper default: 10, or 12 beyond 1M points).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Number of compound hashes / R*-trees `L` (paper default 5).
    pub fn l(mut self, l: usize) -> Self {
        self.l = Some(l);
        self
    }

    /// Candidate-budget constant `t` of Remark 2 (default 64).
    pub fn t(mut self, t: usize) -> Self {
        self.t = Some(t);
        self
    }

    /// Fixed radius-ladder start (default 1.0). Mutually exclusive with
    /// [`DbLshBuilder::auto_r_min`]; the last call wins.
    pub fn r_min(mut self, r_min: f64) -> Self {
        self.r_min = RMinBuilderState(RMinChoice::Fixed(Some(r_min)));
        self
    }

    /// Estimate the radius-ladder start from the data at build time
    /// (median sampled NN distance over 16 probes, biased low by `c^4` —
    /// see [`DbLsh::estimate_r_min`]).
    pub fn auto_r_min(mut self) -> Self {
        self.r_min = RMinBuilderState(RMinChoice::Auto { sample: 16 });
        self
    }

    /// [`DbLshBuilder::auto_r_min`] with an explicit probe-sample size
    /// (clamped to 1..=16 probes).
    pub fn auto_r_min_with_sample(mut self, sample: usize) -> Self {
        self.r_min = RMinBuilderState(RMinChoice::Auto { sample });
        self
    }

    /// Safety cap on ladder rounds (default 64).
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// R*-tree node capacity (default 32, minimum 4).
    pub fn node_capacity(mut self, node_capacity: usize) -> Self {
        self.node_capacity = Some(node_capacity);
        self
    }

    /// Seed for the Gaussian projection family (builds are deterministic
    /// in the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Enable or disable locality-aware id relabeling at bulk build
    /// (default enabled; see [`crate::DbLshParams::relabel`]). Returned
    /// ids and answers are identical either way (up to duplicate-point
    /// tie-breaking); disabling trades
    /// query-time memory locality for a smaller build footprint.
    pub fn relabel(mut self, relabel: bool) -> Self {
        self.relabel = Some(relabel);
        self
    }

    /// Resolve the configuration against a dataset of `n` points without
    /// building — useful for inspecting what `build` would use.
    pub fn resolve_params(&self, n: usize) -> DbLshParams {
        let mut p = DbLshParams::paper_defaults(n);
        if let Some(c) = self.c {
            p.c = c;
            p.w0 = 4.0 * c * c;
        }
        if let Some(w0) = self.w0 {
            p.w0 = w0;
        }
        if let Some(k) = self.k {
            p.k = k;
        }
        if let Some(l) = self.l {
            p.l = l;
        }
        if let Some(t) = self.t {
            p.t = t;
        }
        if let RMinChoice::Fixed(Some(r)) = self.r_min.0 {
            p.r_min = r;
        }
        if let Some(m) = self.max_rounds {
            p.max_rounds = m;
        }
        if let Some(cap) = self.node_capacity {
            p.node_capacity = cap;
        }
        if let Some(seed) = self.seed {
            p.seed = seed;
        }
        if let Some(relabel) = self.relabel {
            p.relabel = relabel;
        }
        p
    }

    /// Resolve the configuration against an actual dataset, *including*
    /// a requested [`DbLshBuilder::auto_r_min`] estimate, without
    /// building. This is what a sharded serving layer (`dblsh-serve`)
    /// calls once over the full dataset before partitioning, so every
    /// shard is built with the same fully resolved parameters (same
    /// projection family, same ladder start) as an unsharded index
    /// would be.
    pub fn resolve_params_for(&self, data: &Dataset) -> Result<DbLshParams, DbLshError> {
        let mut params = self.resolve_params(data.len());
        params.validate()?;
        if data.is_empty() {
            return Err(DbLshError::EmptyDataset);
        }
        if let RMinChoice::Auto { sample } = self.r_min.0 {
            if sample == 0 {
                return Err(DbLshError::invalid(
                    "r_min sample",
                    "auto estimation needs at least 1 probe",
                ));
            }
            params.r_min = DbLsh::estimate_r_min(data, &params, sample);
        }
        Ok(params)
    }

    /// Build the index over `data` (`Dataset` or `Arc<Dataset>`).
    ///
    /// Fails — never panics — on an empty dataset, a non-positive or
    /// non-finite knob, `k`/`l`/`t` of zero, or a dataset too large for
    /// `u32` ids.
    pub fn build(self, data: impl Into<Arc<Dataset>>) -> Result<DbLsh, DbLshError> {
        let data: Arc<Dataset> = data.into();
        let params = self.resolve_params_for(&data)?;
        DbLsh::build(data, &params)
    }
}

/// Start a builder from existing params (migration path for call sites
/// holding a [`DbLshParams`]).
impl From<DbLshParams> for DbLshBuilder {
    fn from(p: DbLshParams) -> Self {
        DbLshBuilder {
            c: Some(p.c),
            // A width at the coupled default stays coupled, so a later
            // .c(x) recomputes it instead of pinning the stale value.
            w0: if p.w0 == 4.0 * p.c * p.c {
                None
            } else {
                Some(p.w0)
            },
            k: Some(p.k),
            l: Some(p.l),
            t: Some(p.t),
            r_min: RMinBuilderState(RMinChoice::Fixed(Some(p.r_min))),
            max_rounds: Some(p.max_rounds),
            node_capacity: Some(p.node_capacity),
            seed: Some(p.seed),
            relabel: Some(p.relabel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small() -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n: 600,
            dim: 12,
            clusters: 8,
            ..Default::default()
        })
    }

    #[test]
    fn defaults_match_paper() {
        let p = DbLshBuilder::new().resolve_params(60_000);
        assert_eq!(p, DbLshParams::paper_defaults(60_000));
        let p_big = DbLshBuilder::new().resolve_params(2_000_000);
        assert_eq!(p_big.k, 12);
    }

    #[test]
    fn chainable_overrides_apply() {
        let idx = DbLshBuilder::new()
            .c(2.0)
            .k(6)
            .l(3)
            .t(16)
            .r_min(0.25)
            .max_rounds(32)
            .node_capacity(16)
            .seed(99)
            .build(small())
            .unwrap();
        let p = idx.params();
        assert_eq!(p.c, 2.0);
        assert_eq!(p.w0, 16.0); // coupled to c
        assert_eq!(p.k, 6);
        assert_eq!(p.l, 3);
        assert_eq!(p.t, 16);
        assert_eq!(p.r_min, 0.25);
        assert_eq!(p.max_rounds, 32);
        assert_eq!(p.node_capacity, 16);
        assert_eq!(p.seed, 99);
    }

    #[test]
    fn w0_override_decouples_from_c() {
        let p = DbLshBuilder::new().c(2.0).w0(5.0).resolve_params(100);
        assert_eq!(p.w0, 5.0);
        // ...but a later c() re-couples
        let p = DbLshBuilder::new().w0(5.0).c(2.0).resolve_params(100);
        assert_eq!(p.w0, 16.0);
    }

    #[test]
    fn from_params_then_c_recouples_w0() {
        // migration path: params at the coupled default, then c changed
        let base = DbLshParams::paper_defaults(1000);
        let p = DbLshBuilder::from(base).c(3.0).resolve_params(1000);
        assert_eq!(p.w0, 36.0, "stale coupled width must not survive c()");
        // an explicitly decoupled width does survive From
        let odd = DbLshParams::paper_defaults(1000).with_w0(5.0);
        let p = DbLshBuilder::from(odd).resolve_params(1000);
        assert_eq!(p.w0, 5.0);
    }

    #[test]
    fn empty_dataset_is_err() {
        let err = DbLshBuilder::new().build(Dataset::empty(4)).unwrap_err();
        assert_eq!(err, DbLshError::EmptyDataset);
    }

    #[test]
    fn invalid_params_are_err_not_panic() {
        let data = Arc::new(small());
        for (builder, knob) in [
            (DbLshBuilder::new().c(1.0), "c"),
            (DbLshBuilder::new().c(f64::NAN), "c"),
            (DbLshBuilder::new().w0(-1.0), "w0"),
            (DbLshBuilder::new().k(0), "k"),
            (DbLshBuilder::new().l(0), "l"),
            (DbLshBuilder::new().t(0), "t"),
            (DbLshBuilder::new().r_min(0.0), "r_min"),
            (DbLshBuilder::new().max_rounds(0), "max_rounds"),
            (DbLshBuilder::new().node_capacity(2), "node_capacity"),
        ] {
            match builder.build(Arc::clone(&data)) {
                Err(DbLshError::InvalidParameter { param, .. }) => assert_eq!(param, knob),
                other => panic!("{knob}: expected InvalidParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn auto_r_min_estimates_from_data() {
        let data = small();
        let fixed = DbLshBuilder::new().build(data.clone()).unwrap();
        assert_eq!(fixed.params().r_min, 1.0);
        let auto = DbLshBuilder::new().auto_r_min().build(data).unwrap();
        assert_ne!(auto.params().r_min, 1.0);
        assert!(auto.params().r_min > 0.0);
    }

    #[test]
    fn accepts_dataset_and_arc() {
        let d = small();
        let arc = Arc::new(d.clone());
        assert!(DbLshBuilder::new().k(4).l(2).build(d).is_ok());
        assert!(DbLshBuilder::new().k(4).l(2).build(arc).is_ok());
    }

    #[test]
    fn from_params_round_trips() {
        let p = DbLshParams::paper_defaults(1000).with_kl(7, 3).with_seed(5);
        let b: DbLshBuilder = p.clone().into();
        assert_eq!(b.resolve_params(1000), p);
    }

    #[test]
    fn builder_build_equals_direct_build() {
        let data = Arc::new(small());
        let p = DbLshParams::paper_defaults(data.len()).with_kl(5, 2);
        let a = DbLsh::build(Arc::clone(&data), &p).unwrap();
        let b = DbLshBuilder::from(p).build(Arc::clone(&data)).unwrap();
        let q = data.point(3);
        assert_eq!(a.k_ann(q, 5).unwrap().ids(), b.k_ann(q, 5).unwrap().ids());
    }
}
