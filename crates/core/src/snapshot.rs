//! Index persistence: [`DbLsh::save`] / [`DbLsh::load`] over the
//! versioned snapshot container of [`dblsh_data::io`].
//!
//! # What is stored vs rebuilt
//!
//! A snapshot stores exactly the state that cannot be recomputed
//! cheaply or deterministically enough:
//!
//! * the parameters (the Gaussian family is *rebuilt* from its seed —
//!   projections are deterministic in it, so the matrix itself never
//!   hits disk);
//! * the dataset rows (ascending by external id — the only copy; the
//!   relabeled verification order is *rebuilt* by permuting these rows
//!   through the id maps);
//! * the projection store, bit-exact (recomputing it would cost the
//!   full `n x L x K x d` projection pass of a build — the single most
//!   expensive build phase);
//! * the id maps and the tombstone bitset (pure state, not derivable);
//! * the `L` R*-trees are **rebuilt** from the restored store via the
//!   bulk-load path. Tree structure is an implementation detail the
//!   canonical query mode is independent of, so persisting arenas would
//!   buy nothing but format surface: canonical answers
//!   ([`DbLsh::search_canonical`]) are byte-identical across
//!   save/load, while classic-mode leaf boundaries may legitimately
//!   move (same candidate pools, different batch cut points).
//!
//! # Error discipline
//!
//! Loading shares `read_dim_header`'s strictness: every way a file can
//! be wrong — truncation anywhere, flipped bits (checksummed), version
//! or kind mismatches, sections whose decoded contents violate an index
//! invariant (non-inverse maps, phantom tombstones, non-finite
//! coordinates, count mismatches) — surfaces as a typed
//! [`DbLshError`], never a panic and never a silently wrong index.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use dblsh_data::io::{SectionBuf, SnapshotReader, SnapshotWriter};
use dblsh_data::{Dataset, DbLshError, Sq8Grid, Sq8Store};
use dblsh_index::RStarTree;

use crate::hasher::GaussianHasher;
use crate::index::{DbLsh, IdMaps, DEAD};
use crate::params::DbLshParams;
use crate::proj_store::ProjStore;

/// Snapshot kind tag for a single [`DbLsh`] index.
pub const INDEX_SNAPSHOT_KIND: [u8; 4] = *b"INDX";

const TAG_PARAMS: [u8; 4] = *b"PRMS";
const TAG_META: [u8; 4] = *b"META";
const TAG_DATA: [u8; 4] = *b"DATA";
const TAG_PROJ: [u8; 4] = *b"PROJ";
const TAG_MAPS: [u8; 4] = *b"MAPS";
const TAG_TOMB: [u8; 4] = *b"TOMB";
/// SQ8 pre-filter grid (per-dimension `min` and `step`). **Optional**
/// for forward compatibility: snapshots written before the SQ8
/// pre-filter existed have no such section, and loading one simply
/// learns the grid from the restored rows (the codes themselves are
/// always rebuilt from the rows — they are cheap, the *grid* is what
/// must persist so prune decisions, and therefore the prefilter
/// counters, are byte-identical across save/load even after inserts
/// extended the data beyond the build-time value range).
const TAG_SQ8G: [u8; 4] = *b"SQ8G";

fn corrupt(reason: impl Into<String>) -> DbLshError {
    DbLshError::corrupt(reason)
}

impl DbLsh {
    /// Serialize the index into `writer` (see the module docs for what
    /// is stored). The snapshot captures the current state verbatim —
    /// including tombstoned-but-not-compacted rows — so
    /// [`DbLsh::load`]-then-query answers byte-identically to this index
    /// in canonical mode.
    ///
    /// Peak memory during a save is roughly the index's own payload
    /// again: section bodies (dataset + projection rows re-encoded as
    /// little-endian bytes) are staged in memory so the checksummed
    /// section table can precede them in one forward-only write.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), DbLshError> {
        let mut w = SnapshotWriter::new(INDEX_SNAPSHOT_KIND);
        let p = &self.params;

        let mut prms = SectionBuf::new();
        prms.put_f64(p.c);
        prms.put_f64(p.w0);
        prms.put_u64(p.k as u64);
        prms.put_u64(p.l as u64);
        prms.put_u64(p.t as u64);
        prms.put_f64(p.r_min);
        prms.put_u64(p.max_rounds as u64);
        prms.put_u64(p.node_capacity as u64);
        prms.put_u64(p.seed);
        prms.put_u8(u8::from(p.relabel));
        w.section(TAG_PARAMS, prms);

        let rows = self.store.len();
        let mut meta = SectionBuf::new();
        meta.put_u64(self.data.dim() as u64);
        meta.put_u64(rows as u64);
        meta.put_u64(self.ext_len as u64);
        meta.put_u64(self.len() as u64);
        meta.put_u8(u8::from(self.maps.is_some()));
        meta.put_u8(u8::from(self.verify_rows.is_some()));
        w.section(TAG_META, meta);

        let mut data = SectionBuf::new();
        data.put_f32_slice(self.data.flat());
        w.section(TAG_DATA, data);

        let mut proj = SectionBuf::new();
        for id in 0..rows as u32 {
            proj.put_f32_slice(self.store.row(id));
        }
        w.section(TAG_PROJ, proj);

        if let Some(m) = &self.maps {
            let mut maps = SectionBuf::new();
            maps.put_u32_slice(&m.ext_of_int);
            maps.put_u32_slice(&m.int_of_ext);
            w.section(TAG_MAPS, maps);
        }

        let mut tomb = SectionBuf::new();
        tomb.put_u64_slice(&self.removed);
        w.section(TAG_TOMB, tomb);

        let mut sq8 = SectionBuf::new();
        sq8.put_f32_slice(self.sq8.grid().min());
        sq8.put_f32_slice(self.sq8.grid().step());
        w.section(TAG_SQ8G, sq8);

        w.write_to(writer)
    }

    /// [`DbLsh::save`] to a file path, crash-safely: the snapshot is
    /// written to a `.tmp` sibling and renamed into place only once
    /// complete, so an interrupted save never destroys the previous
    /// snapshot at `path`.
    pub fn save_file<P: AsRef<Path>>(&self, path: P) -> Result<(), DbLshError> {
        dblsh_data::io::atomic_write_file(path.as_ref(), |f| self.save(f))
    }

    /// Restore an index from a snapshot stream: decode and validate
    /// every section, rebuild the Gaussian family from its seed, and
    /// bulk-load the `L` trees over the restored projection store.
    /// Canonical-mode answers are byte-identical to the saved index.
    ///
    /// Malformed input of any kind — truncated or bit-flipped files,
    /// wrong kind, future versions, internally inconsistent sections —
    /// yields a typed [`DbLshError`], never a panic.
    pub fn load<R: Read>(reader: R) -> Result<Self, DbLshError> {
        let snap = SnapshotReader::read_from(reader, INDEX_SNAPSHOT_KIND)?;

        let mut prms = snap.section(TAG_PARAMS)?;
        let params = DbLshParams {
            c: prms.get_f64()?,
            w0: prms.get_f64()?,
            k: prms.get_len()?,
            l: prms.get_len()?,
            t: prms.get_len()?,
            r_min: prms.get_f64()?,
            max_rounds: prms.get_len()?,
            node_capacity: prms.get_len()?,
            seed: prms.get_u64()?,
            relabel: prms.get_u8()? != 0,
        };
        prms.finish()?;
        params
            .validate()
            .map_err(|e| corrupt(format!("snapshot parameters invalid: {e}")))?;

        let mut meta = snap.section(TAG_META)?;
        let dim = meta.get_len()?;
        let rows = meta.get_len()?;
        let ext_len = meta.get_len()?;
        let live = meta.get_len()?;
        let has_maps = meta.get_u8()? != 0;
        let has_verify = meta.get_u8()? != 0;
        meta.finish()?;
        if dim == 0 {
            return Err(corrupt("zero dimensionality"));
        }
        if ext_len == 0 {
            return Err(corrupt("empty id space (an index always has ids)"));
        }
        if rows > ext_len || live > rows || ext_len > u32::MAX as usize {
            return Err(corrupt(format!(
                "inconsistent counts: rows {rows}, live {live}, id bound {ext_len}"
            )));
        }
        if has_verify && !has_maps {
            return Err(corrupt("verification order flagged without id maps"));
        }

        let mut data_sec = snap.section(TAG_DATA)?;
        let flat = data_sec.get_f32_vec(
            rows.checked_mul(dim)
                .ok_or_else(|| corrupt("dataset size overflows"))?,
        )?;
        data_sec.finish()?;
        let data = Dataset::try_from_flat(dim, flat)
            .map_err(|e| corrupt(format!("dataset section invalid: {e}")))?;

        let width = params
            .l
            .checked_mul(params.k)
            .ok_or_else(|| corrupt("projection width overflows"))?;
        let mut proj_sec = snap.section(TAG_PROJ)?;
        let proj = proj_sec.get_f32_vec(
            rows.checked_mul(width)
                .ok_or_else(|| corrupt("projection store size overflows"))?,
        )?;
        proj_sec.finish()?;
        if !proj.iter().all(|v| v.is_finite()) {
            return Err(corrupt("non-finite value in projection store"));
        }

        let maps = if has_maps {
            let mut maps_sec = snap.section(TAG_MAPS)?;
            let ext_of_int = maps_sec.get_u32_vec(rows)?;
            let int_of_ext = maps_sec.get_u32_vec(ext_len)?;
            maps_sec.finish()?;
            Some(IdMaps {
                ext_of_int,
                int_of_ext,
            })
        } else {
            if snap.has_section(TAG_MAPS) {
                return Err(corrupt("unexpected id-map section on an unmapped index"));
            }
            if ext_len != rows {
                return Err(corrupt(format!(
                    "unmapped index with sparse ids: {rows} rows, id bound {ext_len}"
                )));
            }
            None
        };

        let mut tomb_sec = snap.section(TAG_TOMB)?;
        let removed = tomb_sec.get_u64_vec(ext_len.div_ceil(64))?;
        tomb_sec.finish()?;
        // Bits at and beyond `ext_len` must be clear: `insert` assumes
        // freshly grown bitset words start zeroed.
        let tail_bits: u32 = removed
            .iter()
            .enumerate()
            .map(|(w, &bits)| {
                let valid = ext_len.saturating_sub(w * 64).min(64);
                if valid == 64 {
                    0
                } else {
                    (bits >> valid).count_ones()
                }
            })
            .sum();
        if tail_bits != 0 {
            return Err(corrupt("tombstone bits set beyond the id bound"));
        }
        let is_removed = |ext: usize| removed[ext / 64] & (1u64 << (ext % 64)) != 0;
        let removed_total: u32 = removed.iter().map(|w| w.count_ones()).sum();
        if removed_total as usize != ext_len - live {
            return Err(corrupt(format!(
                "tombstone count {removed_total} disagrees with id bound {ext_len} minus live {live}"
            )));
        }

        // Map validation: mutually inverse over the physical rows, dead
        // sentinel exactly on tombstoned row-less ids.
        if let Some(m) = &maps {
            for (int, &ext) in m.ext_of_int.iter().enumerate() {
                if (ext as usize) >= ext_len {
                    return Err(corrupt(format!("row {int} maps to unissued id {ext}")));
                }
                if m.int_of_ext[ext as usize] != int as u32 {
                    return Err(corrupt(format!("id maps are not inverse at row {int}")));
                }
            }
            let mut present = 0usize;
            for (ext, &int) in m.int_of_ext.iter().enumerate() {
                if int == DEAD {
                    if !is_removed(ext) {
                        return Err(corrupt(format!("id {ext} has no row but no tombstone")));
                    }
                } else {
                    if int as usize >= rows || m.ext_of_int[int as usize] != ext as u32 {
                        return Err(corrupt(format!("id {ext} maps to a foreign row")));
                    }
                    present += 1;
                }
            }
            if present != rows {
                return Err(corrupt("id maps name a different number of rows"));
            }
            // Without a verification copy, `data`'s own row order must BE
            // the internal order (the compacted-identity invariant) — the
            // maps must be ascending, or verification would silently read
            // the wrong rows.
            if !has_verify && !m.ext_of_int.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt(
                    "id maps are not ascending but no verification order is stored",
                ));
            }
        }

        // Rebuild the relabeled verification order, when flagged, by
        // permuting the ascending-by-id dataset rows through the maps
        // (rank of an id among the present ids = its `data` row).
        let to_ext = |int: u32| maps.as_ref().map_or(int, |m| m.ext_of_int[int as usize]);
        let verify_rows = if has_verify {
            let Some(m) = maps.as_ref() else {
                return Err(DbLshError::corrupt(
                    "snapshot flags a verification order but carries no id maps",
                ));
            };
            let mut by_ext = m.ext_of_int.clone();
            by_ext.sort_unstable();
            let mut rank_of = vec![DEAD; ext_len];
            for (rank, &ext) in by_ext.iter().enumerate() {
                rank_of[ext as usize] = rank as u32;
            }
            let mut rows_flat = Vec::with_capacity(rows * dim);
            for &ext in &m.ext_of_int {
                rows_flat.extend_from_slice(data.point(rank_of[ext as usize] as usize));
            }
            Some(Dataset::from_flat(dim, rows_flat))
        } else {
            None
        };

        // SQ8 pre-filter: restore the grid when the snapshot carries one
        // (it must, for prune decisions to survive a save/load of an
        // index whose data outgrew the build-time range); learn it from
        // the restored rows otherwise (pre-SQ8 snapshots). Codes are
        // always rebuilt — over the *internal* row order verification
        // reads.
        let grid = if snap.has_section(TAG_SQ8G) {
            let mut sq8_sec = snap.section(TAG_SQ8G)?;
            let min = sq8_sec.get_f32_vec(dim)?;
            let step = sq8_sec.get_f32_vec(dim)?;
            sq8_sec.finish()?;
            Sq8Grid::from_parts(min, step)?
        } else {
            Sq8Grid::learn(dim, data.flat())
        };
        let sq8 = Sq8Store::build(grid, verify_rows.as_ref().map_or(data.flat(), |v| v.flat()));

        // Rebuild the hasher (deterministic in the seed) and the trees
        // over the *live* internal ids (tombstoned rows stay out of the
        // trees, exactly as the saved index had them).
        let hasher = GaussianHasher::new(dim, params.k, params.l, params.seed);
        let store = ProjStore::from_flat(params.l, params.k, proj);
        let live_ids: Vec<u32> = (0..rows as u32)
            .filter(|&int| !is_removed(to_ext(int) as usize))
            .collect();
        if live_ids.len() != live {
            return Err(corrupt(format!(
                "live row count {} disagrees with recorded live {live}",
                live_ids.len()
            )));
        }
        let cap = params.node_capacity;
        let mut trees: Vec<Option<RStarTree>> = Vec::new();
        trees.resize_with(params.l, || None);
        std::thread::scope(|s| {
            for (i, slot) in trees.iter_mut().enumerate() {
                let store = &store;
                let live_ids = &live_ids;
                s.spawn(move || {
                    *slot = Some(RStarTree::bulk_load_with_capacity(
                        &store.view(i),
                        live_ids,
                        cap,
                    ));
                });
            }
        });

        Ok(DbLsh {
            params,
            hasher,
            // lint: allow(panic-free-surface) — thread::scope joined every tree builder, so each slot was written
            trees: trees.into_iter().map(|t| t.expect("tree built")).collect(),
            store,
            data: Arc::new(data),
            maps,
            verify_rows,
            sq8,
            removed,
            live,
            ext_len,
        })
    }

    /// [`DbLsh::load`] from a file path.
    pub fn load_file<P: AsRef<Path>>(path: P) -> Result<Self, DbLshError> {
        let f = std::fs::File::open(path).map_err(|e| DbLshError::io("open", e))?;
        DbLsh::load(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small() -> Arc<Dataset> {
        Arc::new(gaussian_mixture(&MixtureConfig {
            n: 400,
            dim: 12,
            clusters: 8,
            ..Default::default()
        }))
    }

    fn build(relabel: bool) -> DbLsh {
        let data = small();
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(5, 3)
            .with_r_min(0.5)
            .with_relabel(relabel);
        DbLsh::build(data, &params).unwrap()
    }

    #[test]
    fn round_trip_restores_state_and_answers() {
        for relabel in [true, false] {
            let mut idx = build(relabel);
            idx.remove(7).unwrap();
            idx.insert(&[0.25; 12]).unwrap();
            let mut bytes = Vec::new();
            idx.save(&mut bytes).unwrap();
            let loaded = DbLsh::load(&bytes[..]).unwrap();
            loaded.check_invariants();
            assert_eq!(loaded.len(), idx.len());
            assert_eq!(loaded.id_bound(), idx.id_bound());
            assert_eq!(loaded.params(), idx.params());
            assert_eq!(loaded.data().flat(), idx.data().flat());
            assert!(!loaded.contains(7));
            let q = idx.data().point(3);
            let a = idx
                .search_canonical(q, 10, &crate::SearchOptions::default())
                .unwrap();
            let b = loaded
                .search_canonical(q, 10, &crate::SearchOptions::default())
                .unwrap();
            assert_eq!(a.neighbors, b.neighbors, "relabel={relabel}");
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn compacted_index_round_trips() {
        let mut idx = build(true);
        for id in 0..200u32 {
            idx.remove(id).unwrap();
        }
        idx.compact();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let loaded = DbLsh::load(&bytes[..]).unwrap();
        loaded.check_invariants();
        assert_eq!(loaded.len(), 200);
        assert_eq!(loaded.id_bound(), 400);
        assert_eq!(loaded.dead_rows(), 0);
        let q = idx.point(250).unwrap().to_vec();
        let a = idx
            .search_canonical(&q, 5, &crate::SearchOptions::default())
            .unwrap();
        let b = loaded
            .search_canonical(&q, 5, &crate::SearchOptions::default())
            .unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        // The SQ8 grid is persisted, so prune decisions — and the
        // prefilter counters — survive churn + compact + save/load.
        assert_eq!(a.stats, b.stats);
    }

    /// A snapshot exactly as the pre-SQ8 format wrote it: every section
    /// of [`DbLsh::save`] except `SQ8G`.
    fn save_without_sq8(idx: &DbLsh) -> Vec<u8> {
        let mut w = SnapshotWriter::new(INDEX_SNAPSHOT_KIND);
        let p = idx.params();
        let mut prms = SectionBuf::new();
        prms.put_f64(p.c);
        prms.put_f64(p.w0);
        prms.put_u64(p.k as u64);
        prms.put_u64(p.l as u64);
        prms.put_u64(p.t as u64);
        prms.put_f64(p.r_min);
        prms.put_u64(p.max_rounds as u64);
        prms.put_u64(p.node_capacity as u64);
        prms.put_u64(p.seed);
        prms.put_u8(u8::from(p.relabel));
        w.section(TAG_PARAMS, prms);
        let rows = idx.store.len();
        let mut meta = SectionBuf::new();
        meta.put_u64(idx.data.dim() as u64);
        meta.put_u64(rows as u64);
        meta.put_u64(idx.ext_len as u64);
        meta.put_u64(idx.len() as u64);
        meta.put_u8(u8::from(idx.maps.is_some()));
        meta.put_u8(u8::from(idx.verify_rows.is_some()));
        w.section(TAG_META, meta);
        let mut data = SectionBuf::new();
        data.put_f32_slice(idx.data.flat());
        w.section(TAG_DATA, data);
        let mut proj = SectionBuf::new();
        for id in 0..rows as u32 {
            proj.put_f32_slice(idx.store.row(id));
        }
        w.section(TAG_PROJ, proj);
        if let Some(m) = &idx.maps {
            let mut maps = SectionBuf::new();
            maps.put_u32_slice(&m.ext_of_int);
            maps.put_u32_slice(&m.int_of_ext);
            w.section(TAG_MAPS, maps);
        }
        let mut tomb = SectionBuf::new();
        tomb.put_u64_slice(&idx.removed);
        w.section(TAG_TOMB, tomb);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn pre_sq8_snapshots_still_load_and_answer_identically() {
        // Forward compatibility: a snapshot without the SQ8G section
        // loads fine — the grid is re-learned from the restored rows,
        // which for an unchurned index is the build-time grid exactly,
        // so even the prefilter counters match.
        for relabel in [true, false] {
            let idx = build(relabel);
            let bytes = save_without_sq8(&idx);
            let loaded = DbLsh::load(&bytes[..]).unwrap();
            loaded.check_invariants();
            let q = idx.data().point(3);
            let a = idx
                .search_canonical(q, 10, &crate::SearchOptions::default())
                .unwrap();
            let b = loaded
                .search_canonical(q, 10, &crate::SearchOptions::default())
                .unwrap();
            assert_eq!(a.neighbors, b.neighbors, "relabel={relabel}");
            assert_eq!(a.stats, b.stats, "relabel={relabel}");
        }
    }

    #[test]
    fn crc_valid_but_malformed_sq8_grid_rejected() {
        // A CRC-valid snapshot whose SQ8 grid is nonsense (step <= 0)
        // must be a typed error, not a store that divides by zero later.
        let mut w = SnapshotWriter::new(INDEX_SNAPSHOT_KIND);
        let params = DbLshParams::paper_defaults(2).with_kl(2, 1);
        let mut prms = SectionBuf::new();
        prms.put_f64(params.c);
        prms.put_f64(params.w0);
        prms.put_u64(params.k as u64);
        prms.put_u64(params.l as u64);
        prms.put_u64(params.t as u64);
        prms.put_f64(params.r_min);
        prms.put_u64(params.max_rounds as u64);
        prms.put_u64(params.node_capacity as u64);
        prms.put_u64(params.seed);
        prms.put_u8(0);
        w.section(TAG_PARAMS, prms);
        let mut meta = SectionBuf::new();
        meta.put_u64(2); // dim
        meta.put_u64(2); // rows
        meta.put_u64(2); // ext_len
        meta.put_u64(2); // live
        meta.put_u8(0); // has_maps
        meta.put_u8(0); // has_verify
        w.section(TAG_META, meta);
        let mut data = SectionBuf::new();
        data.put_f32_slice(&[0.0, 0.0, 10.0, 10.0]);
        w.section(TAG_DATA, data);
        let mut proj = SectionBuf::new();
        proj.put_f32_slice(&[0.0, 0.0, 1.0, 1.0]);
        w.section(TAG_PROJ, proj);
        let mut tomb = SectionBuf::new();
        tomb.put_u64_slice(&[0]);
        w.section(TAG_TOMB, tomb);
        let mut sq8 = SectionBuf::new();
        sq8.put_f32_slice(&[0.0, 0.0]); // min
        sq8.put_f32_slice(&[0.0, 1.0]); // step: zero is malformed
        w.section(TAG_SQ8G, sq8);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        let err = DbLsh::load(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, DbLshError::CorruptSnapshot { .. }),
            "expected CorruptSnapshot, got {err:?}"
        );
    }

    #[test]
    fn truncated_and_flipped_snapshots_are_typed_errors() {
        let idx = build(true);
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        // a spread of truncation points, including inside every section
        for cut in [0, 10, 30, bytes.len() / 2, bytes.len() - 1] {
            let err = DbLsh::load(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbLshError::CorruptSnapshot { .. }),
                "cut {cut}: {err:?}"
            );
        }
        // bit flips across the stream: header, table, payloads
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match DbLsh::load(&bad[..]) {
                Err(DbLshError::CorruptSnapshot { .. }) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other:?}"),
                Ok(_) => panic!("flip at {pos} went undetected"),
            }
        }
    }

    #[test]
    fn wrong_kind_rejected() {
        let err = DbLsh::load(&b"not a snapshot at all"[..]).unwrap_err();
        assert!(matches!(err, DbLshError::CorruptSnapshot { .. }));
    }

    #[test]
    fn crc_valid_but_non_ascending_unverified_maps_rejected() {
        // A CRC-valid snapshot whose id maps permute the rows while
        // claiming there is no stored verification order: without the
        // ascending-maps check, verification would silently read the
        // wrong rows. Must be a typed error, not a wrong index.
        let mut w = SnapshotWriter::new(INDEX_SNAPSHOT_KIND);
        let params = DbLshParams::paper_defaults(2).with_kl(2, 1);
        let mut prms = SectionBuf::new();
        prms.put_f64(params.c);
        prms.put_f64(params.w0);
        prms.put_u64(params.k as u64);
        prms.put_u64(params.l as u64);
        prms.put_u64(params.t as u64);
        prms.put_f64(params.r_min);
        prms.put_u64(params.max_rounds as u64);
        prms.put_u64(params.node_capacity as u64);
        prms.put_u64(params.seed);
        prms.put_u8(0);
        w.section(TAG_PARAMS, prms);
        let mut meta = SectionBuf::new();
        meta.put_u64(2); // dim
        meta.put_u64(2); // rows
        meta.put_u64(2); // ext_len
        meta.put_u64(2); // live
        meta.put_u8(1); // has_maps
        meta.put_u8(0); // has_verify: data order claimed internal
        w.section(TAG_META, meta);
        let mut data = SectionBuf::new();
        data.put_f32_slice(&[0.0, 0.0, 10.0, 10.0]);
        w.section(TAG_DATA, data);
        let mut proj = SectionBuf::new();
        proj.put_f32_slice(&[0.0, 0.0, 1.0, 1.0]); // rows * l*k = 2*2
        w.section(TAG_PROJ, proj);
        let mut maps = SectionBuf::new();
        maps.put_u32_slice(&[1, 0]); // ext_of_int: a swap, not ascending
        maps.put_u32_slice(&[1, 0]); // valid inverse
        w.section(TAG_MAPS, maps);
        let mut tomb = SectionBuf::new();
        tomb.put_u64_slice(&[0]);
        w.section(TAG_TOMB, tomb);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        let err = DbLsh::load(&bytes[..]).unwrap_err();
        assert!(
            err.to_string().contains("ascending"),
            "expected the ascending-maps rejection, got: {err}"
        );
    }

    #[test]
    fn save_file_is_atomic_and_leaves_no_temp() {
        let idx = build(true);
        let dir = std::env::temp_dir().join("dblsh-snapshot-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.dblsh");
        idx.save_file(&path).unwrap();
        let first = std::fs::read(&path).unwrap();
        // re-save over the existing snapshot: still loads, no .tmp left
        idx.save_file(&path).unwrap();
        assert!(!dir.join("index.dblsh.tmp").exists(), "temp file leaked");
        assert_eq!(std::fs::read(&path).unwrap(), first);
        DbLsh::load_file(&path).unwrap();
        // a failing save (unwritable target dir) reports Io and leaves
        // the original file untouched
        let err = idx
            .save_file(dir.join("no-such-subdir").join("x.dblsh"))
            .unwrap_err();
        assert!(matches!(err, DbLshError::Io { .. }));
        assert_eq!(std::fs::read(&path).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_round_trip() {
        let idx = build(false);
        let dir = std::env::temp_dir().join("dblsh-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.dblsh");
        idx.save_file(&path).unwrap();
        let loaded = DbLsh::load_file(&path).unwrap();
        assert_eq!(loaded.len(), idx.len());
        std::fs::remove_file(&path).unwrap();
        let err = DbLsh::load_file(dir.join("missing.dblsh")).unwrap_err();
        assert!(matches!(err, DbLshError::Io { .. }));
    }
}
