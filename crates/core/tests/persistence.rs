//! Compaction and snapshot property tests.
//!
//! * **Compaction transparency**: a compacted index must answer
//!   canonical-mode queries **byte-identically** to a never-compacted
//!   index that saw the same interleaved insert/remove traffic — same
//!   neighbor ids, bit-identical distances, same work counters — and
//!   external ids must stay stable and never be recycled across
//!   compactions.
//! * **Snapshot round trip**: `save` → `load` restores an index that
//!   answers byte-identically in canonical mode, with all dynamic state
//!   (tombstones, id bound, live count) intact.
//! * **Corruption safety**: truncated or bit-flipped snapshot bytes
//!   yield typed [`DbLshError`]s — never panics, never a silently wrong
//!   index.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::{Dataset, DbLshError};
use proptest::prelude::*;

/// Distinct-row datasets (duplicate points make leaf tie-breaking
/// order-dependent, exactly as in the relabel parity tests — the claims
/// here are about compaction and persistence, not duplicate
/// tie-breaks).
fn distinct_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, dim..=dim), 8..max_n).prop_map(
        |mut rows| {
            rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.dedup();
            rows
        },
    )
}

fn params(n: usize, relabel: bool) -> DbLshParams {
    DbLshParams::paper_defaults(n)
        .with_kl(4, 3)
        .with_r_min(0.5)
        .with_t(4)
        .with_relabel(relabel)
}

fn assert_canonical_parity(a: &DbLsh, b: &DbLsh, q: &[f32], k: usize) {
    let opts = SearchOptions::default();
    let ra = a.search_canonical(q, k, &opts).unwrap();
    let rb = b.search_canonical(q, k, &opts).unwrap();
    assert_eq!(ra.neighbors, rb.neighbors, "canonical answers diverge");
    for (x, y) in ra.neighbors.iter().zip(&rb.neighbors) {
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "distances not byte-identical"
        );
    }
    assert_eq!(ra.stats, rb.stats, "work counters diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved insert/remove traffic with compactions sprinkled in:
    /// the compacted index stays byte-identical to the never-compacted
    /// one in canonical mode, external ids stay in lockstep (never
    /// recycled), and the compacted index reports zero dead rows after
    /// its final compaction.
    #[test]
    fn compaction_is_query_transparent_under_churn(
        rows in distinct_rows(90, 8),
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 8..=8), 1..16),
        remove_mod in 2usize..5,
        relabel in prop::bool::ANY,
        k in 1usize..8,
        qi in 0usize..90,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let n = data.len();
        let p = params(n, relabel);
        let mut plain = DbLsh::build(Arc::clone(&data), &p).unwrap();
        let mut compacted = DbLsh::build(Arc::clone(&data), &p).unwrap();

        for (j, e) in extra.iter().enumerate() {
            let victim = ((j * remove_mod) % n) as u32;
            prop_assert_eq!(
                plain.remove(victim).unwrap_or(false),
                compacted.remove(victim).unwrap_or(false),
                "remove outcomes diverge"
            );
            let ia = plain.insert(e).unwrap();
            let ib = compacted.insert(e).unwrap();
            prop_assert_eq!(ia, ib, "external ids must stay in lockstep");
            if j % 3 == 0 {
                compacted.compact();
            }
        }
        compacted.compact();
        compacted.check_invariants();
        plain.check_invariants();
        prop_assert_eq!(compacted.dead_rows(), 0);
        prop_assert_eq!(compacted.memory_breakdown().dead_bytes, 0);
        prop_assert_eq!(compacted.len(), plain.len());
        prop_assert_eq!(compacted.id_bound(), plain.id_bound());

        // live/dead id visibility is identical
        for id in 0..plain.id_bound() as u32 {
            prop_assert_eq!(plain.contains(id), compacted.contains(id), "id {}", id);
            prop_assert_eq!(plain.point(id), compacted.point(id));
        }

        let q = data.point(qi % n).to_vec();
        assert_canonical_parity(&plain, &compacted, &q, k);
        // an off-dataset query too
        let q2: Vec<f32> = data
            .point(0)
            .iter()
            .zip(data.point(n - 1))
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        assert_canonical_parity(&plain, &compacted, &q2, k);

        // ids are never recycled: the next insert gets a fresh id on both
        let next = plain.insert(&[55.5; 8]).unwrap();
        prop_assert_eq!(compacted.insert(&[55.5; 8]).unwrap(), next);
    }

    /// save -> load -> query parity, through churn and compaction, for
    /// both relabeled and identity layouts.
    #[test]
    fn snapshot_round_trip_preserves_answers(
        rows in distinct_rows(90, 8),
        removes in prop::collection::vec(0usize..90, 0..20),
        relabel in prop::bool::ANY,
        do_compact in prop::bool::ANY,
        k in 1usize..8,
        qi in 0usize..90,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let n = data.len();
        let mut idx = DbLsh::build(Arc::clone(&data), &params(n, relabel)).unwrap();
        for &r in &removes {
            let _ = idx.remove((r % n) as u32);
        }
        idx.insert(&[3.25; 8]).unwrap();
        if do_compact {
            idx.compact();
        }

        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let mut loaded = DbLsh::load(&bytes[..]).unwrap();
        loaded.check_invariants();
        prop_assert_eq!(loaded.len(), idx.len());
        prop_assert_eq!(loaded.id_bound(), idx.id_bound());
        prop_assert_eq!(loaded.dead_rows(), idx.dead_rows());
        prop_assert_eq!(loaded.params(), idx.params());
        for id in 0..idx.id_bound() as u32 {
            prop_assert_eq!(idx.contains(id), loaded.contains(id));
            prop_assert_eq!(idx.point(id), loaded.point(id));
        }

        let q = data.point(qi % n).to_vec();
        assert_canonical_parity(&idx, &loaded, &q, k);

        // the loaded index stays fully dynamic: fresh inserts agree
        prop_assert_eq!(
            idx.insert(&[7.5; 8]).unwrap(),
            loaded.insert(&[7.5; 8]).unwrap()
        );
        let q3 = vec![7.5f32; 8];
        assert_canonical_parity(&idx, &loaded, &q3, k);
    }

    /// Mangled snapshots fail with typed errors, never panics: every
    /// truncation prefix and a sweep of single-bit flips.
    #[test]
    fn mangled_snapshots_yield_typed_errors(
        rows in distinct_rows(40, 6),
        flip_seed in 0usize..1000,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let idx = DbLsh::build(Arc::clone(&data), &params(data.len(), true)).unwrap();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();

        // truncations: a spread of prefixes including section boundaries
        for cut in [0, 7, 11, 19, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            match DbLsh::load(&bytes[..cut.min(bytes.len() - 1)]) {
                Err(DbLshError::CorruptSnapshot { .. }) => {}
                other => prop_assert!(false, "cut {}: {:?}", cut, other.map(|_| ())),
            }
        }
        // one random single-bit flip per case
        let pos = flip_seed % bytes.len();
        let bit = 1u8 << (flip_seed % 8);
        let mut bad = bytes.clone();
        bad[pos] ^= bit;
        match DbLsh::load(&bad[..]) {
            Err(DbLshError::CorruptSnapshot { .. }) => {}
            Err(other) => prop_assert!(false, "flip at {pos}: unexpected error {other:?}"),
            Ok(_) => prop_assert!(false, "flip of bit {bit:#x} at {pos} went undetected"),
        }
    }
}
