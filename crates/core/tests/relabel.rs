//! Relabel parity property tests: a locality-relabeled (bulk-built) index
//! must be *observationally identical* to an identity-order build — same
//! neighbor ids, bit-identical distances, same work counters — across
//! every query mode, and must stay identical through interleaved
//! `insert`/`remove` traffic after relabeling.
//!
//! This holds by construction: per-row distances from the fused kernel
//! are bit-identical to the scalar kernel regardless of block position,
//! candidate blocks are consumed in canonical `(distance, external id)`
//! order, and all public ids are translated back to the external space.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::Dataset;
use proptest::prelude::*;

/// Distinct-row datasets: duplicate points project to identical
/// coordinates, which makes the STR grouping (and therefore which leaf a
/// tied point lands in) depend on the input order — deduplicate so the
/// parity claim is about the relabeling, not about tie-breaking.
fn distinct_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, dim..=dim), 4..max_n).prop_map(
        |mut rows| {
            rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.dedup();
            rows
        },
    )
}

fn params(n: usize) -> DbLshParams {
    DbLshParams::paper_defaults(n)
        .with_kl(4, 3)
        .with_r_min(0.5)
        .with_t(4) // small budget so the budget cutoff is exercised
}

fn assert_same_answers(a: &DbLsh, b: &DbLsh, q: &[f32], k: usize) {
    let ra = a.k_ann(q, k).unwrap();
    let rb = b.k_ann(q, k).unwrap();
    assert_eq!(ra.neighbors, rb.neighbors, "k_ann answers diverge");
    assert_eq!(ra.stats, rb.stats, "k_ann work accounting diverges");

    let (pa, sa) = a.r_c_nn(q, 2.0).unwrap();
    let (pb, sb) = b.r_c_nn(q, 2.0).unwrap();
    assert_eq!(pa, pb, "r_c_nn answers diverge");
    assert_eq!(sa, sb);

    let ia = a.k_ann_incremental(q, k).unwrap();
    let ib = b.k_ann_incremental(q, k).unwrap();
    assert_eq!(ia.neighbors, ib.neighbors, "incremental answers diverge");
    assert_eq!(ia.stats, ib.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-identical answers: ids, distances (bitwise — both builds run
    /// the same per-row kernel in the same canonical order) and stats
    /// agree between a relabeled and an identity-order build, in every
    /// query mode, for fresh bulk builds.
    #[test]
    fn relabeled_build_answers_identically(
        rows in distinct_rows(120, 8),
        k in 1usize..10,
        qi in 0usize..120,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let n = data.len();
        let p = params(n);
        let relabeled = DbLsh::build(Arc::clone(&data), &p).unwrap();
        let identity =
            DbLsh::build(Arc::clone(&data), &p.clone().with_relabel(false)).unwrap();
        prop_assert!(relabeled.is_relabeled());
        prop_assert!(!identity.is_relabeled());
        relabeled.check_invariants();

        // the external dataset view is the caller's row order either way
        prop_assert_eq!(relabeled.data().flat(), identity.data().flat());

        let q = data.point(qi % n).to_vec();
        assert_same_answers(&relabeled, &identity, &q, k);

        // an off-dataset query too (midpoint of two rows)
        let q2: Vec<f32> = data
            .point(0)
            .iter()
            .zip(data.point(n - 1))
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        assert_same_answers(&relabeled, &identity, &q2, k);
    }

    /// Parity survives dynamic traffic: after the same interleaved
    /// removes and inserts on both builds, ids stay in lockstep and all
    /// query modes still answer byte-identically.
    #[test]
    fn relabeled_parity_through_interleaved_updates(
        rows in distinct_rows(100, 6),
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 6..=6), 1..12),
        remove_mod in 2usize..5,
        k in 1usize..8,
        qi in 0usize..100,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let n = data.len();
        let p = params(n);
        let mut relabeled = DbLsh::build(Arc::clone(&data), &p).unwrap();
        let mut identity =
            DbLsh::build(Arc::clone(&data), &p.clone().with_relabel(false)).unwrap();

        for (j, e) in extra.iter().enumerate() {
            let victim = ((j * remove_mod) % n) as u32;
            prop_assert_eq!(
                relabeled.remove(victim).unwrap_or(false),
                identity.remove(victim).unwrap_or(false),
                "remove outcomes diverge"
            );
            let ir = relabeled.insert(e).unwrap();
            let ii = identity.insert(e).unwrap();
            prop_assert_eq!(ir, ii, "external insert ids must stay in lockstep");
            prop_assert!(relabeled.contains(ir));
        }
        prop_assert_eq!(relabeled.len(), identity.len());
        relabeled.check_invariants();
        identity.check_invariants();

        let q = relabeled.data().point(qi % relabeled.data().len()).to_vec();
        assert_same_answers(&relabeled, &identity, &q, k);

        // per-query overrides keep parity too
        let opts = SearchOptions { budget: Some(3), ..Default::default() };
        let ra = relabeled.search_with(&q, k, &opts).unwrap();
        let rb = identity.search_with(&q, k, &opts).unwrap();
        prop_assert_eq!(ra.neighbors, rb.neighbors);
        prop_assert_eq!(ra.stats, rb.stats);
        prop_assert!(ra.stats.candidates <= 3, "budget override ignored");
    }
}
