//! Property tests of the dynamic-update path: an index grown through
//! `insert` must be indistinguishable from one bulk-built over the same
//! points, and `remove`d points must never resurface in any query mode.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::Dataset;
use proptest::prelude::*;

fn dataset(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, dim..=dim), 4..max_n)
}

fn params(n: usize) -> DbLshParams {
    DbLshParams::paper_defaults(n).with_kl(4, 3).with_r_min(0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Content parity: bulk-building over `rows` and bulk-building over a
    /// prefix then `insert`ing the rest produce structurally equivalent
    /// indexes — same live ids at the same projected coordinates in every
    /// tree (asserted by `check_invariants`, which recomputes the
    /// projections) — and their `k_ann` answers agree.
    #[test]
    fn insert_grown_equals_bulk_built(
        rows in dataset(120, 8),
        split_frac in 0.1f64..0.9,
        k in 1usize..10,
        qi in 0usize..120,
    ) {
        let all = Dataset::from_rows(&rows);
        let n = all.len();
        let split = ((n as f64 * split_frac) as usize).clamp(1, n);
        let p = params(n);

        let bulk = DbLsh::build(Arc::new(all.clone()), &p).unwrap();

        let prefix = Dataset::from_flat(8, all.flat()[..split * 8].to_vec());
        let mut grown = DbLsh::build(Arc::new(prefix), &p).unwrap();
        for row in split..n {
            let id = grown.insert(all.point(row)).unwrap();
            prop_assert_eq!(id as usize, row, "insert ids must be dense row indexes");
        }

        prop_assert_eq!(grown.len(), bulk.len());
        bulk.check_invariants();
        grown.check_invariants();

        // Identical hasher (same seed, same dim) + identical point set =>
        // identical query answers. The tree *shapes* differ (STR bulk
        // loading vs R* insertion), so candidate enumeration order inside
        // a window differs; compare with an exhaustive per-query budget so
        // both indexes verify every point falling in their (identical)
        // windows before terminating.
        let q = all.point(qi % n).to_vec();
        let opts = SearchOptions { budget: Some(n), ..Default::default() };
        let rb = bulk.search_with(&q, k, &opts).unwrap();
        let rg = grown.search_with(&q, k, &opts).unwrap();
        let db: Vec<f32> = rb.dists();
        let dg: Vec<f32> = rg.dists();
        prop_assert_eq!(&db, &dg, "bulk and insert-grown answers diverge");
    }

    /// Removal: ids removed from the index never appear in any query
    /// mode's results, and the bookkeeping (len / contains / invariants)
    /// stays consistent.
    #[test]
    fn removed_ids_never_resurface(
        rows in dataset(100, 6),
        remove_mod in 2usize..5,
        k in 1usize..10,
        qi in 0usize..100,
    ) {
        let all = Dataset::from_rows(&rows);
        let n = all.len();
        let mut idx = DbLsh::build(Arc::new(all.clone()), &params(n)).unwrap();

        let removed: Vec<u32> = (0..n as u32).filter(|id| id % remove_mod as u32 == 0).collect();
        // keep at least one live point
        let removed = &removed[..removed.len().min(n - 1)];
        for &id in removed {
            prop_assert!(idx.remove(id).unwrap(), "first removal of {} reports true", id);
            prop_assert!(!idx.remove(id).unwrap(), "second removal of {} reports false", id);
        }
        prop_assert_eq!(idx.len(), n - removed.len());
        idx.check_invariants();

        let q = all.point(qi % n).to_vec();
        let ladder = idx.k_ann(&q, k).unwrap();
        let incremental = idx.k_ann_incremental(&q, k).unwrap();
        let probe = idx.r_c_nn(&q, 1000.0).unwrap().0;
        let batch = {
            let queries = Dataset::from_rows(std::slice::from_ref(&q));
            idx.search_batch(&queries, k).unwrap().remove(0)
        };
        for res in [&ladder, &incremental, &batch] {
            for nb in &res.neighbors {
                prop_assert!(
                    !removed.contains(&nb.id),
                    "removed id {} returned", nb.id
                );
                prop_assert!(idx.contains(nb.id));
            }
        }
        if let Some(hit) = probe {
            prop_assert!(!removed.contains(&hit.id), "removed id {} probed", hit.id);
        }
    }

    /// Flat-layout parity under interleaved updates: a bulk-built index
    /// and an insert-grown index receiving the same tail of interleaved
    /// inserts and removes answer identically (exhaustive budget), and
    /// both report consistent projection-store state.
    #[test]
    fn bulk_and_grown_agree_after_interleaved_updates(
        rows in dataset(100, 7),
        split_frac in 0.2f64..0.8,
        remove_mod in 2usize..5,
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 7..=7), 1..12),
        k in 1usize..8,
        qi in 0usize..100,
    ) {
        let all = Dataset::from_rows(&rows);
        let n = all.len();
        let split = ((n as f64 * split_frac) as usize).clamp(1, n);
        let p = params(n);

        let mut bulk = DbLsh::build(Arc::new(all.clone()), &p).unwrap();
        let prefix = Dataset::from_flat(7, all.flat()[..split * 7].to_vec());
        let mut grown = DbLsh::build(Arc::new(prefix), &p).unwrap();
        for row in split..n {
            grown.insert(all.point(row)).unwrap();
        }

        // Same interleaved tail on both: remove every remove_mod-th
        // existing id, insert the extra points.
        for (j, e) in extra.iter().enumerate() {
            let victim = ((j * remove_mod) % n) as u32;
            prop_assert_eq!(
                bulk.remove(victim).unwrap_or(false),
                grown.remove(victim).unwrap_or(false)
            );
            let ib = bulk.insert(e).unwrap();
            let ig = grown.insert(e).unwrap();
            prop_assert_eq!(ib, ig, "ids must stay in lockstep");
        }
        prop_assert_eq!(bulk.len(), grown.len());
        bulk.check_invariants();
        grown.check_invariants();
        // the shared store mirrors the dataset row for row in both
        prop_assert_eq!(bulk.proj_store().len(), bulk.data().len());
        prop_assert_eq!(grown.proj_store().len(), grown.data().len());

        let q = bulk.data().point(qi % bulk.data().len()).to_vec();
        let opts = SearchOptions { budget: Some(bulk.data().len()), ..Default::default() };
        let rb = bulk.search_with(&q, k, &opts).unwrap();
        let rg = grown.search_with(&q, k, &opts).unwrap();
        prop_assert_eq!(rb.dists(), rg.dists(), "bulk and grown answers diverge");
    }

    /// Insert after remove: the index stays consistent through interleaved
    /// updates, new ids are never recycled, and a fresh insert is
    /// immediately findable as its own nearest neighbor.
    #[test]
    fn interleaved_updates_stay_consistent(
        rows in dataset(60, 5),
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 5..=5), 1..10),
    ) {
        let all = Dataset::from_rows(&rows);
        let n = all.len();
        let mut idx = DbLsh::build(Arc::new(all), &params(n)).unwrap();

        for (j, p) in extra.iter().enumerate() {
            // remove an existing live point, then insert a new one
            let victim = (j % n) as u32;
            if idx.contains(victim) {
                prop_assert!(idx.remove(victim).unwrap());
            }
            let id = idx.insert(p).unwrap();
            prop_assert_eq!(id, (n + j) as u32, "ids must never be recycled");
            let found = idx.k_ann(p, 1).unwrap();
            prop_assert_eq!(found.neighbors[0].id, id);
            prop_assert_eq!(found.neighbors[0].dist, 0.0);
        }
        idx.check_invariants();
    }
}
