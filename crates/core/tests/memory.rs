//! Layout regression tests: the flat index (shared `f32` projection
//! store + id-only tree arenas) must stay strictly below the memory
//! footprint of the seed layout, which boxed every leaf's coordinates
//! (`Entry::Point { coords: Box<[f64]> }`) and every inner bound
//! (`Rect` = two `Box<[f64]>`s) inside 48-byte entry enums, per tree.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

/// Conservative (under-)estimate of what the seed layout spent on the
/// same trees: per leaf entry a 48-byte `Entry` enum plus a
/// `K x f64` coordinate box; per inner entry a 48-byte enum plus a
/// `2 x K x f64` rect; per node the old 32-byte header. Allocator
/// headers and `Vec` slack are ignored, which only makes the bound
/// harder to beat.
fn seed_layout_estimate(index: &DbLsh) -> usize {
    let k = index.params().k;
    index
        .tree_stats()
        .iter()
        .map(|stats| {
            stats.nodes * 32
                + stats.leaf_entries * (48 + k * 8)
                + stats.inner_entries * (48 + k * 16)
        })
        .sum()
}

#[test]
fn flat_index_reports_strictly_less_than_seed_layout_at_10k() {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: 10_000,
        dim: 32,
        clusters: 30,
        ..Default::default()
    }));
    // Relabeling is a deliberate space-for-locality trade (id maps +
    // reordered verification rows) accounted separately below; the
    // flat-vs-seed layout claim is about the structural layout itself,
    // so pin it on the identity-order build.
    let params = DbLshParams::paper_defaults(data.len())
        .with_kl(10, 5)
        .with_relabel(false);
    let index = DbLsh::build(Arc::clone(&data), &params).unwrap();

    let flat = index.memory_bytes();
    let seed = seed_layout_estimate(&index);
    assert!(
        flat < seed,
        "flat layout ({flat} B) must undercut the seed layout ({seed} B)"
    );
    // The structural win is large, not marginal: the seed stored every
    // coordinate in f64 boxes behind 48-byte enums; the flat layout
    // stores them once, in f32, plus 4-byte ids.
    assert!(
        flat * 2 < seed,
        "expected at least 2x reduction: flat {flat} B vs seed {seed} B"
    );

    let breakdown = index.memory_breakdown();
    assert_eq!(breakdown.total(), flat);
    assert!(breakdown.proj_store_bytes > 0);
    assert!(breakdown.tree_bytes > 0);
    assert_eq!(breakdown.relabel_bytes, 0, "identity build has no maps");
    // The store dominates: n * L * K * 4 bytes of coordinates vs id-only
    // tree arenas.
    assert!(breakdown.proj_store_bytes > breakdown.tree_bytes);
    // Store size is exactly predictable (capacity may round up).
    let n = data.len();
    let expect_store = n * params.l * params.k * 4;
    assert!(breakdown.proj_store_bytes >= expect_store);
    assert!(breakdown.proj_store_bytes <= expect_store * 2);
}

#[test]
fn relabeled_index_accounts_its_locality_state() {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: 10_000,
        dim: 32,
        clusters: 30,
        ..Default::default()
    }));
    let params = DbLshParams::paper_defaults(data.len()).with_kl(10, 5);
    let index = DbLsh::build(Arc::clone(&data), &params).unwrap();
    assert!(index.is_relabeled());

    let breakdown = index.memory_breakdown();
    assert_eq!(breakdown.total(), index.memory_bytes());
    // The relabel state is exactly two u32 maps plus one f32 row copy
    // (maps may carry Vec slack).
    let n = data.len();
    let exact = n * (2 * 4 + 32 * 4);
    assert!(breakdown.relabel_bytes >= exact);
    assert!(
        breakdown.relabel_bytes <= exact * 2,
        "relabel state unexpectedly large: {} B vs exact {} B",
        breakdown.relabel_bytes,
        exact
    );
    // Identical trees/store as the identity build — relabeling permutes
    // rows, it does not grow the structural layout.
    let identity = DbLsh::build(Arc::clone(&data), &params.clone().with_relabel(false)).unwrap();
    let id_breakdown = identity.memory_breakdown();
    assert_eq!(breakdown.proj_store_bytes, id_breakdown.proj_store_bytes);
}

#[test]
fn dead_bytes_tracks_churn_and_compaction_reclaims_it() {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: 2_000,
        dim: 16,
        clusters: 10,
        ..Default::default()
    }));
    let params = DbLshParams::paper_defaults(data.len()).with_kl(8, 3);
    let mut index = DbLsh::build(Arc::clone(&data), &params).unwrap();
    assert_eq!(index.memory_breakdown().dead_bytes, 0, "fresh build");

    // Remove half: dead_bytes must report exactly the tombstoned rows'
    // share of the store, the two dataset copies, the id maps and the
    // SQ8 code store.
    for id in 0..1000u32 {
        index.remove(id).unwrap();
    }
    let breakdown = index.memory_breakdown();
    let per_row = 8 * 3 * 4 /* store row */ + 2 * 16 * 4 /* two row copies */
        + 8 /* map entries */ + 16 /* sq8 code row */ + 1 /* sq8 clamped flag */;
    assert_eq!(breakdown.dead_bytes, 1000 * per_row);
    assert_eq!(index.dead_rows(), 1000);

    // Compaction returns it to zero and shrinks the owned total.
    let before_total = breakdown.total();
    let stats = index.compact();
    assert_eq!(stats.reclaimed_bytes, 1000 * per_row);
    let after = index.memory_breakdown();
    assert_eq!(after.dead_bytes, 0);
    assert!(
        after.total() < before_total,
        "compacted total {} must undercut pre-compaction total {}",
        after.total(),
        before_total
    );
    index.check_invariants();
}

#[test]
fn memory_shrinks_versus_seed_even_after_updates() {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: 2_000,
        dim: 16,
        clusters: 10,
        ..Default::default()
    }));
    let params = DbLshParams::paper_defaults(data.len()).with_kl(8, 3);
    let mut index = DbLsh::build(Arc::clone(&data), &params).unwrap();
    for id in 0..500u32 {
        index.remove(id).unwrap();
    }
    for i in 0..250 {
        index.insert(&[i as f32; 16]).unwrap();
    }
    index.check_invariants();
    // The flat-vs-seed claim is about the structural layout; the SQ8
    // pre-filter codes are a *new* component the seed never carried, so
    // they are excluded from the comparison (and bounded separately —
    // one u8 per coordinate plus one flag byte per row stays a sliver
    // of the projection store).
    let breakdown = index.memory_breakdown();
    assert!(breakdown.total() - breakdown.sq8_bytes < seed_layout_estimate(&index));
    assert!(
        breakdown.sq8_bytes * 4 < breakdown.proj_store_bytes,
        "sq8 codes ({} B) should be a sliver of the store ({} B)",
        breakdown.sq8_bytes,
        breakdown.proj_store_bytes
    );
}
