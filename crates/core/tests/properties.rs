//! Property-based tests of the DB-LSH query pipeline: structural
//! contracts that must hold for every dataset, parameterization and query.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::Dataset;
use proptest::prelude::*;

fn dataset(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, dim..=dim), 2..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn results_are_valid_ids_sorted_unique(
        rows in dataset(120, 8),
        k in 1usize..15,
        qi in 0usize..50,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(4, 2)
            .with_r_min(0.5);
        let index = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let q = data.point(qi % data.len()).to_vec();
        let res = index.k_ann(&q, k).unwrap();

        prop_assert!(res.neighbors.len() <= k);
        prop_assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids = res.ids();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate ids returned");
        prop_assert!(ids.iter().all(|&id| (id as usize) < data.len()));
        // distances must be genuine
        for n in &res.neighbors {
            let true_d = dblsh_data::dataset::dist(&q, data.point(n.id as usize));
            prop_assert!((n.dist - true_d).abs() <= 1e-3 * (1.0 + true_d));
        }
        // budget contract
        prop_assert!(res.stats.candidates <= params.kann_budget(k).max(data.len()));
    }

    #[test]
    fn rcnn_respects_definition_2(
        rows in dataset(100, 6),
        r in 0.1f64..200.0,
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let params = DbLshParams::paper_defaults(data.len())
            .with_kl(4, 2);
        let index = DbLsh::build(Arc::clone(&data), &params).unwrap();
        let q = data.point(0).to_vec();
        let (hit, stats) = index.r_c_nn(&q, r).unwrap();
        prop_assert_eq!(stats.rounds, 1);
        if let Some(h) = hit {
            // any returned point must be a real dataset point at its real
            // distance; within c*r unless the budget fired (budget >= n
            // here, so it cannot fire before saturation)
            let true_d = dblsh_data::dataset::dist(&q, data.point(h.id as usize));
            prop_assert!((h.dist - true_d).abs() <= 1e-3 * (1.0 + true_d));
            if (stats.candidates) < params.rcnn_budget() {
                prop_assert!(h.dist as f64 <= params.c * r + 1e-6);
            }
        }
    }

    #[test]
    fn larger_budget_never_hurts_recall(
        rows in dataset(150, 8),
    ) {
        let data = Arc::new(Dataset::from_rows(&rows));
        let k = 5usize.min(data.len());
        let q = data.point(0).to_vec();
        let small = DbLshParams::paper_defaults(data.len())
            .with_kl(4, 2).with_t(2).with_r_min(0.5);
        let large = small.clone().with_t(512);
        let idx_small = DbLsh::build(Arc::clone(&data), &small).unwrap();
        let idx_large = DbLsh::build(Arc::clone(&data), &large).unwrap();
        let rs = idx_small.k_ann(&q, k).unwrap();
        let rl = idx_large.k_ann(&q, k).unwrap();
        // the large-budget kth distance can only be at least as good when
        // both return k results (same projections, same ladder)
        if rs.neighbors.len() == k && rl.neighbors.len() == k {
            prop_assert!(
                rl.neighbors[k - 1].dist <= rs.neighbors[k - 1].dist + 1e-5,
                "bigger budget produced worse kth distance"
            );
        }
    }
}
