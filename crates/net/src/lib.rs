//! # dblsh-net — the TCP front door for the DB-LSH serving engine
//!
//! Everything below the socket already existed: [`dblsh_serve::Engine`]
//! gives a bounded admission queue over a worker pool, and
//! [`dblsh_serve::ShardedDbLsh`] answers queries byte-identically to the
//! canonical single-index ladder. This crate puts a network protocol in
//! front of that stack without weakening any of its guarantees:
//!
//! ```text
//!           DbLshClient            (blocking, pipelined, reconnects)
//!               │ TCP, length-prefixed CRC-checked frames
//!               ▼
//!           DbLshServer            (acceptor + per-conn reader/writer)
//!               │ non-blocking try_* submission
//!               ▼
//!           Engine                 (bounded queue = admission control)
//!               │ canonical round-exhaustive ladder
//!               ▼
//!           ShardedDbLsh           (per-shard RwLocks, global ids)
//! ```
//!
//! ## Wire format
//!
//! One frame per message, mirroring the snapshot files' framing
//! discipline (shared magic/version/CRC helpers live in
//! [`dblsh_data::io`]):
//!
//! ```text
//! ┌────────────┬───────┬─────────┬──────┬────────┬─────────┬─────────┬───────┐
//! │ length u32 │ magic │ version │ kind │ opcode │ request │ payload │ crc32 │
//! │ (bounded)  │ DBLN  │   u16   │  u8  │   u8   │ id u64  │   ...   │  u32  │
//! └────────────┴───────┴─────────┴──────┴────────┴─────────┴─────────┴───────┘
//!               └──────────────── CRC-32 covers this span ───────────┘
//! ```
//!
//! The length prefix is validated against a cap **before** any
//! allocation, so a malicious 4 GiB header costs the server four bytes
//! of reading, not four gigabytes of memory. Inside the frame, bad
//! magic, stale versions, checksum mismatches, unknown opcodes, and
//! truncated or over-long payloads each decode to a typed
//! [`NetError`] — property-swept in the crate tests by truncating at
//! every prefix length and flipping a bit at every byte position.
//!
//! ## Semantics worth relying on
//!
//! * **Admission control is inherited, not reimplemented.** Connection
//!   threads submit through the engine's non-blocking `try_*` API; a
//!   full queue answers [`dblsh_data::DbLshError::Busy`] over the wire
//!   and counts in [`dblsh_serve::EngineStats::rejected`]. A slow
//!   engine backs pressure up through the per-connection in-flight cap
//!   into TCP itself.
//! * **Graceful drain.** [`DbLshServer::shutdown`] stops accepting,
//!   refuses new connects with a typed `Shutdown` frame, finishes every
//!   accepted request, flushes every response, then joins all threads.
//! * **Canonical answers.** A `Knn` request returns exactly what
//!   `DbLsh::search_canonical` returns on the same data — the e2e tests
//!   assert byte-identical neighbor lists through real sockets.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dblsh_core::DbLshBuilder;
//! use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
//! use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
//! use dblsh_net::{DbLshClient, DbLshServer, ServerConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig { n: 1000, dim: 16, ..Default::default() });
//! let index = ShardedDbLsh::build(
//!     &data, &DbLshBuilder::new().l(3).auto_r_min(), 4, ShardPolicy::RoundRobin,
//! ).unwrap();
//! let engine = Arc::new(Engine::start(Arc::new(index), EngineConfig::default()));
//!
//! let server = DbLshServer::bind("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default()).unwrap();
//! let mut client = DbLshClient::connect(&server.local_addr().to_string()).unwrap();
//! let top5 = client.knn(&data.point(0).to_vec(), 5).unwrap();
//! assert_eq!(top5.neighbors[0].id, 0);
//! server.shutdown();
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, DbLshClient, RequestId, RetryPolicy};
pub use proto::{
    MetricsFormat, NetError, Request, Response, DEFAULT_MAX_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
pub use server::{DbLshServer, ServerConfig, ServerStats};
