//! The threaded TCP server: an acceptor thread plus a reader/writer
//! thread pair per connection, dispatching decoded requests onto the
//! caller's [`Engine`] so its bounded queue *is* the admission control.
//!
//! Layering (top to bottom):
//!
//! ```text
//! DbLshClient ──TCP──▶ DbLshServer (acceptor + per-conn reader/writer)
//!                          │  try_* submission (non-blocking)
//!                          ▼
//!                      Engine (bounded queue + worker pool)
//!                          │  canonical ladder, per-shard RwLocks
//!                          ▼
//!                      ShardedDbLsh
//! ```
//!
//! * A full engine queue never blocks a connection thread: submissions
//!   go through the engine's `try_*` API, and a refusal comes back over
//!   the wire as a typed [`DbLshError::Busy`] error response.
//! * Malformed bytes never kill the connection thread: oversized or
//!   lying length prefixes, bad magic, checksum mismatches, and stale
//!   versions are all answered with typed protocol error frames (the
//!   length prefix keeps framing intact, so the connection survives
//!   everything except a broken length prefix itself).
//! * Graceful drain: [`DbLshServer::shutdown`] stops accepting, lets
//!   every already-accepted request finish and its response flush, then
//!   closes. Accepted work is never dropped; new connects are refused
//!   with a `Shutdown` error frame.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dblsh_data::io::write_len_frame;
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};
use dblsh_serve::{Engine, Ticket};

use crate::proto::{
    decode_frame, encode_response, Message, MetricsFormat, NetError, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// Server tuning knobs. The defaults suit tests and small deployments;
/// every limit exists so a misbehaving peer costs bounded resources.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accepted connections beyond this are refused with a typed error
    /// frame and closed (each costs two threads).
    pub max_connections: usize,
    /// Requests a single connection may have in flight before its
    /// reader stops pulling new frames off the socket (per-connection
    /// pipelining cap; TCP backpressure does the rest).
    pub max_in_flight: usize,
    /// Largest accepted frame body; a length prefix above this is
    /// answered with a typed error before any allocation.
    pub max_frame: u32,
    /// Connections idle (no complete frame) longer than this are
    /// closed. `None` disables the idle timeout.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_in_flight: 32,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Lifetime counters, returned by [`DbLshServer::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections refused (limit reached or server draining).
    pub refused: u64,
    /// Request frames decoded and dispatched.
    pub requests: u64,
    /// Error responses sent (engine refusals and protocol violations).
    pub errors: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    refused: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            // order: independent monotone counters sampled for reporting;
            // cross-counter skew of in-flight requests is inherent to a
            // live snapshot, so relaxed loads suffice for all four.
            connections: self.connections.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    draining: AtomicBool,
    live_connections: AtomicUsize,
    stats: SharedStats,
}

/// What a reader hands its connection's writer: either an engine ticket
/// still being worked, or a response that needed no engine trip
/// (protocol errors, refusals, pings answered in the reader for
/// simplicity would reorder — so even pings flow through here).
enum Pending {
    Search(u64, Ticket<SearchResult>),
    RcNn(u64, Ticket<(Option<Neighbor>, QueryStats)>),
    Insert(u64, Ticket<u32>),
    Remove(u64, Ticket<bool>),
    Immediate(u64, Response),
}

/// The TCP front door. Owns the acceptor thread and every connection
/// thread it spawns; dispatches onto a caller-owned [`Engine`] (shared
/// by `Arc`, never shut down by the server — in-process callers keep
/// working across a server restart).
pub struct DbLshServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DbLshServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start accepting.
    pub fn bind(
        addr: &str,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> Result<DbLshServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("set_nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("local_addr", e))?;
        let shared = Arc::new(Shared {
            engine,
            config,
            draining: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            stats: SharedStats::default(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("dblsh-net-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared, conns))
                .map_err(|e| NetError::io("spawn", e))?
        };
        Ok(DbLshServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Graceful drain: stop accepting, refuse new connections, let every
    /// accepted request finish and its response flush, then join all
    /// threads. Returns the lifetime counters. The engine is *not*
    /// drained — it belongs to the caller.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_drain();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The handle list is a plain Vec, valid in every published
        // state; recover from poisoning so teardown always joins.
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        self.shared.stats.snapshot()
    }

    fn begin_drain(&self) {
        // order: the drain flag and `live_connections` coordinate
        // admission across acceptor and connection threads; SeqCst keeps
        // every participant in one total order so "flag set before the
        // accept check" cannot be reordered away. Cold path — clarity
        // over cycles.
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

impl Drop for DbLshServer {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(5);
const READ_POLL: Duration = Duration::from_millis(50);

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        // order: drain flag participates in the SeqCst admission order
        // (see `begin_drain`) so a drain is never missed once stored.
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // order: re-check after accept, same SeqCst admission
                // order — an accepted stream must see a set flag.
                if shared.draining.load(Ordering::SeqCst) {
                    refuse(&shared, stream, NetError::Remote(DbLshError::Shutdown));
                    return;
                }
                // order: admission-limit check in the same SeqCst order
                // as the fetch_add/fetch_sub below, so the acceptor
                // never reads a count older than its own last update.
                let live = shared.live_connections.load(Ordering::SeqCst);
                if live >= shared.config.max_connections {
                    refuse(&shared, stream, NetError::Remote(DbLshError::Busy));
                    continue;
                }
                // order: SeqCst keeps the live count in the admission
                // total order shared with the drain flag.
                shared.live_connections.fetch_add(1, Ordering::SeqCst);
                // order: standalone lifetime counter, reporting only.
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                match thread::Builder::new()
                    .name("dblsh-net-conn".into())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        // order: release the admission slot in the same
                        // SeqCst order the acceptor's limit check uses.
                        conn_shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                    }) {
                    Ok(handle) => {
                        let mut guard = conns.lock().unwrap_or_else(PoisonError::into_inner);
                        // Opportunistically reap finished connection
                        // threads so the handle list stays bounded by
                        // live connections, not lifetime connections.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(_) => {
                        // order: roll back the reservation in the same
                        // SeqCst admission order.
                        shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Send a best-effort typed error frame (request id 0: connection-level,
/// not tied to any request) and close.
fn refuse(shared: &Shared, stream: TcpStream, err: NetError) {
    // order: standalone lifetime counter, reporting only.
    shared.stats.refused.fetch_add(1, Ordering::Relaxed);
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let body = encode_response(0, &Response::Error(err));
    let _ = write_len_frame(&mut stream, &body, shared.config.max_frame);
    let _ = stream.flush();
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Incremental frame reader that survives read timeouts: `read_exact`
/// would drop already-read bytes on `WouldBlock`, so partial length
/// prefixes and bodies are retained across polls. The length prefix is
/// validated against `max_frame` *before* any body allocation.
struct FrameReader {
    prefix: [u8; 4],
    prefix_filled: usize,
    body: Vec<u8>,
    body_filled: usize,
}

enum ReadStep {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// No bytes pending and none buffered — safe point to check
    /// drain/idle deadlines.
    IdleBoundary,
    /// Timed out mid-frame; keep reading.
    MidFrame,
    /// Clean EOF at a frame boundary.
    Eof,
    /// The peer sent a length prefix above the cap. Unrecoverable for
    /// the connection (framing is lost) but reported before any
    /// allocation.
    TooLarge(u32),
    /// Hard socket error or mid-frame EOF.
    Broken,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            prefix: [0; 4],
            prefix_filled: 0,
            body: Vec::new(),
            body_filled: 0,
        }
    }

    fn mid_frame(&self) -> bool {
        self.prefix_filled > 0 || self.body_filled > 0
    }

    fn step(&mut self, stream: &mut TcpStream, max_frame: u32) -> ReadStep {
        loop {
            if self.prefix_filled < 4 {
                match stream.read(&mut self.prefix[self.prefix_filled..]) {
                    Ok(0) => {
                        return if self.mid_frame() {
                            ReadStep::Broken
                        } else {
                            ReadStep::Eof
                        }
                    }
                    Ok(n) => {
                        self.prefix_filled += n;
                        if self.prefix_filled < 4 {
                            continue;
                        }
                        let len = u32::from_le_bytes(self.prefix);
                        if len > max_frame {
                            return ReadStep::TooLarge(len);
                        }
                        self.body = vec![0u8; len as usize];
                        self.body_filled = 0;
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        return if self.mid_frame() {
                            ReadStep::MidFrame
                        } else {
                            ReadStep::IdleBoundary
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return ReadStep::Broken,
                }
            }
            if self.body_filled < self.body.len() {
                match stream.read(&mut self.body[self.body_filled..]) {
                    Ok(0) => return ReadStep::Broken,
                    Ok(n) => {
                        self.body_filled += n;
                        if self.body_filled < self.body.len() {
                            continue;
                        }
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        return ReadStep::MidFrame
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return ReadStep::Broken,
                }
            }
            self.prefix_filled = 0;
            self.body_filled = 0;
            return ReadStep::Frame(std::mem::take(&mut self.body));
        }
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };

    // Reader → writer queue, bounded at the in-flight cap: a reader that
    // decodes faster than the engine answers blocks here, which stops it
    // pulling frames, which backs TCP up to the client — end-to-end
    // backpressure with no unbounded buffer anywhere.
    let (tx, rx) = mpsc::sync_channel::<Pending>(shared.config.max_in_flight.max(1));
    let writer = {
        let max_frame = shared.config.max_frame;
        thread::Builder::new()
            .name("dblsh-net-writer".into())
            .spawn(move || writer_loop(write_stream, rx, max_frame))
    };
    let writer = match writer {
        Ok(h) => h,
        Err(_) => return,
    };

    let mut reader = FrameReader::new();
    let mut last_activity = Instant::now();
    loop {
        match reader.step(&mut stream, shared.config.max_frame) {
            ReadStep::Frame(body) => {
                last_activity = Instant::now();
                // order: standalone lifetime counter, reporting only.
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let pending = dispatch(&body, shared);
                if matches!(&pending, Pending::Immediate(_, Response::Error(_))) {
                    // order: standalone lifetime counter, reporting only.
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                if tx.send(pending).is_err() {
                    break; // writer gone (socket died)
                }
            }
            ReadStep::IdleBoundary => {
                // order: drain check in the SeqCst admission order so an
                // idle connection exits promptly once drain begins.
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(limit) = shared.config.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        break;
                    }
                }
            }
            ReadStep::MidFrame => {
                // Partial frame buffered; even while draining we give the
                // peer a grace window to finish it, since an accepted
                // byte stream deserves a typed answer.
                // order: drain check in the SeqCst admission order.
                if shared.draining.load(Ordering::SeqCst)
                    && last_activity.elapsed() >= Duration::from_secs(1)
                {
                    break;
                }
                if let Some(limit) = shared.config.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        break;
                    }
                }
            }
            ReadStep::TooLarge(len) => {
                // order: standalone lifetime counter, reporting only.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let err = NetError::protocol(format!(
                    "frame of {len} bytes exceeds the {}-byte limit",
                    shared.config.max_frame
                ));
                let _ = tx.send(Pending::Immediate(0, Response::Error(err)));
                break; // framing lost: cannot resynchronise
            }
            ReadStep::Eof | ReadStep::Broken => break,
        }
    }
    // Dropping `tx` lets the writer drain every pending response, flush,
    // and exit — accepted requests always get their answer out.
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Decode one frame and dispatch it onto the engine. Every failure mode
/// maps to a typed error response; nothing here blocks on the engine
/// queue (the `try_*` API refuses instead).
fn dispatch(body: &[u8], shared: &Shared) -> Pending {
    let (id, msg) = match decode_frame(body) {
        Ok(decoded) => decoded,
        Err(err) => return Pending::Immediate(0, Response::Error(err)),
    };
    let req = match msg {
        Message::Request(req) => req,
        Message::Response(_) => {
            return Pending::Immediate(
                id,
                Response::Error(NetError::protocol(
                    "received a response frame where a request was expected",
                )),
            )
        }
    };
    match req {
        Request::Ping { token } => Pending::Immediate(id, Response::Pong { token }),
        Request::Knn { query, k, opts } => {
            match shared.engine.try_search_with(&query, k as usize, opts) {
                Ok(ticket) => Pending::Search(id, ticket),
                Err(e) => Pending::Immediate(id, Response::Error(NetError::Remote(e))),
            }
        }
        Request::RcNn { query, r } => match shared.engine.try_r_c_nn(&query, r) {
            Ok(ticket) => Pending::RcNn(id, ticket),
            Err(e) => Pending::Immediate(id, Response::Error(NetError::Remote(e))),
        },
        Request::Insert { point } => match shared.engine.try_insert(&point) {
            Ok(ticket) => Pending::Insert(id, ticket),
            Err(e) => Pending::Immediate(id, Response::Error(NetError::Remote(e))),
        },
        Request::Remove { id: point_id } => match shared.engine.try_remove(point_id) {
            Ok(ticket) => Pending::Remove(id, ticket),
            Err(e) => Pending::Immediate(id, Response::Error(NetError::Remote(e))),
        },
        Request::Stats => Pending::Immediate(id, Response::Stats(Box::new(shared.engine.stats()))),
        Request::Metrics { format } => {
            let text = match format {
                MetricsFormat::Prometheus => shared.engine.render_metrics_prometheus(),
                MetricsFormat::Json => shared.engine.render_metrics_json(),
            };
            Pending::Immediate(id, Response::Metrics { text })
        }
    }
}

/// Resolve pending responses in acceptance order and write them out.
/// In-order per connection (concurrency comes from the engine's worker
/// pool working many tickets at once, and from many connections);
/// clients still match by request id, so the ordering is a server
/// implementation detail, not a protocol promise.
fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Pending>, max_frame: u32) {
    let mut queue: VecDeque<Pending> = VecDeque::new();
    loop {
        let next = match queue.pop_front() {
            Some(p) => p,
            None => match rx.recv() {
                Ok(p) => p,
                Err(_) => break, // reader gone and nothing pending
            },
        };
        let (id, response) = resolve(next);
        let body = encode_response(id, &response);
        if write_len_frame(&mut stream, &body, max_frame).is_err() {
            // Socket dead: drain remaining tickets so engine replies
            // are consumed, then exit. (Dropping a Ticket is safe; the
            // worker's Reply just goes unread.)
            for _ in rx.iter() {}
            return;
        }
    }
    let _ = stream.flush();
}

fn resolve(p: Pending) -> (u64, Response) {
    match p {
        Pending::Immediate(id, resp) => (id, resp),
        Pending::Search(id, t) => match t.wait() {
            Ok(res) => (id, Response::Knn(res)),
            Err(e) => (id, Response::Error(NetError::Remote(e))),
        },
        Pending::RcNn(id, t) => match t.wait() {
            Ok((nearest, stats)) => (id, Response::RcNn { nearest, stats }),
            Err(e) => (id, Response::Error(NetError::Remote(e))),
        },
        Pending::Insert(id, t) => match t.wait() {
            Ok(point_id) => (id, Response::Insert { id: point_id }),
            Err(e) => (id, Response::Error(NetError::Remote(e))),
        },
        Pending::Remove(id, t) => match t.wait() {
            Ok(removed) => (id, Response::Remove { removed }),
            Err(e) => (id, Response::Error(NetError::Remote(e))),
        },
    }
}
