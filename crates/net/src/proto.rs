//! The DB-LSH binary wire protocol.
//!
//! Every message travels as one **length-prefixed frame**
//! ([`dblsh_data::io::write_len_frame`] /
//! [`dblsh_data::io::read_len_frame`]) whose body
//! follows the `SnapshotWriter`/`SnapshotReader` framing discipline —
//! magic, version, CRC, and a typed error for every way bytes can lie:
//!
//! ```text
//! length   u32 LE   body byte count (bounded; checked before any
//!                   allocation — a lying prefix is a typed error)
//! magic    4 bytes  "DBLN"
//! version  u16 LE   wire protocol version (currently 1)
//! kind     u8       0 = request, 1 = ok-response, 2 = error-response
//! opcode   u8       Ping/Knn/RcNn/Insert/Remove/Stats
//! reqid    u64 LE   request id, echoed verbatim in the response —
//!                   pipelined callers match responses by it
//! payload  ...      opcode-specific, little-endian throughout
//! crc32    u32 LE   CRC-32 over magic..payload
//! ```
//!
//! Payloads are built with [`dblsh_data::io::SectionBuf`] and decoded
//! with bounds-checked [`dblsh_data::io::SectionCursor`] reads, so a
//! truncated or trailing-byte payload surfaces as a typed
//! [`NetError::Protocol`] — never a panic, never a silently misparsed
//! request. [`SearchOptions`] ride each `Knn` request (presence-flagged
//! overrides), so probe-plan knobs are per-request wire state, not
//! server configuration.

use std::fmt;

use dblsh_core::SearchOptions;
use dblsh_data::io::{crc32, SectionBuf, SectionCursor};
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};
use dblsh_serve::EngineStats;

/// Magic bytes opening every frame body.
pub const WIRE_MAGIC: [u8; 4] = *b"DBLN";

/// Current wire protocol version. A frame carrying any other version is
/// answered with a typed [`NetError::Version`] error response — the
/// length prefix keeps framing intact across versions, so the
/// connection survives.
pub const WIRE_VERSION: u16 = 1;

/// Smallest legal frame body: magic + version + kind + opcode + request
/// id + CRC, with an empty payload.
pub const MIN_FRAME: usize = 4 + 2 + 1 + 1 + 8 + 4;

/// Default cap on a frame body. Generous for any sane request (a 1M-d
/// query would still fit) while bounding what a malicious length prefix
/// can make either side allocate.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

const KIND_REQUEST: u8 = 0;
const KIND_OK: u8 = 1;
const KIND_ERROR: u8 = 2;

const OP_PING: u8 = 1;
const OP_KNN: u8 = 2;
const OP_RCNN: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_REMOVE: u8 = 5;
const OP_STATS: u8 = 6;
const OP_METRICS: u8 = 7;

/// Everything that can go wrong on the wire path, client or server
/// side. `Clone + PartialEq` like [`DbLshError`], so tests can assert
/// exact outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A socket-level failure. `op` names the operation; the OS error
    /// text is kept as a string.
    Io { op: &'static str, error: String },
    /// Bytes that violate the wire protocol: bad magic, checksum
    /// mismatch, truncated or oversized frame, unknown opcode, payload
    /// schema violation.
    Protocol { reason: String },
    /// The peer speaks an unsupported wire protocol version.
    Version { got: u16 },
    /// The remote engine reported a typed error ([`DbLshError::Busy`]
    /// for admission-control refusals, [`DbLshError::Shutdown`] for a
    /// draining engine, validation errors for malformed requests, ...).
    Remote(DbLshError),
    /// The connection closed before the response arrived.
    Disconnected,
}

impl NetError {
    /// Shorthand for [`NetError::Protocol`].
    pub fn protocol(reason: impl Into<String>) -> Self {
        NetError::Protocol {
            reason: reason.into(),
        }
    }

    /// Wrap an [`std::io::Error`] under the named operation.
    pub fn io(op: &'static str, error: std::io::Error) -> Self {
        NetError::Io {
            op,
            error: error.to_string(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { op, error } => write!(f, "socket {op} failed: {error}"),
            NetError::Protocol { reason } => write!(f, "wire protocol violation: {reason}"),
            NetError::Version { got } => write!(
                f,
                "unsupported wire protocol version {got} (this build speaks {WIRE_VERSION})"
            ),
            NetError::Remote(e) => write!(f, "remote error: {e}"),
            NetError::Disconnected => write!(f, "connection closed before the response arrived"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<DbLshError> for NetError {
    fn from(e: DbLshError) -> Self {
        NetError::Remote(e)
    }
}

/// Map a frame/payload decoding error (the typed errors the shared
/// [`SectionCursor`]/[`read_len_frame`] helpers produce) onto the wire
/// error space.
///
/// [`read_len_frame`]: dblsh_data::io::read_len_frame
pub fn decode_error(e: DbLshError) -> NetError {
    match e {
        DbLshError::CorruptSnapshot { reason } => NetError::Protocol { reason },
        DbLshError::Io { op, error } => NetError::Io { op, error },
        other => NetError::Remote(other),
    }
}

/// A request, as decoded from (or encoded into) one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the token is echoed back.
    Ping { token: u64 },
    /// (c,k)-ANN search with per-request [`SearchOptions`].
    Knn {
        query: Vec<f32>,
        k: u32,
        opts: SearchOptions,
    },
    /// (r,c)-NN probe at radius `r`.
    RcNn { query: Vec<f32>, r: f64 },
    /// Insert one point; responds with its assigned global id.
    Insert { point: Vec<f32> },
    /// Remove by id; responds with whether the id was live.
    Remove { id: u32 },
    /// Engine counter snapshot.
    Stats,
    /// Scrape the full metrics registry in the requested exposition
    /// format (Prometheus text or JSON).
    Metrics { format: MetricsFormat },
}

/// Exposition format requested by a [`Request::Metrics`] scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    #[default]
    Prometheus,
    /// Single JSON document (keeps raw sparse histogram buckets).
    Json,
}

impl MetricsFormat {
    fn to_wire(self) -> u8 {
        match self {
            MetricsFormat::Prometheus => 0,
            MetricsFormat::Json => 1,
        }
    }

    fn from_wire(v: u8) -> Result<MetricsFormat, DbLshError> {
        match v {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Json),
            other => Err(DbLshError::corrupt(format!(
                "unknown metrics format {other} (0 = prometheus, 1 = json)"
            ))),
        }
    }
}

/// A response, matched to its request by the echoed request id.
#[derive(Debug, Clone)]
pub enum Response {
    Pong {
        token: u64,
    },
    Knn(SearchResult),
    RcNn {
        nearest: Option<Neighbor>,
        stats: QueryStats,
    },
    Insert {
        id: u32,
    },
    Remove {
        removed: bool,
    },
    /// Boxed: the counter snapshot (64 latency buckets) dwarfs every
    /// other variant.
    Stats(Box<EngineStats>),
    /// A rendered metrics exposition document (format chosen by the
    /// request; the bytes are UTF-8 text either way).
    Metrics {
        text: String,
    },
    /// A typed failure: engine-level ([`NetError::Remote`]) or
    /// protocol-level, reported instead of an ok-response.
    Error(NetError),
}

/// One decoded frame: the echoed request id plus the message.
#[derive(Debug, Clone)]
pub enum Message {
    Request(Request),
    Response(Response),
}

// ---------------------------------------------------------------------
// SearchOptions <-> wire
// ---------------------------------------------------------------------

const OPT_BUDGET: u8 = 1 << 0;
const OPT_R_MIN: u8 = 1 << 1;
const OPT_MAX_ROUNDS: u8 = 1 << 2;
const OPT_SKIP_STATS: u8 = 1 << 3;
const OPT_TIME_VERIFICATION: u8 = 1 << 4;
/// Set when the request *disables* the SQ8 pre-filter (the default is
/// on), so pre-flag frames — which never carry the bit — keep decoding
/// to the default behavior.
const OPT_NO_PREFILTER: u8 = 1 << 5;
/// Per-stage tracing requested: the serving engine times the request
/// through the pipeline stages and feeds the stage histograms and
/// slow-query log. Off by default (old frames never carry the bit).
const OPT_TRACE: u8 = 1 << 6;

fn put_options(buf: &mut SectionBuf, opts: &SearchOptions) {
    let mut flags = 0u8;
    flags |= if opts.budget.is_some() { OPT_BUDGET } else { 0 };
    flags |= if opts.r_min.is_some() { OPT_R_MIN } else { 0 };
    flags |= if opts.max_rounds.is_some() {
        OPT_MAX_ROUNDS
    } else {
        0
    };
    flags |= if opts.skip_stats { OPT_SKIP_STATS } else { 0 };
    flags |= if opts.time_verification {
        OPT_TIME_VERIFICATION
    } else {
        0
    };
    flags |= if opts.prefilter { 0 } else { OPT_NO_PREFILTER };
    flags |= if opts.trace { OPT_TRACE } else { 0 };
    buf.put_u8(flags);
    if let Some(b) = opts.budget {
        buf.put_u64(b as u64);
    }
    if let Some(r) = opts.r_min {
        buf.put_f64(r);
    }
    if let Some(m) = opts.max_rounds {
        buf.put_u64(m as u64);
    }
}

fn get_options(c: &mut SectionCursor<'_>) -> Result<SearchOptions, DbLshError> {
    let flags = c.get_u8()?;
    if flags
        & !(OPT_BUDGET
            | OPT_R_MIN
            | OPT_MAX_ROUNDS
            | OPT_SKIP_STATS
            | OPT_TIME_VERIFICATION
            | OPT_NO_PREFILTER
            | OPT_TRACE)
        != 0
    {
        return Err(DbLshError::corrupt(format!(
            "unknown SearchOptions flag bits {flags:#04x}"
        )));
    }
    let mut opts = SearchOptions::default();
    if flags & OPT_BUDGET != 0 {
        opts.budget = Some(get_usize(c)?);
    }
    if flags & OPT_R_MIN != 0 {
        opts.r_min = Some(c.get_f64()?);
    }
    if flags & OPT_MAX_ROUNDS != 0 {
        opts.max_rounds = Some(get_usize(c)?);
    }
    opts.skip_stats = flags & OPT_SKIP_STATS != 0;
    opts.time_verification = flags & OPT_TIME_VERIFICATION != 0;
    opts.prefilter = flags & OPT_NO_PREFILTER == 0;
    opts.trace = flags & OPT_TRACE != 0;
    Ok(opts)
}

fn get_usize(c: &mut SectionCursor<'_>) -> Result<usize, DbLshError> {
    let v = c.get_u64()?;
    usize::try_from(v).map_err(|_| DbLshError::corrupt(format!("value {v} does not fit in usize")))
}

fn put_query(buf: &mut SectionBuf, q: &[f32]) {
    buf.put_u32(q.len() as u32);
    buf.put_f32_slice(q);
}

fn get_query(c: &mut SectionCursor<'_>) -> Result<Vec<f32>, DbLshError> {
    let dim = c.get_u32()? as usize;
    c.get_f32_vec(dim)
}

fn put_stats(buf: &mut SectionBuf, s: &QueryStats) {
    buf.put_u64(s.candidates as u64);
    buf.put_u64(s.rounds as u64);
    buf.put_u64(s.index_probes as u64);
    buf.put_u64(s.prefilter_pruned as u64);
    buf.put_u64(s.prefilter_survivors as u64);
    buf.put_u64(s.verify_nanos);
}

fn get_stats(c: &mut SectionCursor<'_>) -> Result<QueryStats, DbLshError> {
    Ok(QueryStats {
        candidates: get_usize(c)?,
        rounds: get_usize(c)?,
        index_probes: get_usize(c)?,
        prefilter_pruned: get_usize(c)?,
        prefilter_survivors: get_usize(c)?,
        verify_nanos: c.get_u64()?,
    })
}

// ---------------------------------------------------------------------
// Typed error <-> wire
// ---------------------------------------------------------------------

// Error payload: code u16, two u64 auxiliary fields, message bytes.
// Structured variants (DimensionMismatch, UnknownId, CapacityExceeded,
// Version) round-trip exactly through the aux fields; string-carrying
// ones through the message.
const E_BUSY: u16 = 1;
const E_SHUTDOWN: u16 = 2;
const E_EMPTY: u16 = 3;
const E_DIM: u16 = 4;
const E_NONFINITE: u16 = 5;
const E_PARAM: u16 = 6;
const E_CAPACITY: u16 = 7;
const E_UNKNOWN_ID: u16 = 8;
const E_IO: u16 = 9;
const E_CORRUPT: u16 = 10;
const E_DEADLINE: u16 = 11;
const E_POISONED: u16 = 12;
const E_PROTOCOL: u16 = 100;
const E_VERSION: u16 = 101;
const E_DISCONNECTED: u16 = 102;

/// `param` names cross the wire as text but [`DbLshError`] wants
/// `&'static str`; known knobs map back to their static name, anything
/// else to `"remote"` (the original name stays in the reason text).
fn static_param(name: &str) -> &'static str {
    for known in [
        "k",
        "r",
        "budget",
        "r_min",
        "max_rounds",
        "frame",
        "engine",
        "c",
        "w0",
        "l",
        "t",
    ] {
        if name == known {
            return known;
        }
    }
    "remote"
}

fn static_op(name: &str) -> &'static str {
    for known in ["read", "write", "create", "rename", "open", "flush"] {
        if name == known {
            return known;
        }
    }
    "io"
}

fn static_lock(name: &str) -> &'static str {
    for known in ["shard", "router", "wal", "queue", "replica", "registry"] {
        if name == known {
            return known;
        }
    }
    "remote"
}

fn put_error(buf: &mut SectionBuf, err: &NetError) {
    let (code, aux0, aux1, msg): (u16, u64, u64, String) = match err {
        NetError::Remote(e) => match e {
            DbLshError::Busy => (E_BUSY, 0, 0, String::new()),
            DbLshError::Shutdown => (E_SHUTDOWN, 0, 0, String::new()),
            DbLshError::EmptyDataset => (E_EMPTY, 0, 0, String::new()),
            DbLshError::DimensionMismatch { expected, got } => {
                (E_DIM, *expected as u64, *got as u64, String::new())
            }
            DbLshError::NonFiniteCoordinate => (E_NONFINITE, 0, 0, String::new()),
            DbLshError::InvalidParameter { param, reason } => {
                (E_PARAM, 0, 0, format!("{param}\u{1f}{reason}"))
            }
            DbLshError::CapacityExceeded { limit } => (E_CAPACITY, *limit as u64, 0, String::new()),
            DbLshError::UnknownId { id } => (E_UNKNOWN_ID, *id as u64, 0, String::new()),
            DbLshError::Io { op, error } => (E_IO, 0, 0, format!("{op}\u{1f}{error}")),
            DbLshError::CorruptSnapshot { reason } => (E_CORRUPT, 0, 0, reason.clone()),
            DbLshError::DeadlineExceeded => (E_DEADLINE, 0, 0, String::new()),
            DbLshError::LockPoisoned { what } => (E_POISONED, 0, 0, what.to_string()),
        },
        NetError::Protocol { reason } => (E_PROTOCOL, 0, 0, reason.clone()),
        NetError::Version { got } => (E_VERSION, *got as u64, 0, String::new()),
        NetError::Disconnected => (E_DISCONNECTED, 0, 0, String::new()),
        // Socket errors are connection-local and never travel; if one is
        // asked to, degrade to a protocol-level report.
        NetError::Io { op, error } => (E_PROTOCOL, 0, 0, format!("socket {op} failed: {error}")),
    };
    buf.put_u16(code);
    buf.put_u64(aux0);
    buf.put_u64(aux1);
    buf.put_u32(msg.len() as u32);
    buf.put_bytes(msg.as_bytes());
}

fn get_error(c: &mut SectionCursor<'_>) -> Result<NetError, DbLshError> {
    let code = c.get_u16()?;
    let aux0 = c.get_u64()?;
    let aux1 = c.get_u64()?;
    let msg_len = c.get_u32()? as usize;
    let msg = String::from_utf8_lossy(c.get_bytes(msg_len)?).into_owned();
    let split = |s: &str| -> (String, String) {
        match s.split_once('\u{1f}') {
            Some((a, b)) => (a.to_string(), b.to_string()),
            None => (String::new(), s.to_string()),
        }
    };
    Ok(match code {
        E_BUSY => NetError::Remote(DbLshError::Busy),
        E_SHUTDOWN => NetError::Remote(DbLshError::Shutdown),
        E_EMPTY => NetError::Remote(DbLshError::EmptyDataset),
        E_DIM => NetError::Remote(DbLshError::DimensionMismatch {
            expected: aux0 as usize,
            got: aux1 as usize,
        }),
        E_NONFINITE => NetError::Remote(DbLshError::NonFiniteCoordinate),
        E_PARAM => {
            let (param, reason) = split(&msg);
            NetError::Remote(DbLshError::InvalidParameter {
                param: static_param(&param),
                reason,
            })
        }
        E_CAPACITY => NetError::Remote(DbLshError::CapacityExceeded {
            limit: aux0 as usize,
        }),
        E_UNKNOWN_ID => NetError::Remote(DbLshError::UnknownId { id: aux0 as u32 }),
        E_IO => {
            let (op, error) = split(&msg);
            NetError::Remote(DbLshError::Io {
                op: static_op(&op),
                error,
            })
        }
        E_CORRUPT => NetError::Remote(DbLshError::CorruptSnapshot { reason: msg }),
        E_DEADLINE => NetError::Remote(DbLshError::DeadlineExceeded),
        E_POISONED => NetError::Remote(DbLshError::LockPoisoned {
            what: static_lock(&msg),
        }),
        E_PROTOCOL => NetError::Protocol { reason: msg },
        E_VERSION => NetError::Version { got: aux0 as u16 },
        E_DISCONNECTED => NetError::Disconnected,
        other => {
            return Err(DbLshError::corrupt(format!(
                "unknown wire error code {other}"
            )))
        }
    })
}

// ---------------------------------------------------------------------
// EngineStats <-> wire
// ---------------------------------------------------------------------

fn put_engine_stats(buf: &mut SectionBuf, s: &EngineStats) {
    buf.put_u64(s.searches);
    buf.put_u64(s.inserts);
    buf.put_u64(s.removes);
    buf.put_u64(s.errors);
    buf.put_u64(s.rejected);
    buf.put_u64(s.deadline_expired);
    buf.put_u64(s.queue_depth);
    put_stats(buf, &s.query);
    buf.put_f64(s.elapsed_secs);
    buf.put_f64(s.qps);
    buf.put_f64(s.mean_latency_us);
    buf.put_f64(s.p50_latency_us);
    buf.put_f64(s.p99_latency_us);
    buf.put_u64_slice(&s.latency_buckets);
    // Appended after the original layout; readers treat them as
    // optional (forward-compatible defaults when absent).
    buf.put_u64(s.knn_requests);
    buf.put_u64(s.rcnn_requests);
    buf.put_f64(s.uptime_secs);
    buf.put_u64(s.started_at_unix);
}

fn get_engine_stats(c: &mut SectionCursor<'_>) -> Result<EngineStats, DbLshError> {
    let mut s = EngineStats {
        searches: c.get_u64()?,
        inserts: c.get_u64()?,
        removes: c.get_u64()?,
        errors: c.get_u64()?,
        rejected: c.get_u64()?,
        deadline_expired: c.get_u64()?,
        queue_depth: c.get_u64()?,
        query: get_stats(c)?,
        elapsed_secs: c.get_f64()?,
        qps: c.get_f64()?,
        mean_latency_us: c.get_f64()?,
        p50_latency_us: c.get_f64()?,
        p99_latency_us: c.get_f64()?,
        ..EngineStats::default()
    };
    let buckets = c.get_u64_vec(64)?;
    s.latency_buckets.copy_from_slice(&buckets);
    // Fields appended after the original layout: a peer that predates
    // them simply stops here, and the defaults stand.
    if c.remaining() > 0 {
        s.knn_requests = c.get_u64()?;
        s.rcnn_requests = c.get_u64()?;
        s.uptime_secs = c.get_f64()?;
        s.started_at_unix = c.get_u64()?;
    }
    Ok(s)
}

// ---------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------

fn encode_frame(kind: u8, opcode: u8, request_id: u64, payload: SectionBuf) -> Vec<u8> {
    let mut body = Vec::with_capacity(MIN_FRAME + payload.len());
    body.extend_from_slice(&WIRE_MAGIC);
    body.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    body.push(kind);
    body.push(opcode);
    body.extend_from_slice(&request_id.to_le_bytes());
    body.extend_from_slice(payload.as_bytes());
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Encode a request into a frame body (send with
/// [`dblsh_data::io::write_len_frame`]).
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut p = SectionBuf::new();
    let opcode = match req {
        Request::Ping { token } => {
            p.put_u64(*token);
            OP_PING
        }
        Request::Knn { query, k, opts } => {
            p.put_u32(*k);
            put_options(&mut p, opts);
            put_query(&mut p, query);
            OP_KNN
        }
        Request::RcNn { query, r } => {
            p.put_f64(*r);
            put_query(&mut p, query);
            OP_RCNN
        }
        Request::Insert { point } => {
            put_query(&mut p, point);
            OP_INSERT
        }
        Request::Remove { id } => {
            p.put_u32(*id);
            OP_REMOVE
        }
        Request::Stats => OP_STATS,
        Request::Metrics { format } => {
            p.put_u8(format.to_wire());
            OP_METRICS
        }
    };
    encode_frame(KIND_REQUEST, opcode, request_id, p)
}

/// Encode a response into a frame body. The opcode mirrors the request
/// it answers (errors carry the opcode of the failing request, or 0 for
/// connection-level faults).
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut p = SectionBuf::new();
    let (kind, opcode) = match resp {
        Response::Pong { token } => {
            p.put_u64(*token);
            (KIND_OK, OP_PING)
        }
        Response::Knn(res) => {
            p.put_u32(res.neighbors.len() as u32);
            for n in &res.neighbors {
                p.put_u32(n.id);
                p.put_f32(n.dist);
            }
            put_stats(&mut p, &res.stats);
            (KIND_OK, OP_KNN)
        }
        Response::RcNn { nearest, stats } => {
            match nearest {
                Some(n) => {
                    p.put_u8(1);
                    p.put_u32(n.id);
                    p.put_f32(n.dist);
                }
                None => p.put_u8(0),
            }
            put_stats(&mut p, stats);
            (KIND_OK, OP_RCNN)
        }
        Response::Insert { id } => {
            p.put_u32(*id);
            (KIND_OK, OP_INSERT)
        }
        Response::Remove { removed } => {
            p.put_u8(u8::from(*removed));
            (KIND_OK, OP_REMOVE)
        }
        Response::Stats(stats) => {
            put_engine_stats(&mut p, stats);
            (KIND_OK, OP_STATS)
        }
        Response::Metrics { text } => {
            p.put_u32(text.len() as u32);
            p.put_bytes(text.as_bytes());
            (KIND_OK, OP_METRICS)
        }
        Response::Error(err) => {
            put_error(&mut p, err);
            (KIND_ERROR, 0)
        }
    };
    encode_frame(kind, opcode, request_id, p)
}

/// Decode one frame body into `(request_id, message)`. Every violation —
/// short body, bad magic, stale version, checksum mismatch, unknown
/// kind/opcode, payload schema breakage, trailing payload bytes — is a
/// typed [`NetError`], never a panic.
pub fn decode_frame(body: &[u8]) -> Result<(u64, Message), NetError> {
    if body.len() < MIN_FRAME {
        return Err(NetError::protocol(format!(
            "frame body of {} bytes is shorter than the {MIN_FRAME}-byte minimum",
            body.len()
        )));
    }
    if body[..4] != WIRE_MAGIC {
        return Err(NetError::protocol("not a DB-LSH wire frame (bad magic)"));
    }
    let version = u16::from_le_bytes([body[4], body[5]]);
    if version != WIRE_VERSION {
        return Err(NetError::Version { got: version });
    }
    let crc_at = body.len() - 4;
    // Both `try_into`s below are over fixed-width slices of a body whose
    // minimum length was checked above, so the error arms are dead —
    // spelled as protocol errors to keep the decode path panic-free.
    let sent_crc = match body[crc_at..].try_into() {
        Ok(bytes) => u32::from_le_bytes(bytes),
        Err(_) => return Err(NetError::protocol("truncated frame checksum")),
    };
    if crc32(&body[..crc_at]) != sent_crc {
        return Err(NetError::protocol(
            "frame checksum mismatch (payload corrupted in flight)",
        ));
    }
    let kind = body[6];
    let opcode = body[7];
    let request_id = match body[8..16].try_into() {
        Ok(bytes) => u64::from_le_bytes(bytes),
        Err(_) => return Err(NetError::protocol("truncated request id")),
    };
    let mut c = SectionCursor::over(*b"WIRE", &body[16..crc_at]);
    let msg = match kind {
        KIND_REQUEST => Message::Request(decode_request(opcode, &mut c).map_err(decode_error)?),
        KIND_OK => Message::Response(decode_ok(opcode, &mut c).map_err(decode_error)?),
        KIND_ERROR => Message::Response(Response::Error(get_error(&mut c).map_err(decode_error)?)),
        other => return Err(NetError::protocol(format!("unknown frame kind {other}"))),
    };
    c.finish().map_err(decode_error)?;
    Ok((request_id, msg))
}

fn decode_request(opcode: u8, c: &mut SectionCursor<'_>) -> Result<Request, DbLshError> {
    Ok(match opcode {
        OP_PING => Request::Ping {
            token: c.get_u64()?,
        },
        OP_KNN => {
            let k = c.get_u32()?;
            let opts = get_options(c)?;
            let query = get_query(c)?;
            Request::Knn { query, k, opts }
        }
        OP_RCNN => {
            let r = c.get_f64()?;
            let query = get_query(c)?;
            Request::RcNn { query, r }
        }
        OP_INSERT => Request::Insert {
            point: get_query(c)?,
        },
        OP_REMOVE => Request::Remove { id: c.get_u32()? },
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics {
            format: MetricsFormat::from_wire(c.get_u8()?)?,
        },
        other => {
            return Err(DbLshError::corrupt(format!(
                "unknown request opcode {other}"
            )))
        }
    })
}

fn decode_ok(opcode: u8, c: &mut SectionCursor<'_>) -> Result<Response, DbLshError> {
    Ok(match opcode {
        OP_PING => Response::Pong {
            token: c.get_u64()?,
        },
        OP_KNN => {
            let count = c.get_u32()? as usize;
            let mut neighbors = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let id = c.get_u32()?;
                let dist = c.get_f32()?;
                neighbors.push(Neighbor { id, dist });
            }
            let stats = get_stats(c)?;
            Response::Knn(SearchResult { neighbors, stats })
        }
        OP_RCNN => {
            let nearest = match c.get_u8()? {
                0 => None,
                1 => Some(Neighbor {
                    id: c.get_u32()?,
                    dist: c.get_f32()?,
                }),
                other => {
                    return Err(DbLshError::corrupt(format!(
                        "RcNn presence byte must be 0 or 1, got {other}"
                    )))
                }
            };
            let stats = get_stats(c)?;
            Response::RcNn { nearest, stats }
        }
        OP_INSERT => Response::Insert { id: c.get_u32()? },
        OP_REMOVE => Response::Remove {
            removed: match c.get_u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(DbLshError::corrupt(format!(
                        "Remove result byte must be 0 or 1, got {other}"
                    )))
                }
            },
        },
        OP_STATS => Response::Stats(Box::new(get_engine_stats(c)?)),
        OP_METRICS => {
            let len = c.get_u32()? as usize;
            let text = String::from_utf8(c.get_bytes(len)?.to_vec())
                .map_err(|_| DbLshError::corrupt("metrics exposition is not valid UTF-8"))?;
            Response::Metrics { text }
        }
        other => {
            return Err(DbLshError::corrupt(format!(
                "unknown response opcode {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping { token: 0xDEAD_BEEF },
            Request::Knn {
                query: vec![1.0, -2.5, 3.25],
                k: 10,
                opts: SearchOptions {
                    budget: Some(512),
                    r_min: Some(0.75),
                    max_rounds: Some(9),
                    skip_stats: true,
                    time_verification: false,
                    prefilter: false,
                    trace: true,
                },
            },
            Request::Knn {
                query: vec![0.0; 8],
                k: 1,
                opts: SearchOptions::default(),
            },
            Request::RcNn {
                query: vec![9.0, 8.0],
                r: 2.5,
            },
            Request::Insert {
                point: vec![0.5, 0.25],
            },
            Request::Remove { id: 77 },
            Request::Stats,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Json,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        let stats = QueryStats {
            candidates: 42,
            rounds: 3,
            index_probes: 99,
            prefilter_pruned: 17,
            prefilter_survivors: 25,
            verify_nanos: 1234,
        };
        vec![
            Response::Pong { token: 7 },
            Response::Knn(SearchResult {
                neighbors: vec![
                    Neighbor { id: 3, dist: 0.5 },
                    Neighbor { id: 9, dist: 1.25 },
                ],
                stats,
            }),
            Response::RcNn {
                nearest: Some(Neighbor { id: 1, dist: 0.1 }),
                stats,
            },
            Response::RcNn {
                nearest: None,
                stats: QueryStats::default(),
            },
            Response::Insert { id: 1000 },
            Response::Remove { removed: true },
            Response::Stats(Box::new(EngineStats {
                searches: 5,
                knn_requests: 4,
                rcnn_requests: 1,
                rejected: 2,
                deadline_expired: 3,
                queue_depth: 1,
                qps: 123.5,
                uptime_secs: 9.25,
                started_at_unix: 1_754_000_000,
                ..EngineStats::default()
            })),
            Response::Metrics {
                text: "# HELP dblsh_queue_depth Jobs queued.\n# TYPE dblsh_queue_depth gauge\ndblsh_queue_depth 3\n".to_string(),
            },
            Response::Error(NetError::Remote(DbLshError::Busy)),
            Response::Error(NetError::Remote(DbLshError::Shutdown)),
            Response::Error(NetError::Remote(DbLshError::DimensionMismatch {
                expected: 16,
                got: 3,
            })),
            Response::Error(NetError::Remote(DbLshError::invalid(
                "k",
                "must be at least 1",
            ))),
            Response::Error(NetError::Remote(DbLshError::UnknownId { id: 8 })),
            Response::Error(NetError::Remote(DbLshError::DeadlineExceeded)),
            Response::Error(NetError::protocol("bad frame")),
            Response::Error(NetError::Version { got: 9 }),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let body = encode_request(i as u64 + 1, &req);
            let (id, msg) = decode_frame(&body).unwrap();
            assert_eq!(id, i as u64 + 1);
            match msg {
                Message::Request(back) => assert_eq!(back, req, "request {i}"),
                other => panic!("request {i} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        for (i, resp) in sample_responses().into_iter().enumerate() {
            let body = encode_response(i as u64, &resp);
            let (id, msg) = decode_frame(&body).unwrap();
            assert_eq!(id, i as u64);
            let back = match msg {
                Message::Response(r) => r,
                other => panic!("response {i} decoded as {other:?}"),
            };
            match (&resp, &back) {
                (Response::Pong { token: a }, Response::Pong { token: b }) => assert_eq!(a, b),
                (Response::Knn(a), Response::Knn(b)) => {
                    assert_eq!(a.neighbors, b.neighbors);
                    assert_eq!(a.stats, b.stats);
                }
                (
                    Response::RcNn {
                        nearest: a,
                        stats: sa,
                    },
                    Response::RcNn {
                        nearest: b,
                        stats: sb,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(sa, sb);
                }
                (Response::Insert { id: a }, Response::Insert { id: b }) => assert_eq!(a, b),
                (Response::Remove { removed: a }, Response::Remove { removed: b }) => {
                    assert_eq!(a, b)
                }
                (Response::Stats(a), Response::Stats(b)) => assert_eq!(a, b),
                (Response::Metrics { text: a }, Response::Metrics { text: b }) => {
                    assert_eq!(a, b)
                }
                (Response::Error(a), Response::Error(b)) => assert_eq!(a, b),
                (a, b) => panic!("response {i}: {a:?} decoded as {b:?}"),
            }
        }
    }

    #[test]
    fn every_prefix_truncation_is_a_typed_error() {
        let body = encode_request(
            42,
            &Request::Knn {
                query: vec![1.0, 2.0, 3.0, 4.0],
                k: 5,
                opts: SearchOptions {
                    budget: Some(100),
                    ..Default::default()
                },
            },
        );
        for cut in 0..body.len() {
            match decode_frame(&body[..cut]) {
                Err(NetError::Protocol { .. }) | Err(NetError::Version { .. }) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
                Ok(_) => panic!("cut at {cut} decoded successfully"),
            }
        }
    }

    #[test]
    fn every_byte_bit_flip_is_detected() {
        // Flip one bit in every byte position of an encoded frame; each
        // flip must surface as a typed error (magic, version, checksum,
        // or schema) — never a panic, never a silently changed request.
        let body = encode_request(
            7,
            &Request::Knn {
                query: vec![0.5, -1.5],
                k: 3,
                opts: SearchOptions::default(),
            },
        );
        for pos in 0..body.len() {
            let mut bad = body.clone();
            bad[pos] ^= 0x10;
            match decode_frame(&bad) {
                Err(NetError::Protocol { .. }) | Err(NetError::Version { .. }) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other:?}"),
                Ok(_) => panic!("flip at {pos} went undetected"),
            }
        }
    }

    #[test]
    fn metrics_frames_survive_truncation_and_bit_flips_as_typed_errors() {
        // Same torture as the Knn frames, but for the Metrics opcode:
        // every prefix truncation and every in-flight bit flip of both
        // the request and a response must surface as a typed error.
        let req = encode_request(
            11,
            &Request::Metrics {
                format: MetricsFormat::Json,
            },
        );
        let resp = encode_response(
            11,
            &Response::Metrics {
                text: "dblsh_queue_depth 3\n".to_string(),
            },
        );
        for body in [&req, &resp] {
            for cut in 0..body.len() {
                match decode_frame(&body[..cut]) {
                    Err(NetError::Protocol { .. }) | Err(NetError::Version { .. }) => {}
                    Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
                    Ok(_) => panic!("cut at {cut} decoded successfully"),
                }
            }
            for pos in 0..body.len() {
                let mut bad = body.clone();
                bad[pos] ^= 0x10;
                match decode_frame(&bad) {
                    Err(NetError::Protocol { .. }) | Err(NetError::Version { .. }) => {}
                    Err(other) => panic!("flip at {pos}: unexpected error {other:?}"),
                    Ok(_) => panic!("flip at {pos} went undetected"),
                }
            }
        }
    }

    #[test]
    fn unknown_metrics_format_is_a_typed_error() {
        let mut p = SectionBuf::new();
        p.put_u8(9); // no such format
        let body = encode_frame(KIND_REQUEST, OP_METRICS, 1, p);
        assert!(matches!(
            decode_frame(&body),
            Err(NetError::Protocol { .. })
        ));
    }

    #[test]
    fn engine_stats_decode_without_appended_fields_defaults_them() {
        // A frame from a peer that predates the knn/rcnn/uptime fields:
        // encode, strip the appended tail, re-frame, and decode — the
        // original fields survive and the new ones default.
        let full = EngineStats {
            searches: 12,
            knn_requests: 11,
            rcnn_requests: 1,
            inserts: 4,
            uptime_secs: 33.0,
            started_at_unix: 1_700_000_000,
            ..EngineStats::default()
        };
        let mut p = SectionBuf::new();
        put_engine_stats(&mut p, &full);
        // appended tail: knn u64 + rcnn u64 + uptime f64 + started u64
        let old_len = p.len() - 32;
        let mut old = SectionBuf::new();
        old.put_bytes(&p.as_bytes()[..old_len]);
        let body = encode_frame(KIND_OK, OP_STATS, 5, old);
        let (_, msg) = decode_frame(&body).unwrap();
        let got = match msg {
            Message::Response(Response::Stats(s)) => *s,
            other => panic!("decoded as {other:?}"),
        };
        assert_eq!(got.searches, 12);
        assert_eq!(got.inserts, 4);
        assert_eq!(got.knn_requests, 0, "absent field must default");
        assert_eq!(got.rcnn_requests, 0);
        assert_eq!(got.uptime_secs, 0.0);
        assert_eq!(got.started_at_unix, 0);
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // A frame whose payload holds more bytes than the opcode's
        // schema consumes: CRC passes (bytes are authentic) but decode
        // must still refuse — reader and writer disagree on the schema.
        let mut p = SectionBuf::new();
        p.put_u32(5); // Remove id
        p.put_u8(0xAA); // trailing garbage
        let body = encode_frame(KIND_REQUEST, OP_REMOVE, 1, p);
        assert!(matches!(
            decode_frame(&body),
            Err(NetError::Protocol { .. })
        ));
    }

    #[test]
    fn unknown_opcode_and_kind_rejected() {
        let body = encode_frame(KIND_REQUEST, 0xFF, 1, SectionBuf::new());
        assert!(matches!(
            decode_frame(&body),
            Err(NetError::Protocol { .. })
        ));
        let body = encode_frame(9, OP_PING, 1, SectionBuf::new());
        assert!(matches!(
            decode_frame(&body),
            Err(NetError::Protocol { .. })
        ));
    }

    #[test]
    fn stale_version_is_typed() {
        let mut body = encode_request(3, &Request::Stats);
        // Overwrite the version field and re-stamp the CRC so only the
        // version disagrees.
        body[4..6].copy_from_slice(&7u16.to_le_bytes());
        let crc_at = body.len() - 4;
        let crc = crc32(&body[..crc_at]);
        body[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&body).unwrap_err(),
            NetError::Version { got: 7 }
        );
    }

    #[test]
    fn error_display_is_descriptive() {
        let cases: Vec<(NetError, &str)> = vec![
            (
                NetError::io("read", std::io::Error::other("boom")),
                "socket read",
            ),
            (NetError::protocol("bad magic"), "bad magic"),
            (NetError::Version { got: 3 }, "version 3"),
            (NetError::Remote(DbLshError::Busy), "queue is full"),
            (NetError::Disconnected, "closed before"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }
}
