//! A thin blocking client for the DB-LSH wire protocol.
//!
//! One [`TcpStream`] per client; requests are written as frames and
//! responses matched back by the echoed request id, so callers may
//! **pipeline**: submit several requests with [`DbLshClient::submit`]
//! and collect their responses in any order with
//! [`DbLshClient::wait`]. The convenience methods ([`knn`], [`insert`],
//! ...) are submit-then-wait pairs.
//!
//! On a broken connection every in-flight request resolves to
//! [`NetError::Disconnected`]; the next submission transparently
//! reconnects (one attempt — callers control retry policy).
//!
//! [`knn`]: DbLshClient::knn
//! [`insert`]: DbLshClient::insert

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use dblsh_core::SearchOptions;
use dblsh_data::io::{read_len_frame, write_len_frame};
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};
use dblsh_serve::EngineStats;

use crate::proto::{
    decode_error, encode_request, Message, NetError, Request, Response, DEFAULT_MAX_FRAME,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest frame body this client will accept from the server.
    pub max_frame: u32,
    /// Socket read timeout while waiting for a response; a response
    /// slower than this resolves to a typed [`NetError::Io`]. `None`
    /// waits forever.
    pub response_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame: DEFAULT_MAX_FRAME,
            response_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Handle to one pipelined in-flight request; redeem it with
/// [`DbLshClient::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

/// Blocking TCP client. Not `Sync` — share across threads by giving
/// each thread its own client (connections are cheap; the server's
/// engine is the shared resource).
pub struct DbLshClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different request id
    /// (pipelined completion order is the server's choice).
    ready: HashMap<u64, Response>,
    /// Ids submitted and not yet redeemed; on disconnect these all
    /// resolve to [`NetError::Disconnected`].
    in_flight: Vec<u64>,
}

impl DbLshClient {
    /// Connect to a [`DbLshServer`](crate::DbLshServer) at `addr`.
    pub fn connect(addr: &str) -> Result<DbLshClient, NetError> {
        DbLshClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit [`ClientConfig`].
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<DbLshClient, NetError> {
        let mut client = DbLshClient {
            addr: addr.to_string(),
            config,
            stream: None,
            next_id: 1,
            ready: HashMap::new(),
            in_flight: Vec::new(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// (Re-)establish the connection, abandoning any in-flight requests
    /// (they resolve to [`NetError::Disconnected`] when redeemed).
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.drop_connection();
        let stream = TcpStream::connect(&self.addr).map_err(|e| NetError::io("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("set_nodelay", e))?;
        stream
            .set_read_timeout(self.config.response_timeout)
            .map_err(|e| NetError::io("set_read_timeout", e))?;
        self.stream = Some(stream);
        Ok(())
    }

    fn drop_connection(&mut self) {
        self.stream = None;
        self.ready.clear();
        self.in_flight.clear();
    }

    /// True while the underlying socket is believed healthy.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    // -- pipelined API ------------------------------------------------

    /// Write one request frame without waiting for its response.
    /// Reconnects first if the previous connection broke.
    pub fn submit(&mut self, req: &Request) -> Result<RequestId, NetError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let body = encode_request(id, req);
        let stream = self.stream.as_mut().expect("connected above");
        if let Err(e) = write_len_frame(stream, &body, self.config.max_frame) {
            self.drop_connection();
            return Err(decode_error(e));
        }
        self.in_flight.push(id);
        Ok(RequestId(id))
    }

    /// Block until the response for `id` arrives (responses for other
    /// in-flight requests received meanwhile are buffered for their own
    /// `wait` calls).
    pub fn wait(&mut self, id: RequestId) -> Result<Response, NetError> {
        let RequestId(id) = id;
        loop {
            if let Some(resp) = self.ready.remove(&id) {
                self.in_flight.retain(|&x| x != id);
                return Ok(resp);
            }
            if !self.in_flight.contains(&id) {
                return Err(NetError::Disconnected);
            }
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                None => {
                    self.in_flight.clear();
                    return Err(NetError::Disconnected);
                }
            };
            let body = match read_len_frame(stream, self.config.max_frame) {
                Ok(Some(body)) => body,
                Ok(None) => {
                    self.drop_connection();
                    return Err(NetError::Disconnected);
                }
                Err(e) => {
                    self.drop_connection();
                    return Err(decode_error(e));
                }
            };
            let (resp_id, msg) = match crate::proto::decode_frame(&body) {
                Ok(decoded) => decoded,
                Err(e) => {
                    // A frame we cannot decode means we may be out of
                    // sync; the only safe recovery is a fresh connection.
                    self.drop_connection();
                    return Err(e);
                }
            };
            let resp = match msg {
                Message::Response(r) => r,
                Message::Request(_) => {
                    self.drop_connection();
                    return Err(NetError::protocol(
                        "server sent a request frame where a response was expected",
                    ));
                }
            };
            if resp_id == 0 {
                // Connection-level error (refusal, drain, framing loss):
                // applies to every in-flight request.
                self.drop_connection();
                return match resp {
                    Response::Error(err) => Err(err),
                    _ => Err(NetError::protocol("request id 0 carried a non-error frame")),
                };
            }
            self.ready.insert(resp_id, resp);
        }
    }

    // -- blocking convenience wrappers --------------------------------

    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.submit(req)?;
        self.wait(id)
    }

    /// Round-trip a ping; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, NetError> {
        match self.call(&Request::Ping { token })? {
            Response::Pong { token } => Ok(token),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// (c,k)-ANN over the wire, answers byte-identical to
    /// `DbLsh::search_canonical` on the same data.
    pub fn knn(&mut self, query: &[f32], k: usize) -> Result<SearchResult, NetError> {
        self.knn_with(query, k, SearchOptions::default())
    }

    /// `knn` with per-request [`SearchOptions`].
    pub fn knn_with(
        &mut self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult, NetError> {
        let req = Request::Knn {
            query: query.to_vec(),
            k: u32::try_from(k)
                .map_err(|_| NetError::Remote(DbLshError::invalid("k", "does not fit in u32")))?,
            opts,
        };
        match self.call(&req)? {
            Response::Knn(res) => Ok(res),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Knn", &other)),
        }
    }

    /// (r,c)-NN probe at radius `r`.
    pub fn r_c_nn(
        &mut self,
        query: &[f32],
        r: f64,
    ) -> Result<(Option<Neighbor>, QueryStats), NetError> {
        let req = Request::RcNn {
            query: query.to_vec(),
            r,
        };
        match self.call(&req)? {
            Response::RcNn { nearest, stats } => Ok((nearest, stats)),
            Response::Error(e) => Err(e),
            other => Err(unexpected("RcNn", &other)),
        }
    }

    /// Insert one point; returns its global id.
    pub fn insert(&mut self, point: &[f32]) -> Result<u32, NetError> {
        let req = Request::Insert {
            point: point.to_vec(),
        };
        match self.call(&req)? {
            Response::Insert { id } => Ok(id),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Insert", &other)),
        }
    }

    /// Remove by id; `true` if the id was live.
    pub fn remove(&mut self, id: u32) -> Result<bool, NetError> {
        match self.call(&Request::Remove { id })? {
            Response::Remove { removed } => Ok(removed),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Remove", &other)),
        }
    }

    /// Engine counter snapshot (includes `queue_depth` and `rejected`,
    /// so a remote load generator can watch admission control work).
    pub fn stats(&mut self) -> Result<EngineStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Stats", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    let got = match got {
        Response::Pong { .. } => "Pong",
        Response::Knn(_) => "Knn",
        Response::RcNn { .. } => "RcNn",
        Response::Insert { .. } => "Insert",
        Response::Remove { .. } => "Remove",
        Response::Stats(_) => "Stats",
        Response::Error(_) => "Error",
    };
    NetError::protocol(format!("expected a {wanted} response, got {got}"))
}
