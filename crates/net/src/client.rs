//! A thin blocking client for the DB-LSH wire protocol.
//!
//! One [`TcpStream`] per client; requests are written as frames and
//! responses matched back by the echoed request id, so callers may
//! **pipeline**: submit several requests with [`DbLshClient::submit`]
//! and collect their responses in any order with
//! [`DbLshClient::wait`]. The convenience methods ([`knn`], [`insert`],
//! ...) are submit-then-wait pairs.
//!
//! On a broken connection every in-flight request resolves to
//! [`NetError::Disconnected`]; the next submission transparently
//! reconnects, governed by [`RetryPolicy`] (default: one attempt).
//!
//! # Retry semantics
//!
//! With a [`RetryPolicy`] of more than one attempt, the blocking
//! convenience calls retry — with bounded, seeded-jitter exponential
//! backoff — exactly two failure classes:
//!
//! * **connect-phase failures** (no frame ever reached the server), and
//! * **typed [`DbLshError::Busy`]** (the server *refused* the request
//!   at admission — it never executed).
//!
//! Both are provably side-effect-free, so even an `insert` is safe to
//! resend. A disconnect *after* a request was written is deliberately
//! **not** retried: the server may or may not have executed it, and
//! re-sending a write could double-apply. That ambiguity is the
//! caller's to resolve (e.g. re-reading state).
//!
//! [`knn`]: DbLshClient::knn
//! [`insert`]: DbLshClient::insert

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use dblsh_core::SearchOptions;
use dblsh_data::io::{read_len_frame, write_len_frame};
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};
use dblsh_serve::EngineStats;

use crate::proto::{
    decode_error, encode_request, Message, MetricsFormat, NetError, Request, Response,
    DEFAULT_MAX_FRAME,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest frame body this client will accept from the server.
    pub max_frame: u32,
    /// Socket read timeout while waiting for a response; a response
    /// slower than this resolves to a typed [`NetError::Io`]. `None`
    /// waits forever.
    pub response_timeout: Option<Duration>,
    /// Retry behaviour for connect failures and typed `Busy` refusals
    /// (see the [module docs](self) for exactly what is — and is not —
    /// retried). Defaults to [`RetryPolicy::disabled`]: one attempt,
    /// every failure surfaces immediately.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame: DEFAULT_MAX_FRAME,
            response_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::disabled(),
        }
    }
}

/// Bounded exponential backoff with seeded jitter.
///
/// Attempt `n` (zero-based) that fails retryably sleeps
/// `min(base · 2ⁿ, cap)`, scaled by a jitter factor in `[0.5, 1.0]`
/// drawn deterministically from `jitter_seed` and `n` — so a fleet of
/// load generators configured with different seeds decorrelates its
/// retry storms, while any single configuration replays identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included); `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff ceiling — exponential growth clamps here.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// One attempt, no retries — the historical client behaviour, and
    /// the default.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            jitter_seed: 0x5EED,
        }
    }

    /// `max_attempts` total attempts with the default backoff shape
    /// (10 ms base, 1 s cap).
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::disabled()
        }
    }

    /// The sleep before retrying after zero-based failed attempt
    /// `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(30)).unwrap_or(u32::MAX))
            .min(self.cap);
        // Jitter in [0.5, 1.0): decorrelates concurrent retriers
        // without ever collapsing the wait to zero.
        let bits = jitter_mix(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37));
        let factor = 0.5 + 0.5 * ((bits >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(factor)
    }
}

/// SplitMix64 finalizer — the jitter stream's only state.
fn jitter_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Is `err` one of the two provably-unexecuted failure classes the
/// policy may retry?
fn retryable(err: &NetError) -> bool {
    match err {
        // Admission control refused it; the engine never saw it.
        NetError::Remote(DbLshError::Busy) => true,
        // Connect-phase failure: no frame was ever written.
        NetError::Io { op, .. } => {
            matches!(*op, "connect" | "set_nodelay" | "set_read_timeout")
        }
        _ => false,
    }
}

/// Handle to one pipelined in-flight request; redeem it with
/// [`DbLshClient::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

/// Blocking TCP client. Not `Sync` — share across threads by giving
/// each thread its own client (connections are cheap; the server's
/// engine is the shared resource).
pub struct DbLshClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different request id
    /// (pipelined completion order is the server's choice).
    ready: HashMap<u64, Response>,
    /// Ids submitted and not yet redeemed; on disconnect these all
    /// resolve to [`NetError::Disconnected`].
    in_flight: Vec<u64>,
}

impl DbLshClient {
    /// Connect to a [`DbLshServer`](crate::DbLshServer) at `addr`.
    pub fn connect(addr: &str) -> Result<DbLshClient, NetError> {
        DbLshClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit [`ClientConfig`].
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<DbLshClient, NetError> {
        let mut client = DbLshClient {
            addr: addr.to_string(),
            config,
            stream: None,
            next_id: 1,
            ready: HashMap::new(),
            in_flight: Vec::new(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// (Re-)establish the connection, abandoning any in-flight requests
    /// (they resolve to [`NetError::Disconnected`] when redeemed).
    /// Connect failures are retried per [`ClientConfig::retry`] with
    /// exponential backoff before the last error surfaces.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let policy = self.config.retry.clone();
        let mut attempt = 0u32;
        loop {
            match self.reconnect_once() {
                Ok(()) => return Ok(()),
                Err(e) if attempt + 1 < policy.max_attempts && retryable(&e) => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn reconnect_once(&mut self) -> Result<(), NetError> {
        self.drop_connection();
        let stream = TcpStream::connect(&self.addr).map_err(|e| NetError::io("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("set_nodelay", e))?;
        stream
            .set_read_timeout(self.config.response_timeout)
            .map_err(|e| NetError::io("set_read_timeout", e))?;
        self.stream = Some(stream);
        Ok(())
    }

    fn drop_connection(&mut self) {
        self.stream = None;
        self.ready.clear();
        self.in_flight.clear();
    }

    /// True while the underlying socket is believed healthy.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    // -- pipelined API ------------------------------------------------

    /// Write one request frame without waiting for its response.
    /// Reconnects first if the previous connection broke.
    pub fn submit(&mut self, req: &Request) -> Result<RequestId, NetError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let body = encode_request(id, req);
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Disconnected);
        };
        if let Err(e) = write_len_frame(stream, &body, self.config.max_frame) {
            self.drop_connection();
            return Err(decode_error(e));
        }
        self.in_flight.push(id);
        Ok(RequestId(id))
    }

    /// Block until the response for `id` arrives (responses for other
    /// in-flight requests received meanwhile are buffered for their own
    /// `wait` calls).
    pub fn wait(&mut self, id: RequestId) -> Result<Response, NetError> {
        let RequestId(id) = id;
        loop {
            if let Some(resp) = self.ready.remove(&id) {
                self.in_flight.retain(|&x| x != id);
                return Ok(resp);
            }
            if !self.in_flight.contains(&id) {
                return Err(NetError::Disconnected);
            }
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                None => {
                    self.in_flight.clear();
                    return Err(NetError::Disconnected);
                }
            };
            let body = match read_len_frame(stream, self.config.max_frame) {
                Ok(Some(body)) => body,
                Ok(None) => {
                    self.drop_connection();
                    return Err(NetError::Disconnected);
                }
                Err(e) => {
                    self.drop_connection();
                    return Err(decode_error(e));
                }
            };
            let (resp_id, msg) = match crate::proto::decode_frame(&body) {
                Ok(decoded) => decoded,
                Err(e) => {
                    // A frame we cannot decode means we may be out of
                    // sync; the only safe recovery is a fresh connection.
                    self.drop_connection();
                    return Err(e);
                }
            };
            let resp = match msg {
                Message::Response(r) => r,
                Message::Request(_) => {
                    self.drop_connection();
                    return Err(NetError::protocol(
                        "server sent a request frame where a response was expected",
                    ));
                }
            };
            if resp_id == 0 {
                // Connection-level error (refusal, drain, framing loss):
                // applies to every in-flight request.
                self.drop_connection();
                return match resp {
                    Response::Error(err) => Err(err),
                    _ => Err(NetError::protocol("request id 0 carried a non-error frame")),
                };
            }
            self.ready.insert(resp_id, resp);
        }
    }

    // -- blocking convenience wrappers --------------------------------

    /// Submit-then-wait with the configured retry policy. Only
    /// [`retryable`] failures loop (Busy refusals, connect-phase
    /// errors); note the connect attempts inside [`Self::reconnect`]
    /// have their own budget, so a dead server costs at most
    /// `max_attempts²` socket probes.
    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let policy = self.config.retry.clone();
        let mut attempt = 0u32;
        loop {
            match self.call_once(req) {
                Err(e) if attempt + 1 < policy.max_attempts && retryable(&e) => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                result => return result,
            }
        }
    }

    fn call_once(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.submit(req)?;
        match self.wait(id)? {
            // A typed Busy response unwraps to an error here so the
            // retry classifier sees it; non-error responses and every
            // other error pass through untouched.
            Response::Error(e @ NetError::Remote(DbLshError::Busy)) => Err(e),
            resp => Ok(resp),
        }
    }

    /// Round-trip a ping; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, NetError> {
        match self.call(&Request::Ping { token })? {
            Response::Pong { token } => Ok(token),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// (c,k)-ANN over the wire, answers byte-identical to
    /// `DbLsh::search_canonical` on the same data.
    pub fn knn(&mut self, query: &[f32], k: usize) -> Result<SearchResult, NetError> {
        self.knn_with(query, k, SearchOptions::default())
    }

    /// `knn` with per-request [`SearchOptions`].
    pub fn knn_with(
        &mut self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<SearchResult, NetError> {
        let req = Request::Knn {
            query: query.to_vec(),
            k: u32::try_from(k)
                .map_err(|_| NetError::Remote(DbLshError::invalid("k", "does not fit in u32")))?,
            opts,
        };
        match self.call(&req)? {
            Response::Knn(res) => Ok(res),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Knn", &other)),
        }
    }

    /// (r,c)-NN probe at radius `r`.
    pub fn r_c_nn(
        &mut self,
        query: &[f32],
        r: f64,
    ) -> Result<(Option<Neighbor>, QueryStats), NetError> {
        let req = Request::RcNn {
            query: query.to_vec(),
            r,
        };
        match self.call(&req)? {
            Response::RcNn { nearest, stats } => Ok((nearest, stats)),
            Response::Error(e) => Err(e),
            other => Err(unexpected("RcNn", &other)),
        }
    }

    /// Insert one point; returns its global id.
    pub fn insert(&mut self, point: &[f32]) -> Result<u32, NetError> {
        let req = Request::Insert {
            point: point.to_vec(),
        };
        match self.call(&req)? {
            Response::Insert { id } => Ok(id),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Insert", &other)),
        }
    }

    /// Remove by id; `true` if the id was live.
    pub fn remove(&mut self, id: u32) -> Result<bool, NetError> {
        match self.call(&Request::Remove { id })? {
            Response::Remove { removed } => Ok(removed),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Remove", &other)),
        }
    }

    /// Engine counter snapshot (includes `queue_depth` and `rejected`,
    /// so a remote load generator can watch admission control work).
    pub fn stats(&mut self) -> Result<EngineStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Scrape the server's full metrics registry in the requested
    /// exposition format (Prometheus text or JSON document).
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, NetError> {
        match self.call(&Request::Metrics { format })? {
            Response::Metrics { text } => Ok(text),
            Response::Error(e) => Err(e),
            other => Err(unexpected("Metrics", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    let got = match got {
        Response::Pong { .. } => "Pong",
        Response::Knn(_) => "Knn",
        Response::RcNn { .. } => "RcNn",
        Response::Insert { .. } => "Insert",
        Response::Remove { .. } => "Remove",
        Response::Stats(_) => "Stats",
        Response::Metrics { .. } => "Metrics",
        Response::Error(_) => "Error",
    };
    NetError::protocol(format!("expected a {wanted} response, got {got}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            jitter_seed: 1,
        };
        // Jitter scales by [0.5, 1.0), so bounds per attempt are
        // [exp/2, exp).
        for (attempt, exp_ms) in [(0u32, 10u64), (1, 20), (2, 40), (3, 80), (4, 160)] {
            let b = policy.backoff(attempt);
            assert!(
                b >= Duration::from_millis(exp_ms / 2) && b < Duration::from_millis(exp_ms),
                "attempt {attempt}: {b:?} outside [{}/2, {}) ms",
                exp_ms,
                exp_ms
            );
        }
        // Attempts past the cap clamp there (before jitter).
        for attempt in 5..64 {
            assert!(policy.backoff(attempt) < Duration::from_millis(200));
            assert!(policy.backoff(attempt) >= Duration::from_millis(100));
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy {
            jitter_seed: 42,
            ..RetryPolicy::new(5)
        };
        let b = a.clone();
        for attempt in 0..10 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt));
        }
        // A different seed decorrelates at least one attempt.
        let c = RetryPolicy {
            jitter_seed: 43,
            ..RetryPolicy::new(5)
        };
        assert!((0..10).any(|n| a.backoff(n) != c.backoff(n)));
    }

    #[test]
    fn only_unexecuted_failures_are_retryable() {
        assert!(retryable(&NetError::Remote(DbLshError::Busy)));
        assert!(retryable(&NetError::io(
            "connect",
            std::io::Error::from(std::io::ErrorKind::ConnectionRefused),
        )));
        // Ambiguous or deterministic failures must surface immediately.
        assert!(!retryable(&NetError::Disconnected));
        assert!(!retryable(&NetError::io(
            "write",
            std::io::Error::from(std::io::ErrorKind::BrokenPipe),
        )));
        assert!(!retryable(&NetError::Remote(DbLshError::Shutdown)));
        assert!(!retryable(&NetError::Remote(DbLshError::DeadlineExceeded)));
        assert!(!retryable(&NetError::Remote(DbLshError::UnknownId {
            id: 1
        })));
        assert!(!retryable(&NetError::protocol("desync")));
    }

    #[test]
    fn policy_constructors_clamp_sanely() {
        assert_eq!(RetryPolicy::new(0).max_attempts, 1, "0 attempts is 1");
        assert_eq!(RetryPolicy::disabled().max_attempts, 1);
        assert_eq!(RetryPolicy::default(), RetryPolicy::disabled());
    }
}
