//! End-to-end tests over real sockets: canonical-answer parity through
//! TCP, graceful drain under load, and protocol robustness against a
//! live server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dblsh_core::{DbLsh, DbLshBuilder};
use dblsh_data::io::{read_len_frame, write_len_frame};
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
use dblsh_data::DbLshError;
use dblsh_net::proto::{decode_frame, encode_request, Message};
use dblsh_net::{
    ClientConfig, DbLshClient, DbLshServer, NetError, Request, Response, RetryPolicy, ServerConfig,
    DEFAULT_MAX_FRAME,
};
use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};

struct Fixture {
    data: Arc<dblsh_data::Dataset>,
    reference: DbLsh,
    engine: Arc<Engine>,
}

/// One dataset, one resolved parameter set, two indexes over it: the
/// unsharded reference (canonical ladder) and a 4-shard engine behind
/// the server. Identical parameters are what make byte-identical
/// answers a fair demand.
fn fixture(n: usize, dim: usize, workers: usize, queue: usize) -> Fixture {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n,
        dim,
        seed: 7,
        ..Default::default()
    }));
    let builder = DbLshBuilder::new().l(3).seed(42).auto_r_min();
    let params = builder
        .resolve_params_for(&data)
        .expect("valid configuration");
    let sharded = ShardedDbLsh::build_with_params(&data, &params, 4, ShardPolicy::RoundRobin)
        .expect("sharded build");
    let reference = DbLsh::build(Arc::clone(&data), &params).expect("reference build");
    let engine = Arc::new(Engine::start(
        Arc::new(sharded),
        EngineConfig {
            workers,
            queue_capacity: queue,
        },
    ));
    Fixture {
        data,
        reference,
        engine,
    }
}

fn start_server(engine: &Arc<Engine>, config: ServerConfig) -> DbLshServer {
    DbLshServer::bind("127.0.0.1:0", Arc::clone(engine), config).expect("bind on loopback")
}

#[test]
fn tcp_answers_are_byte_identical_to_search_canonical() {
    let fx = fixture(800, 12, 2, 64);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut client = DbLshClient::connect(&server.local_addr().to_string()).expect("connect");

    let opts = dblsh_core::SearchOptions::default();
    for qi in [0usize, 17, 311, 799] {
        let q = fx.data.point(qi).to_vec();
        let over_wire = client.knn(&q, 10).expect("wire search");
        let local = fx.reference.search_canonical(&q, 10, &opts).expect("local");
        let wire_bytes: Vec<(u32, u32)> = over_wire
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        let local_bytes: Vec<(u32, u32)> = local
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        assert_eq!(wire_bytes, local_bytes, "query {qi}: TCP answer diverged");
    }
    server.shutdown();
}

#[test]
fn full_api_round_trips_over_one_connection() {
    let fx = fixture(400, 8, 2, 64);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut client = DbLshClient::connect(&server.local_addr().to_string()).expect("connect");

    assert_eq!(client.ping(0xFEED).expect("ping"), 0xFEED);

    let q = fx.data.point(3).to_vec();
    let (nearest, _stats) = client.r_c_nn(&q, 1e6).expect("rcnn");
    assert_eq!(nearest.expect("huge radius must hit").id, 3);

    let new_point = vec![0.25f32; 8];
    let id = client.insert(&new_point).expect("insert");
    let res = client.knn(&new_point, 1).expect("search for inserted");
    assert_eq!(res.neighbors[0].id, id);
    assert!(client.remove(id).expect("remove"));
    assert!(!client.remove(id).expect("double remove reports dead id"));

    // Typed validation errors travel: wrong dimension, k = 0.
    match client.knn(&[1.0, 2.0], 5) {
        Err(NetError::Remote(DbLshError::DimensionMismatch {
            expected: 8,
            got: 2,
        })) => {}
        other => panic!("expected a typed dimension mismatch, got {other:?}"),
    }
    match client.knn(&q, 0) {
        Err(NetError::Remote(DbLshError::InvalidParameter { .. })) => {}
        other => panic!("expected a typed parameter error, got {other:?}"),
    }
    // The connection survives typed errors.
    assert_eq!(client.ping(1).expect("still alive"), 1);

    let stats = client.stats().expect("stats over the wire");
    assert!(stats.searches >= 2, "stats: {stats:?}");
    assert_eq!(stats.inserts, 1);
    assert_eq!(stats.removes, 2, "both remove requests executed");

    server.shutdown();
}

#[test]
fn metrics_scrape_over_the_wire_reflects_traced_traffic() {
    let fx = fixture(400, 8, 2, 64);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut client = DbLshClient::connect(&server.local_addr().to_string()).expect("connect");

    let q = fx.data.point(5).to_vec();
    // One untraced and one traced search; tracing must not change the
    // answer even through the wire.
    let plain = client.knn(&q, 4).expect("untraced knn");
    let traced = client
        .knn_with(
            &q,
            4,
            dblsh_core::SearchOptions {
                trace: true,
                ..Default::default()
            },
        )
        .expect("traced knn");
    assert_eq!(plain.neighbors, traced.neighbors);
    assert_eq!(plain.stats, traced.stats);

    let prom = client
        .metrics(dblsh_net::MetricsFormat::Prometheus)
        .expect("prometheus scrape");
    for needle in [
        "# TYPE dblsh_requests_total counter",
        "dblsh_requests_total{op=\"knn\"} 2\n",
        "dblsh_stage_seconds{stage=\"tree_probe\"",
        "dblsh_live_points 400\n",
        "dblsh_uptime_seconds",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }
    let json = client
        .metrics(dblsh_net::MetricsFormat::Json)
        .expect("json scrape");
    assert!(json.starts_with("{\"metrics\":["), "{json}");
    assert!(
        json.contains("\"name\":\"dblsh_request_seconds\""),
        "{json}"
    );

    // Stats opcode carries the new per-opcode and uptime fields.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.knn_requests, 2);
    assert_eq!(stats.rcnn_requests, 0);
    assert_eq!(stats.searches, 2);
    assert!(stats.uptime_secs > 0.0);
    assert!(stats.started_at_unix > 0);
    server.shutdown();
}

#[test]
fn pipelined_requests_resolve_out_of_order() {
    let fx = fixture(400, 8, 2, 64);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut client = DbLshClient::connect(&server.local_addr().to_string()).expect("connect");

    let ids: Vec<_> = (0..8)
        .map(|i| {
            client
                .submit(&Request::Knn {
                    query: fx.data.point(i).to_vec(),
                    k: 5,
                    opts: Default::default(),
                })
                .expect("submit")
        })
        .collect();
    // Redeem in reverse submission order: responses buffered by id.
    for (i, id) in ids.into_iter().enumerate().rev() {
        match client.wait(id).expect("pipelined response") {
            Response::Knn(res) => assert_eq!(res.neighbors[0].id, i as u32),
            other => panic!("expected Knn, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn graceful_drain_completes_accepted_requests_then_refuses_connects() {
    // Single worker + deep queue: accepted requests pile up behind one
    // slow lane, so shutdown provably overlaps in-flight work.
    let fx = fixture(2000, 24, 1, 256);
    let server = start_server(&fx.engine, ServerConfig::default());
    let addr = server.local_addr().to_string();
    let mut client = DbLshClient::connect(&addr).expect("connect");

    const N: usize = 40;
    let ids: Vec<_> = (0..N)
        .map(|i| {
            client
                .submit(&Request::Knn {
                    query: fx.data.point(i % 2000).to_vec(),
                    k: 50,
                    opts: Default::default(),
                })
                .expect("submit")
        })
        .collect();

    // Wait until the server has *accepted* (decoded + dispatched) every
    // frame, so none can be lost to the drain; the engine is still
    // chewing on them when shutdown begins.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().requests < N as u64 {
        assert!(Instant::now() < deadline, "server never accepted the load");
        std::thread::sleep(Duration::from_millis(2));
    }

    let shutdown = std::thread::spawn(move || server.shutdown());

    // Every accepted request must complete with a real answer — the
    // drain waits for engine tickets and flushes every response.
    for (i, id) in ids.into_iter().enumerate() {
        match client.wait(id).expect("accepted request must be answered") {
            Response::Knn(res) => {
                assert_eq!(res.neighbors[0].id, (i % 2000) as u32, "request {i}")
            }
            other => panic!("request {i}: expected Knn, got {other:?}"),
        }
    }

    let stats = shutdown.join().expect("no panics anywhere in the server");
    assert!(stats.requests >= N as u64);

    // The listener is gone: subsequent connects fail cleanly at the OS
    // level (no hang, no half-open protocol state).
    match DbLshClient::connect(&addr) {
        Err(NetError::Io { op: "connect", .. }) => {}
        Err(other) => panic!("expected a clean connect refusal, got {other:?}"),
        Ok(_) => panic!("connect succeeded after shutdown"),
    }
}

#[test]
fn busy_engine_refuses_over_the_wire_with_typed_error() {
    // Tiny queue + one worker + heavy queries: flooding pipelined
    // requests must surface at least one typed Busy refusal while every
    // other request still gets a well-formed answer.
    let fx = fixture(2000, 24, 1, 1);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut client = DbLshClient::connect(&server.local_addr().to_string()).expect("connect");

    let ids: Vec<_> = (0..64)
        .map(|i| {
            client
                .submit(&Request::Knn {
                    query: fx.data.point(i).to_vec(),
                    k: 50,
                    opts: Default::default(),
                })
                .expect("submit")
        })
        .collect();
    let mut busy = 0usize;
    let mut served = 0usize;
    for id in ids {
        match client.wait(id).expect("every request gets a response") {
            Response::Knn(_) => served += 1,
            Response::Error(NetError::Remote(DbLshError::Busy)) => busy += 1,
            other => panic!("expected Knn or Busy, got {other:?}"),
        }
    }
    assert_eq!(busy + served, 64);
    assert!(
        busy > 0,
        "a capacity-1 queue must refuse under a 64-deep flood"
    );
    assert!(served > 0, "admission control must not starve everything");
    let engine_stats = fx.engine.stats();
    assert_eq!(engine_stats.rejected, busy as u64);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Robustness against raw bytes
// ---------------------------------------------------------------------

fn read_response_frame(stream: &mut TcpStream) -> (u64, Response) {
    let body = read_len_frame(stream, DEFAULT_MAX_FRAME)
        .expect("well-formed response frame")
        .expect("server must answer before closing");
    match decode_frame(&body).expect("server frames always decode") {
        (id, Message::Response(resp)) => (id, resp),
        (_, other) => panic!("server sent a non-response: {other:?}"),
    }
}

#[test]
fn malicious_length_header_is_refused_before_allocation() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");

    // Claim a 4 GiB frame. A server that trusts the prefix would try to
    // allocate it; ours must answer with a typed protocol error at once
    // — long before 4 GiB could possibly have been transferred.
    raw.write_all(&u32::MAX.to_le_bytes())
        .expect("write prefix");
    raw.flush().unwrap();
    let t0 = Instant::now();
    let (id, resp) = read_response_frame(&mut raw);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "refusal must be immediate, not transfer-paced"
    );
    assert_eq!(id, 0, "connection-level error carries request id 0");
    match resp {
        Response::Error(NetError::Protocol { reason }) => {
            assert!(reason.contains("exceeds"), "reason: {reason}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    // Framing is unrecoverable after a lying prefix: the connection must
    // be closed, not left half-synchronised.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn corrupted_frame_gets_typed_error_and_connection_survives() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(&fx.engine, ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");

    // A frame with authentic length but a flipped payload byte: the
    // length prefix keeps framing intact, so the server answers a typed
    // checksum error and the connection keeps working.
    let mut body = encode_request(9, &Request::Ping { token: 3 });
    let mid = body.len() / 2;
    body[mid] ^= 0x01;
    write_len_frame(&mut raw, &body, DEFAULT_MAX_FRAME).expect("send corrupted frame");
    let (_, resp) = read_response_frame(&mut raw);
    assert!(
        matches!(resp, Response::Error(NetError::Protocol { .. })),
        "got {resp:?}"
    );

    // Same socket, valid frame: still served.
    let body = encode_request(10, &Request::Ping { token: 77 });
    write_len_frame(&mut raw, &body, DEFAULT_MAX_FRAME).expect("send valid frame");
    let (id, resp) = read_response_frame(&mut raw);
    assert_eq!(id, 10);
    match resp {
        Response::Pong { token } => assert_eq!(token, 77),
        other => panic!("expected Pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversized_but_honest_frame_is_bounded_by_server_config() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(
        &fx.engine,
        ServerConfig {
            max_frame: 256,
            ..Default::default()
        },
    );
    // The client obeys its own cap when *reading*; writing a 3 KiB query
    // is legal client-side but must be refused server-side.
    let mut client =
        DbLshClient::connect_with(&server.local_addr().to_string(), ClientConfig::default())
            .expect("connect");
    let big_query = vec![1.0f32; 700];
    match client.knn(&big_query, 5) {
        Err(NetError::Protocol { reason }) => assert!(reason.contains("exceeds"), "{reason}"),
        other => panic!("expected a protocol refusal, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn client_reconnects_after_server_restart() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(&fx.engine, ServerConfig::default());
    let addr = server.local_addr().to_string();
    let mut client = DbLshClient::connect(&addr).expect("connect");
    assert_eq!(client.ping(1).expect("first ping"), 1);

    server.shutdown();
    // The engine outlives the server: restart on the same port.
    let server = DbLshServer::bind(&addr, Arc::clone(&fx.engine), ServerConfig::default())
        .expect("rebind same port");
    // First call after the drop may fail (stale socket); the one after
    // must transparently reconnect.
    let token = match client.ping(2) {
        Ok(t) => t,
        Err(_) => client.ping(2).expect("reconnect"),
    };
    assert_eq!(token, 2);
    server.shutdown();
}

#[test]
fn idle_connections_are_closed_by_the_deadline() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(
        &fx.engine,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..Default::default()
        },
    );
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    let t0 = Instant::now();
    // The server closes an idle connection; our blocking read observes
    // EOF well before the 10 s socket timeout.
    let n = raw.read(&mut buf).expect("EOF, not a socket error");
    assert_eq!(n, 0, "expected a clean close");
    assert!(t0.elapsed() >= Duration::from_millis(150));
    assert!(t0.elapsed() < Duration::from_secs(8));
    server.shutdown();
}

#[test]
fn connection_limit_refuses_with_typed_busy() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(
        &fx.engine,
        ServerConfig {
            max_connections: 1,
            ..Default::default()
        },
    );
    let addr = server.local_addr().to_string();
    let mut first = DbLshClient::connect(&addr).expect("first connection");
    assert_eq!(first.ping(1).expect("first connection works"), 1);

    // The second connection is accepted at the TCP level, then refused
    // with a typed error frame (request id 0) and closed.
    let mut raw = TcpStream::connect(&addr).expect("tcp connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (id, resp) = read_response_frame(&mut raw);
    assert_eq!(id, 0);
    assert!(
        matches!(resp, Response::Error(NetError::Remote(DbLshError::Busy))),
        "got {resp:?}"
    );
    assert_eq!(server.stats().refused, 1);

    // Closing the first connection frees the slot.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = DbLshClient::connect(&addr) {
            if c.ping(5).is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn retry_policy_rides_out_a_busy_refusal() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(
        &fx.engine,
        ServerConfig {
            max_connections: 1,
            ..Default::default()
        },
    );
    let addr = server.local_addr().to_string();
    let first = DbLshClient::connect(&addr).expect("first connection");

    // The slot frees shortly; a retrying client must absorb the typed
    // Busy refusals in between instead of surfacing them.
    let holder = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(first);
    });
    let mut retrying = DbLshClient::connect_with(
        &addr,
        ClientConfig {
            retry: RetryPolicy {
                max_attempts: 60,
                base: Duration::from_millis(20),
                cap: Duration::from_millis(50),
                jitter_seed: 7,
            },
            ..Default::default()
        },
    )
    .expect("connect itself is not limited");
    assert_eq!(retrying.ping(9).expect("retries outlast the holder"), 9);
    holder.join().unwrap();

    // Refusals really happened: the retry loop did the riding out.
    assert!(server.stats().refused >= 1);
    server.shutdown();
}

#[test]
fn disabled_retry_surfaces_busy_immediately() {
    let fx = fixture(200, 8, 1, 16);
    let server = start_server(
        &fx.engine,
        ServerConfig {
            max_connections: 1,
            ..Default::default()
        },
    );
    let addr = server.local_addr().to_string();
    let _first = DbLshClient::connect(&addr).expect("first connection");
    // Default policy: one attempt — the refusal is the caller's to see.
    let mut second = DbLshClient::connect(&addr).expect("tcp-level connect succeeds");
    assert!(matches!(
        second.ping(1),
        Err(NetError::Remote(DbLshError::Busy))
    ));
    server.shutdown();
}
