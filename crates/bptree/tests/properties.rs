//! Property tests: B+-tree behaviour must match a sorted-vector reference
//! implementation for every operation mix.

use dblsh_bptree::BPlusTree;
use proptest::prelude::*;

/// Reference multimap: sorted vector of (key, value).
#[derive(Default)]
struct Reference {
    pairs: Vec<(f64, u32)>,
}

impl Reference {
    fn insert(&mut self, k: f64, v: u32) {
        let pos = self.pairs.partition_point(|&(pk, _)| pk <= k);
        self.pairs.insert(pos, (k, v));
    }
    fn remove(&mut self, k: f64, v: u32) -> bool {
        if let Some(i) = self.pairs.iter().position(|&(pk, pv)| pk == k && pv == v) {
            self.pairs.remove(i);
            true
        } else {
            false
        }
    }
    fn get(&self, k: f64) -> Vec<u32> {
        self.pairs
            .iter()
            .filter(|&&(pk, _)| pk == k)
            .map(|&(_, v)| v)
            .collect()
    }
    fn range(&self, lo: f64, hi: f64) -> Vec<(f64, u32)> {
        self.pairs
            .iter()
            .filter(|&&(k, _)| k >= lo && k <= hi)
            .copied()
            .collect()
    }
}

fn key_strategy() -> impl Strategy<Value = f64> {
    // A small key universe forces heavy duplication.
    prop_oneof![(-20i32..20).prop_map(|v| v as f64 * 0.5), -100.0f64..100.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_get_range_match_reference(
        keys in prop::collection::vec(key_strategy(), 1..300),
        lo in -30.0f64..30.0,
        span in 0.0f64..40.0,
        probe in key_strategy(),
    ) {
        let mut t = BPlusTree::with_order(8);
        let mut r = Reference::default();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
            r.insert(k, i as u32);
        }
        t.check_invariants();
        prop_assert_eq!(t.len(), keys.len());

        let mut got = t.get(probe);
        got.sort_unstable();
        let mut want = r.get(probe);
        want.sort_unstable();
        prop_assert_eq!(got, want);

        let got_range = t.range(lo, lo + span);
        let want_range = r.range(lo, lo + span);
        prop_assert_eq!(got_range.len(), want_range.len());
        for (g, w) in got_range.iter().zip(&want_range) {
            prop_assert_eq!(g.0, w.0);
        }
    }

    #[test]
    fn bulk_build_equals_insert_build(
        mut keys in prop::collection::vec(key_strategy(), 1..300),
    ) {
        keys.sort_by(f64::total_cmp);
        let pairs: Vec<(f64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let bulk = BPlusTree::bulk_build_with_order(&pairs, 8);
        bulk.check_invariants();
        let mut inc = BPlusTree::with_order(8);
        for &(k, v) in &pairs {
            inc.insert(k, v);
        }
        let mut a = bulk.range(f64::NEG_INFINITY, f64::INFINITY);
        let mut b = inc.range(f64::NEG_INFINITY, f64::INFINITY);
        a.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        b.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn remove_matches_reference(
        keys in prop::collection::vec(key_strategy(), 1..200),
        removals in prop::collection::vec((key_strategy(), 0u32..200), 0..100),
    ) {
        let mut t = BPlusTree::with_order(8);
        let mut r = Reference::default();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
            r.insert(k, i as u32);
        }
        for &(k, v) in &removals {
            prop_assert_eq!(t.remove(k, v), r.remove(k, v), "remove({}, {})", k, v);
        }
        prop_assert_eq!(t.len(), r.pairs.len());
        let got = t.range(f64::NEG_INFINITY, f64::INFINITY);
        prop_assert_eq!(got.len(), r.pairs.len());
    }

    #[test]
    fn cursor_expansion_is_distance_sorted(
        keys in prop::collection::vec(-100.0f64..100.0, 1..200),
        anchor in -120.0f64..120.0,
    ) {
        let mut pairs: Vec<(f64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let t = BPlusTree::bulk_build_with_order(&pairs, 8);
        let mut c = t.cursor_at(anchor);
        let mut last = 0.0f64;
        let mut n = 0;
        while let Some((k, _)) = c.next_closest(anchor) {
            let d = (k - anchor).abs();
            prop_assert!(d + 1e-9 >= last);
            last = d;
            n += 1;
        }
        prop_assert_eq!(n, keys.len());
    }
}
