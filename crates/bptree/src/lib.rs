//! A B+-tree over `f64` keys with `u32` payloads and **bidirectional
//! cursors**, built as the substrate for the collision-counting (C2) LSH
//! baselines of the DB-LSH evaluation.
//!
//! QALSH-style methods keep one B+-tree per 1-d projection and, at query
//! time, place a cursor at the query's projected value and expand
//! *outwards in both directions*, consuming whichever side is currently
//! closer (query-aware bucketing / virtual rehashing). That access pattern
//! dictates the design here:
//!
//! * leaves are doubly linked, so a [`Cursor`] walks left and right in
//!   O(1) amortized per step;
//! * [`BPlusTree::bulk_build`] packs sorted runs directly into leaves
//!   (datasets are hashed once, sorted once, then queried many times);
//! * duplicate keys are fully supported (projections do collide);
//! * [`BPlusTree::insert`] implements standard split propagation;
//!   [`BPlusTree::remove`] removes from the leaf without rebalancing
//!   (lazy deletion — underfull leaves are permitted and documented,
//!   matching the read-heavy usage of the baselines).

mod cursor;
mod tree;

pub use cursor::Cursor;
pub use tree::BPlusTree;
