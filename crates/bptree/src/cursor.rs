//! Bidirectional cursor over the doubly linked leaf chain.

use crate::tree::{BPlusTree, Node};

/// A two-headed cursor anchored at a key position.
///
/// `next_right` yields entries with key >= the anchor in ascending order;
/// `next_left` yields entries with key < the anchor in descending order.
/// The two heads are independent — exactly the access pattern of
/// query-aware LSH bucket expansion, which repeatedly consumes the head
/// whose key is currently closer to the query projection.
pub struct Cursor<'t> {
    tree: &'t BPlusTree,
    /// (leaf, slot) of the next entry to the left (consumed moving left).
    left: Option<(usize, usize)>,
    /// (leaf, slot) of the next entry to the right (consumed moving right).
    right: Option<(usize, usize)>,
}

impl BPlusTree {
    /// Anchor a [`Cursor`] at `key`: the right head starts at the first
    /// entry with key >= `key`, the left head at the last entry with
    /// key < `key`.
    pub fn cursor_at(&self, key: f64) -> Cursor<'_> {
        assert!(!key.is_nan(), "NaN key rejected");
        let leaf = self.descend_to_leaf(key);
        let (keys_len, slot) = match &self.nodes[leaf] {
            Node::Leaf { keys, .. } => (keys.len(), keys.partition_point(|&k| k < key)),
            Node::Inner { .. } => unreachable!("descend_to_leaf returned inner node"),
        };
        let right = if slot < keys_len {
            Some((leaf, slot))
        } else {
            self.first_slot_of_next(leaf)
        };
        let left = if slot > 0 {
            Some((leaf, slot - 1))
        } else {
            self.last_slot_of_prev(leaf)
        };
        Cursor {
            tree: self,
            left,
            right,
        }
    }

    /// First non-empty position at or after the leaf following `leaf`.
    fn first_slot_of_next(&self, mut leaf: usize) -> Option<(usize, usize)> {
        loop {
            leaf = match &self.nodes[leaf] {
                Node::Leaf { next, .. } => (*next)?,
                Node::Inner { .. } => unreachable!(),
            };
            if let Node::Leaf { keys, .. } = &self.nodes[leaf] {
                if !keys.is_empty() {
                    return Some((leaf, 0));
                }
            }
        }
    }

    /// Last non-empty position at or before the leaf preceding `leaf`.
    fn last_slot_of_prev(&self, mut leaf: usize) -> Option<(usize, usize)> {
        loop {
            leaf = match &self.nodes[leaf] {
                Node::Leaf { prev, .. } => (*prev)?,
                Node::Inner { .. } => unreachable!(),
            };
            if let Node::Leaf { keys, .. } = &self.nodes[leaf] {
                if !keys.is_empty() {
                    return Some((leaf, keys.len() - 1));
                }
            }
        }
    }

    fn entry_at(&self, pos: (usize, usize)) -> (f64, u32) {
        match &self.nodes[pos.0] {
            Node::Leaf { keys, vals, .. } => (keys[pos.1], vals[pos.1]),
            Node::Inner { .. } => unreachable!(),
        }
    }
}

impl Cursor<'_> {
    /// Key of the next entry to the right without consuming it.
    pub fn peek_right(&self) -> Option<f64> {
        self.right.map(|p| self.tree.entry_at(p).0)
    }

    /// Key of the next entry to the left without consuming it.
    pub fn peek_left(&self) -> Option<f64> {
        self.left.map(|p| self.tree.entry_at(p).0)
    }

    /// Consume and return the next entry to the right (ascending keys).
    pub fn next_right(&mut self) -> Option<(f64, u32)> {
        let pos = self.right?;
        let entry = self.tree.entry_at(pos);
        let (leaf, slot) = pos;
        let leaf_len = match &self.tree.nodes[leaf] {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Inner { .. } => unreachable!(),
        };
        self.right = if slot + 1 < leaf_len {
            Some((leaf, slot + 1))
        } else {
            self.tree.first_slot_of_next(leaf)
        };
        Some(entry)
    }

    /// Consume and return the next entry to the left (descending keys).
    pub fn next_left(&mut self) -> Option<(f64, u32)> {
        let pos = self.left?;
        let entry = self.tree.entry_at(pos);
        let (leaf, slot) = pos;
        self.left = if slot > 0 {
            Some((leaf, slot - 1))
        } else {
            self.tree.last_slot_of_prev(leaf)
        };
        Some(entry)
    }

    /// Consume the side whose key is closer to `anchor`; `None` when both
    /// sides are exhausted. This is the QALSH expansion step.
    pub fn next_closest(&mut self, anchor: f64) -> Option<(f64, u32)> {
        match (self.peek_left(), self.peek_right()) {
            (None, None) => None,
            (Some(_), None) => self.next_left(),
            (None, Some(_)) => self.next_right(),
            (Some(l), Some(r)) => {
                if (anchor - l).abs() <= (r - anchor).abs() {
                    self.next_left()
                } else {
                    self.next_right()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> BPlusTree {
        let pairs: Vec<(f64, u32)> = (0..100).map(|i| (i as f64, i as u32)).collect();
        BPlusTree::bulk_build_with_order(&pairs, 8)
    }

    #[test]
    fn cursor_at_exact_key() {
        let t = tree();
        let mut c = t.cursor_at(50.0);
        assert_eq!(c.peek_right(), Some(50.0));
        assert_eq!(c.peek_left(), Some(49.0));
        assert_eq!(c.next_right(), Some((50.0, 50)));
        assert_eq!(c.next_right(), Some((51.0, 51)));
        assert_eq!(c.next_left(), Some((49.0, 49)));
        assert_eq!(c.next_left(), Some((48.0, 48)));
    }

    #[test]
    fn cursor_between_keys() {
        let t = tree();
        let mut c = t.cursor_at(49.5);
        assert_eq!(c.next_right(), Some((50.0, 50)));
        assert_eq!(c.next_left(), Some((49.0, 49)));
    }

    #[test]
    fn cursor_before_all_keys() {
        let t = tree();
        let mut c = t.cursor_at(-10.0);
        assert_eq!(c.peek_left(), None);
        assert_eq!(c.next_right(), Some((0.0, 0)));
    }

    #[test]
    fn cursor_after_all_keys() {
        let t = tree();
        let mut c = t.cursor_at(1e9);
        assert_eq!(c.peek_right(), None);
        assert_eq!(c.next_left(), Some((99.0, 99)));
    }

    #[test]
    fn full_sweep_right_covers_everything() {
        let t = tree();
        let mut c = t.cursor_at(f64::NEG_INFINITY);
        let mut got = Vec::new();
        while let Some((k, _)) = c.next_right() {
            got.push(k);
        }
        let want: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn full_sweep_left_covers_everything() {
        let t = tree();
        let mut c = t.cursor_at(f64::INFINITY);
        let mut got = Vec::new();
        while let Some((k, _)) = c.next_left() {
            got.push(k);
        }
        let want: Vec<f64> = (0..100).rev().map(|i| i as f64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn next_closest_expands_outward_by_distance() {
        let t = tree();
        let anchor = 50.2;
        let mut c = t.cursor_at(anchor);
        let mut last_dist = 0.0;
        let mut seen = 0;
        while let Some((k, _)) = c.next_closest(anchor) {
            let d = (k - anchor).abs();
            assert!(
                d + 1e-12 >= last_dist,
                "expansion not monotone: {d} after {last_dist}"
            );
            last_dist = d;
            seen += 1;
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn cursor_on_empty_tree() {
        let t = BPlusTree::new();
        let mut c = t.cursor_at(0.0);
        assert_eq!(c.next_left(), None);
        assert_eq!(c.next_right(), None);
        assert_eq!(c.next_closest(0.0), None);
    }

    #[test]
    fn cursor_skips_emptied_leaves() {
        // lazy deletion can empty a whole leaf; cursors must hop over it
        let pairs: Vec<(f64, u32)> = (0..32).map(|i| (i as f64, i as u32)).collect();
        let mut t = BPlusTree::bulk_build_with_order(&pairs, 4);
        for i in 8..16 {
            assert!(t.remove(i as f64, i as u32));
        }
        let mut c = t.cursor_at(7.5);
        assert_eq!(c.next_right(), Some((16.0, 16)));
        assert_eq!(c.next_left(), Some((7.0, 7)));
    }
}
