//! B+-tree storage and mutation.

/// Maximum number of keys per node.
pub(crate) const DEFAULT_ORDER: usize = 64;

#[derive(Debug)]
pub(crate) enum Node {
    Leaf {
        keys: Vec<f64>,
        vals: Vec<u32>,
        prev: Option<usize>,
        next: Option<usize>,
    },
    Inner {
        /// `keys.len() + 1 == children.len()`; `keys[i]` separates
        /// `children[i]` (strictly smaller... or equal duplicates that
        /// spilled left) from `children[i+1]`.
        keys: Vec<f64>,
        children: Vec<usize>,
    },
}

/// B+-tree multimap from `f64` keys to `u32` values.
#[derive(Debug)]
pub struct BPlusTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: usize,
    order: usize,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree; `order` is the maximum keys per node (>= 4).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                prev: None,
                next: None,
            }],
            root: 0,
            order,
            len: 0,
        }
    }

    /// Number of stored key/value pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Build from `(key, value)` pairs sorted ascending by key.
    /// Panics if the keys are not sorted or contain NaN.
    pub fn bulk_build(pairs: &[(f64, u32)]) -> Self {
        Self::bulk_build_with_order(pairs, DEFAULT_ORDER)
    }

    /// [`BPlusTree::bulk_build`] with a custom node order.
    pub fn bulk_build_with_order(pairs: &[(f64, u32)], order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0, "bulk_build requires sorted keys");
        }
        assert!(pairs.iter().all(|(k, _)| !k.is_nan()), "NaN key rejected");
        let mut tree = BPlusTree::with_order(order);
        if pairs.is_empty() {
            return tree;
        }
        tree.nodes.clear();

        // Pack leaves at ~100% fill (read-only workloads dominate).
        let mut leaf_ids = Vec::new();
        let mut leaf_min_keys = Vec::new();
        for chunk in pairs.chunks(order) {
            let id = tree.nodes.len();
            tree.nodes.push(Node::Leaf {
                keys: chunk.iter().map(|&(k, _)| k).collect(),
                vals: chunk.iter().map(|&(_, v)| v).collect(),
                prev: if id == 0 { None } else { Some(id - 1) },
                next: None, // patched below
            });
            leaf_ids.push(id);
            leaf_min_keys.push(chunk[0].0);
        }
        for i in 0..leaf_ids.len() - 1 {
            if let Node::Leaf { next, .. } = &mut tree.nodes[leaf_ids[i]] {
                *next = Some(leaf_ids[i + 1]);
            }
        }

        // Build inner levels: separator = min key of the right sibling's
        // subtree.
        let mut level = leaf_ids;
        let mut mins = leaf_min_keys;
        while level.len() > 1 {
            let mut upper = Vec::new();
            let mut upper_mins = Vec::new();
            let fanout = order + 1; // children per inner node
            let mut i = 0;
            while i < level.len() {
                let end = (i + fanout).min(level.len());
                let children: Vec<usize> = level[i..end].to_vec();
                let keys: Vec<f64> = mins[i + 1..end].to_vec();
                upper_mins.push(mins[i]);
                let id = tree.nodes.len();
                tree.nodes.push(Node::Inner { keys, children });
                upper.push(id);
                i = end;
            }
            level = upper;
            mins = upper_mins;
        }
        tree.root = level[0];
        tree.len = pairs.len();
        tree
    }

    /// Locate the leaf that may contain the first entry with key >= `key`.
    pub(crate) fn descend_to_leaf(&self, key: f64) -> usize {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { .. } => return cur,
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|&k| k < key);
                    cur = children[idx];
                }
            }
        }
    }

    /// Insert a `(key, value)` pair. Duplicate keys are allowed.
    pub fn insert(&mut self, key: f64, val: u32) {
        assert!(!key.is_nan(), "NaN key rejected");
        if let Some((sep, right)) = self.insert_rec(self.root, key, val) {
            let new_root = Node::Inner {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Returns `Some((separator, new_right_node))` when `node` split.
    fn insert_rec(&mut self, node: usize, key: f64, val: u32) -> Option<(f64, usize)> {
        let split = match &mut self.nodes[node] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|&k| k <= key);
                keys.insert(pos, key);
                vals.insert(pos, val);
                keys.len() > self.order
            }
            Node::Inner { keys, children } => {
                let idx = keys.partition_point(|&k| k < key);
                let child = children[idx];
                if let Some((sep, right)) = self.insert_rec(child, key, val) {
                    match &mut self.nodes[node] {
                        Node::Inner { keys, children } => {
                            keys.insert(idx, sep);
                            children.insert(idx + 1, right);
                            keys.len() > self.order
                        }
                        Node::Leaf { .. } => unreachable!(),
                    }
                } else {
                    false
                }
            }
        };
        if !split {
            return None;
        }
        Some(self.split_node(node))
    }

    fn split_node(&mut self, node: usize) -> (f64, usize) {
        let new_id = self.nodes.len();
        match &mut self.nodes[node] {
            Node::Leaf {
                keys, vals, next, ..
            } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0];
                let old_next = *next;
                *next = Some(new_id);
                self.nodes.push(Node::Leaf {
                    keys: right_keys,
                    vals: right_vals,
                    prev: Some(node),
                    next: old_next,
                });
                if let Some(n) = old_next {
                    if let Node::Leaf { prev, .. } = &mut self.nodes[n] {
                        *prev = Some(new_id);
                    }
                }
                (sep, new_id)
            }
            Node::Inner { keys, children } => {
                let mid = keys.len() / 2;
                // keys[mid] moves up; right gets keys[mid+1..].
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("mid key");
                let right_children = children.split_off(mid + 1);
                self.nodes.push(Node::Inner {
                    keys: right_keys,
                    children: right_children,
                });
                (sep, new_id)
            }
        }
    }

    /// Remove one `(key, value)` pair; returns `true` if found.
    ///
    /// Lazy deletion: the pair is removed from its leaf but nodes are not
    /// rebalanced, so leaves may become underfull (or empty) after heavy
    /// deletion. Lookups and cursors remain correct; space is reclaimed by
    /// rebuilding via [`BPlusTree::bulk_build`] if required.
    pub fn remove(&mut self, key: f64, val: u32) -> bool {
        assert!(!key.is_nan(), "NaN key rejected");
        let mut leaf = self.descend_to_leaf(key);
        loop {
            let next_leaf = match &mut self.nodes[leaf] {
                Node::Leaf {
                    keys, vals, next, ..
                } => {
                    let start = keys.partition_point(|&k| k < key);
                    let mut found = None;
                    for i in start..keys.len() {
                        if keys[i] > key {
                            return false;
                        }
                        if vals[i] == val {
                            found = Some(i);
                            break;
                        }
                    }
                    if let Some(i) = found {
                        keys.remove(i);
                        vals.remove(i);
                        self.len -= 1;
                        return true;
                    }
                    // all remaining entries in this leaf equal `key` with
                    // other payloads, or the leaf ended: try the next leaf
                    *next
                }
                Node::Inner { .. } => unreachable!(),
            };
            match next_leaf {
                Some(n) => leaf = n,
                None => return false,
            }
        }
    }

    /// All values stored under exactly `key`.
    pub fn get(&self, key: f64) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = self.cursor_at(key);
        while let Some((k, v)) = cur.next_right() {
            if k > key {
                break;
            }
            out.push(v);
        }
        out
    }

    /// `(key, value)` pairs with `lo <= key <= hi`, ascending.
    pub fn range(&self, lo: f64, hi: f64) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        let mut cur = self.cursor_at(lo);
        while let Some((k, v)) = cur.next_right() {
            if k > hi {
                break;
            }
            out.push((k, v));
        }
        out
    }

    /// Verify structural invariants (sortedness, separator correctness,
    /// leaf chain consistency, length). Panics on violation.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        let mut leftmost = self.root;
        self.check_node(self.root, f64::NEG_INFINITY, f64::INFINITY, &mut count);
        assert_eq!(count, self.len, "len mismatch");
        // leaf chain covers all pairs in ascending order
        while let Node::Inner { children, .. } = &self.nodes[leftmost] {
            leftmost = children[0];
        }
        let mut chained = 0usize;
        let mut last = f64::NEG_INFINITY;
        let mut cur = Some(leftmost);
        let mut prev_leaf: Option<usize> = None;
        while let Some(id) = cur {
            match &self.nodes[id] {
                Node::Leaf {
                    keys, prev, next, ..
                } => {
                    assert_eq!(*prev, prev_leaf, "broken prev link at leaf {id}");
                    for &k in keys {
                        assert!(k >= last, "leaf chain out of order");
                        last = k;
                        chained += 1;
                    }
                    prev_leaf = Some(id);
                    cur = *next;
                }
                Node::Inner { .. } => panic!("inner node in leaf chain"),
            }
        }
        assert_eq!(chained, self.len, "leaf chain misses entries");
    }

    fn check_node(&self, node: usize, lo: f64, hi: f64, count: &mut usize) {
        match &self.nodes[node] {
            Node::Leaf { keys, vals, .. } => {
                assert_eq!(keys.len(), vals.len());
                for w in keys.windows(2) {
                    assert!(w[0] <= w[1], "unsorted leaf");
                }
                for &k in keys {
                    assert!(k >= lo && k <= hi, "leaf key {k} outside [{lo}, {hi}]");
                }
                *count += keys.len();
            }
            Node::Inner { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "arity mismatch");
                assert!(
                    keys.len() <= self.order,
                    "inner node overflow: {}",
                    keys.len()
                );
                for w in keys.windows(2) {
                    assert!(w[0] <= w[1], "unsorted inner node");
                }
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { keys[i - 1] };
                    let chi = if i == keys.len() { hi } else { keys[i] };
                    self.check_node(c, clo, chi, count);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize) -> Vec<(f64, u32)> {
        (0..n).map(|i| (i as f64 * 0.5, i as u32)).collect()
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert!(t.get(1.0).is_empty());
        assert!(t.range(0.0, 10.0).is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_build_and_get() {
        let p = pairs(1000);
        let t = BPlusTree::bulk_build(&p);
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(250.0), vec![500]);
        assert_eq!(t.get(250.25), Vec::<u32>::new());
    }

    #[test]
    fn bulk_build_duplicates_across_leaf_boundary() {
        // 200 copies of the same key will span multiple leaves.
        let p: Vec<(f64, u32)> = (0..200).map(|i| (5.0, i)).collect();
        let t = BPlusTree::bulk_build_with_order(&p, 8);
        t.check_invariants();
        let mut got = t.get(5.0);
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn insert_random_order_then_query() {
        let mut t = BPlusTree::with_order(8);
        let mut keys: Vec<u32> = (0..500).collect();
        // deterministic shuffle
        let mut s = 12345u64;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        for &k in &keys {
            t.insert(k as f64, k);
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(321.0), vec![321]);
        let r = t.range(100.0, 110.0);
        assert_eq!(r.len(), 11);
        assert!(r.iter().all(|&(k, v)| k == v as f64));
    }

    #[test]
    fn mixed_bulk_and_insert() {
        let p = pairs(100);
        let mut t = BPlusTree::bulk_build_with_order(&p, 8);
        for i in 0..50 {
            t.insert(i as f64 * 0.5 + 0.25, 1000 + i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 150);
        assert_eq!(t.get(0.25), vec![1000]);
    }

    #[test]
    fn remove_semantics() {
        let mut t = BPlusTree::bulk_build(&[(1.0, 1), (1.0, 2), (2.0, 3)]);
        assert!(t.remove(1.0, 2));
        assert!(!t.remove(1.0, 2)); // already gone
        assert!(!t.remove(3.0, 1)); // never existed
        assert_eq!(t.get(1.0), vec![1]);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn remove_duplicates_across_leaves() {
        let p: Vec<(f64, u32)> = (0..100).map(|i| (7.0, i)).collect();
        let mut t = BPlusTree::bulk_build_with_order(&p, 8);
        // payload 93 lives deep in the run of duplicates
        assert!(t.remove(7.0, 93));
        assert_eq!(t.get(7.0).len(), 99);
    }

    #[test]
    fn range_boundaries_inclusive() {
        let t = BPlusTree::bulk_build(&pairs(20));
        let r = t.range(1.0, 2.0);
        assert_eq!(r, vec![(1.0, 2), (1.5, 3), (2.0, 4)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_bulk_build_panics() {
        BPlusTree::bulk_build(&[(2.0, 0), (1.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_insert_panics() {
        BPlusTree::new().insert(f64::NAN, 0);
    }
}
