//! Crash-recovery property tests: kill the process at *every* WAL
//! record boundary — and inside records — of randomized workloads, and
//! require recovery to land on exactly the acknowledged prefix.
//!
//! The fleet property drives a WAL-enabled [`ShardedDbLsh`] through a
//! random interleaving of inserts, removes, explicit compactions, and
//! checkpoints (`save_dir`, which truncates the logs), snapshotting the
//! on-disk directory after every op. Each snapshot is then recovered
//! and compared — membership and canonical answers *with work counters*
//! — against a never-crashed reference that replayed the same prefix.
//! Torn tails (a crash mid-`write`) are simulated by truncating the
//! record that grew between two snapshots at several interior byte
//! offsets; the torn op must vanish without damaging the prefix.
//!
//! Compaction is the interesting interleaving: it relabels physical
//! rows but is never logged, so a recovered fleet replays the WAL onto
//! an *uncompacted* snapshot while the reference compacted mid-stream —
//! canonical answers must not be able to tell the difference.
//!
//! The replica property does the same for [`ReplicatedShard`]'s group
//! WAL: reopen after a cut at any boundary or any interior byte equals
//! the reference holding exactly the surviving records.

use std::path::{Path, PathBuf};

use dblsh_core::{DbLshBuilder, SearchOptions};
use dblsh_data::Dataset;
use dblsh_serve::{ReplicatedShard, ShardPolicy, ShardedDbLsh};
use proptest::prelude::*;

const DIM: usize = 6;

fn builder() -> DbLshBuilder {
    DbLshBuilder::new().k(4).l(2).t(8).r_min(0.5)
}

/// Distinct-row datasets (duplicates make leaf tie-breaking
/// order-dependent; the claim here is about recovery, not tie-breaks).
fn distinct_rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-50.0f32..50.0, DIM..=DIM), 16..40).prop_map(
        |mut rows| {
            rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.dedup();
            rows
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f32>),
    /// Resolved to `raw % next_id` at apply time, so the same script
    /// replays identically on fleet and reference.
    Remove(u32),
    Compact,
    Checkpoint,
}

fn ops_script() -> impl Strategy<Value = Vec<Op>> {
    let one = prop_oneof![
        prop::collection::vec(-50.0f32..50.0, DIM..=DIM).prop_map(Op::Insert),
        prop::collection::vec(-50.0f32..50.0, DIM..=DIM).prop_map(Op::Insert),
        (0u32..10_000).prop_map(Op::Remove),
        (0u32..10_000).prop_map(Op::Remove),
        Just(Op::Compact),
        Just(Op::Checkpoint),
    ];
    prop::collection::vec(one, 6..14)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dblsh-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

fn truncate_file(path: &Path, len: u64) {
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open for truncate")
        .set_len(len)
        .expect("truncate");
}

fn apply_fleet(fleet: &ShardedDbLsh, op: &Op, next_id: &mut u32, wal_dir: Option<&Path>) {
    match op {
        Op::Insert(p) => {
            fleet.insert(p).expect("insert");
            *next_id += 1;
        }
        Op::Remove(raw) => {
            fleet.remove(raw % *next_id).expect("remove");
        }
        Op::Compact => {
            fleet.compact().expect("compact");
        }
        Op::Checkpoint => {
            // The reference has no WAL directory: a checkpoint changes
            // only what is on disk, never the logical state.
            if let Some(dir) = wal_dir {
                fleet.save_dir(dir).expect("checkpoint");
            }
        }
    }
}

/// Byte-identical logical equality: membership and canonical answers
/// including [`dblsh_data::QueryStats`].
fn assert_recovered_equals(got: &ShardedDbLsh, want: &ShardedDbLsh, data: &Dataset, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: len");
    let bound = (data.len() + 40) as u32;
    for id in 0..bound {
        assert_eq!(got.contains(id), want.contains(id), "{label}: id {id}");
    }
    let opts = SearchOptions::default();
    for qi in [0, data.len() / 2, data.len() - 1] {
        let q = data.point(qi);
        let a = got.search_with(q, 5, &opts).expect("recovered query");
        let b = want.search_with(q, 5, &opts).expect("reference query");
        assert_eq!(a.neighbors, b.neighbors, "{label}: query {qi}");
        assert_eq!(a.stats, b.stats, "{label}: query {qi} stats");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash a WAL-enabled fleet at every record boundary of a random
    /// insert/remove/compact/checkpoint interleaving; each recovery
    /// must equal the reference that replayed exactly that prefix.
    #[test]
    fn fleet_recovers_exactly_at_every_boundary(
        rows in distinct_rows(),
        ops in ops_script(),
    ) {
        let data = Dataset::from_rows(&rows);
        let live = fresh_dir("live");
        let fleet = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .expect("build fleet")
            .enable_wal(&live)
            .expect("enable wal");

        // Snapshot the whole directory after every op: checkpoints
        // rewrite the snapshot and truncate the logs, so recorded WAL
        // sizes alone cannot reconstruct an earlier disk state.
        let snaps = fresh_dir("snaps");
        copy_dir(&live, &snaps.join("0"));
        let mut next_id = data.len() as u32;
        for (t, op) in ops.iter().enumerate() {
            apply_fleet(&fleet, op, &mut next_id, Some(&live));
            copy_dir(&live, &snaps.join(format!("{}", t + 1)));
        }

        let reference = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .expect("build reference");
        let mut ref_next_id = data.len() as u32;
        let torn_dir = fresh_dir("torn");
        for t in 0..=ops.len() {
            let snap = snaps.join(format!("{t}"));
            let recovered = ShardedDbLsh::load_dir(&snap).expect("recover at boundary");
            recovered.check_invariants();
            assert_recovered_equals(&recovered, &reference, &data, &format!("boundary {t}"));

            // Torn tail: if exactly one log grew over op t, cut it at a
            // few interior bytes — the torn record must vanish and the
            // prefix must survive untouched.
            if t < ops.len() {
                let next_snap = snaps.join(format!("{}", t + 1));
                let grown: Vec<(String, u64, u64)> = (0..2)
                    .filter_map(|s| {
                        let name = format!("wal-{s}.dblshwal");
                        let before = std::fs::metadata(snap.join(&name)).expect("meta").len();
                        let after = std::fs::metadata(next_snap.join(&name)).expect("meta").len();
                        (after > before).then_some((name, before, after))
                    })
                    .collect();
                if let [(name, before, after)] = grown.as_slice() {
                    for off in [1, (after - before) / 2, after - before - 1] {
                        if off == 0 || off >= after - before {
                            continue;
                        }
                        copy_dir(&next_snap, &torn_dir);
                        truncate_file(&torn_dir.join(name), before + off);
                        let recovered =
                            ShardedDbLsh::load_dir(&torn_dir).expect("recover torn tail");
                        recovered.check_invariants();
                        assert_recovered_equals(
                            &recovered,
                            &reference,
                            &data,
                            &format!("torn op {t} +{off}B"),
                        );
                    }
                }
                apply_fleet(&reference, &ops[t], &mut ref_next_id, None);
            }
        }
        for dir in [&live, &snaps, &torn_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Cut a replica group's WAL at a random boundary and at a random
    /// interior byte; reopening must land exactly on the surviving
    /// acknowledged prefix (the group WAL is the id authority, so even
    /// the next allocated id matches).
    #[test]
    fn replica_group_reopens_on_the_acknowledged_prefix(
        rows in distinct_rows(),
        script in prop::collection::vec((0u32..3, 0u32..10_000), 5..12),
        cut in (0u32..10_000),
    ) {
        let data = Dataset::from_rows(&rows);
        let dir = fresh_dir("replica");
        let group = ReplicatedShard::create(
            builder().build(data.clone()).expect("build index"),
            2,
            &dir,
        )
        .expect("create group");
        let wal_path = dir.join("replica.dblshwal");

        // Apply the script, recording the WAL length after every op and
        // the op itself for prefix replay on the reference.
        let mut sizes = vec![std::fs::metadata(&wal_path).expect("meta").len()];
        let mut applied: Vec<Op> = Vec::new();
        for (kind, raw) in &script {
            let next_id = group.id_bound();
            if *kind == 0 && next_id > 0 {
                group.remove(raw % next_id).expect("remove");
                applied.push(Op::Remove(*raw));
            } else {
                let p = data.point((*raw as usize) % data.len()).to_vec();
                group.insert(&p).expect("insert");
                applied.push(Op::Insert(p));
            }
            sizes.push(std::fs::metadata(&wal_path).expect("meta").len());
        }
        drop(group);

        // Pick a crash point: a record boundary, then (when the cut op
        // left room) an interior byte of the very next record.
        let t = (cut as usize) % sizes.len();
        let mut reference = builder().build(data.clone()).expect("build reference");
        for op in &applied[..t] {
            match op {
                Op::Insert(p) => {
                    reference.insert(p).expect("reference insert");
                }
                Op::Remove(raw) => {
                    reference
                        .remove(raw % reference.id_bound() as u32)
                        .expect("reference remove");
                }
                _ => unreachable!(),
            }
        }
        let interior = (t + 1 < sizes.len()).then(|| {
            let growth = sizes[t + 1] - sizes[t];
            sizes[t] + 1 + u64::from(cut) % (growth - 1).max(1)
        });
        // Interior cut first (it is longer than the boundary cut, and
        // `set_len` can only shrink a file meaningfully), boundary after.
        for len in interior.into_iter().chain(std::iter::once(sizes[t])) {
            truncate_file(&wal_path, len);
            let reopened = ReplicatedShard::open(&dir, 2).expect("reopen group");
            assert_eq!(
                reopened.id_bound() as usize,
                reference.id_bound(),
                "id authority diverged at cut {len}"
            );
            for id in 0..reference.id_bound() as u32 {
                assert_eq!(
                    reopened.contains(id).expect("contains"),
                    reference.contains(id),
                    "membership of id {id} at cut {len}"
                );
            }
            let opts = SearchOptions::default();
            for qi in [0, data.len() / 2] {
                let q = data.point(qi);
                let got = reopened.search_with(q, 5, &opts).expect("group query");
                let want = reference.search_canonical(q, 5, &opts).expect("ref query");
                assert_eq!(got.neighbors, want.neighbors, "query {qi} at cut {len}");
                assert_eq!(got.stats, want.stats, "query {qi} stats at cut {len}");
            }
            // Reopening truncated the torn tail, so the boundary cut
            // below starts from a clean prefix again.
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
