//! Concurrent-correctness stress tests: interleave insert/remove/query
//! traffic across threads against one [`ShardedDbLsh`] (and through the
//! [`Engine`] front door) and assert that cross-shard invariants hold
//! afterwards and that ids removed *before* the contention window never
//! resurface in any answer produced *during* it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dblsh_core::DbLshBuilder;
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
use dblsh_data::Dataset;
use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
use rand::prelude::*;
use rand::rngs::StdRng;

fn cloud(n: usize, seed: u64) -> Dataset {
    gaussian_mixture(&MixtureConfig {
        n,
        dim: 12,
        clusters: 15,
        cluster_std: 1.0,
        spread: 50.0,
        noise_frac: 0.02,
        seed,
    })
}

fn build(data: &Dataset, shards: usize) -> ShardedDbLsh {
    let builder = DbLshBuilder::new().k(6).l(3).t(8).r_min(0.5);
    ShardedDbLsh::build(data, &builder, shards, ShardPolicy::RoundRobin).unwrap()
}

/// The headline stress: pre-remove a set of ids, then hammer the index
/// from query threads, an insert thread and a remove thread at once.
/// Afterwards: `check_invariants` passes, no pre-removed id ever
/// appeared in any concurrent answer, and the final live set is exactly
/// what the traffic implies.
#[test]
fn interleaved_insert_remove_query_under_contention() {
    let n = 1200usize;
    let data = cloud(n, 33);
    let index = Arc::new(build(&data, 4));

    // Phase 1 (sequential): remove a known set. These ids must never be
    // seen again, no matter how the concurrent phase interleaves.
    let pre_removed: Vec<u32> = (0..n as u32).step_by(9).collect();
    for &id in &pre_removed {
        assert!(index.remove(id).unwrap());
    }
    let pre_removed = Arc::new(pre_removed);
    let live_after_phase1 = index.len();

    // Phase 2 (concurrent): 2 query threads + 1 inserter + 1 remover.
    let resurfaced = AtomicUsize::new(0);
    let inserted = std::sync::Mutex::new(Vec::<u32>::new());
    let removed_now = std::sync::Mutex::new(Vec::<u32>::new());
    std::thread::scope(|scope| {
        for t in 0..2 {
            let index = Arc::clone(&index);
            let pre_removed = Arc::clone(&pre_removed);
            let resurfaced = &resurfaced;
            let data = &data;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for _ in 0..150 {
                    let qi = rng.gen_range(0..data.len());
                    let res = index.k_ann(data.point(qi), 5).unwrap();
                    for id in res.ids() {
                        if pre_removed.binary_search(&id).is_ok() {
                            resurfaced.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        {
            let index = Arc::clone(&index);
            let inserted = &inserted;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7);
                for _ in 0..100 {
                    let point: Vec<f32> = (0..12).map(|_| rng.gen_range(-50.0..50.0)).collect();
                    let id = index.insert(&point).unwrap();
                    inserted.lock().unwrap().push(id);
                }
            });
        }
        {
            let index = Arc::clone(&index);
            let removed_now = &removed_now;
            scope.spawn(move || {
                // removes from a pool disjoint from the pre-removed set
                for id in (1..n as u32).step_by(9).take(80) {
                    if index.remove(id).unwrap() {
                        removed_now.lock().unwrap().push(id);
                    }
                }
            });
        }
    });

    assert_eq!(
        resurfaced.load(Ordering::Relaxed),
        0,
        "pre-removed ids surfaced in concurrent answers"
    );
    let inserted = inserted.into_inner().unwrap();
    let removed_now = removed_now.into_inner().unwrap();
    assert_eq!(inserted.len(), 100);
    assert_eq!(
        index.len(),
        live_after_phase1 + inserted.len() - removed_now.len()
    );
    // every concurrently inserted id got a unique, live, dense global id
    let mut ids = inserted.clone();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 100, "duplicate global ids handed out");
    assert!(ids.iter().all(|&id| id >= n as u32 && index.contains(id)));
    // the full cross-shard invariant sweep must still pass
    index.check_invariants();
    // and none of the removed ids answer `contains`
    assert!(pre_removed.iter().all(|&id| !index.contains(id)));
    assert!(removed_now.iter().all(|&id| !index.contains(id)));
}

/// The same contention pattern through the [`Engine`] queue: mixed jobs
/// from several submitter threads, one worker pool, bounded queue.
#[test]
fn engine_survives_mixed_traffic_and_stays_consistent() {
    let n = 800usize;
    let data = cloud(n, 55);
    let index = Arc::new(build(&data, 3));
    let pre_removed: Vec<u32> = (0..n as u32).step_by(13).collect();
    for &id in &pre_removed {
        assert!(index.remove(id).unwrap());
    }
    let live_before = index.len();
    let engine = Engine::start(
        Arc::clone(&index),
        EngineConfig {
            workers: 4,
            queue_capacity: 16, // small: exercise backpressure
        },
    );

    let resurfaced = AtomicUsize::new(0);
    let net_inserted = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = &engine;
            let data = &data;
            let pre_removed = &pre_removed;
            let resurfaced = &resurfaced;
            let net_inserted = &net_inserted;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + t);
                let mut my_inserts: Vec<u32> = Vec::new();
                for j in 0..120 {
                    match j % 6 {
                        // four searches per insert/remove pair
                        0..=3 => {
                            let qi = rng.gen_range(0..data.len());
                            let res = engine.search(data.point(qi), 4).wait().unwrap();
                            for id in res.ids() {
                                if pre_removed.binary_search(&id).is_ok() {
                                    resurfaced.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        4 => {
                            let p: Vec<f32> = (0..12).map(|_| rng.gen_range(-50.0..50.0)).collect();
                            my_inserts.push(engine.insert(&p).wait().unwrap());
                            net_inserted.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if let Some(id) = my_inserts.pop() {
                                if engine.remove(id).wait().unwrap() {
                                    net_inserted.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = engine.shutdown();
    assert_eq!(resurfaced.load(Ordering::Relaxed), 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.searches, 3 * 80);
    assert_eq!(
        index.len(),
        live_before + net_inserted.load(Ordering::Relaxed)
    );
    index.check_invariants();
}
