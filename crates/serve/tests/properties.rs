//! Sharding-transparency property tests: a [`ShardedDbLsh`] must answer
//! **byte-identically** — same `(distance, external id)` values, same
//! order, same work counters — to an unsharded [`DbLsh`] in canonical
//! query mode over the same data and parameters, for shard counts
//! {1, 2, 7}, under both partition policies, and *after interleaved
//! insert/remove traffic*.
//!
//! Why this holds by construction: every shard is built with the same
//! resolved parameters (hence the same Gaussian family), so a point's
//! window membership at any ladder radius and its exact distance are
//! independent of which shard holds it; the canonical ladder consumes
//! each round's merged candidates in `(distance, global id)` order, so
//! the consumption prefix — and therefore the answer and the `candidates`
//! / `rounds` / `index_probes` counters — depends only on the per-round
//! candidate *sets*, which partition exactly across shards.

use std::sync::Arc;

use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::{Dataset, QueryStats};
use dblsh_serve::{ShardPolicy, ShardedDbLsh};
use proptest::prelude::*;

/// Distinct-row datasets (duplicate points make leaf tie-breaking
/// order-dependent, as in the core relabel parity tests — the claim here
/// is about sharding, not duplicate tie-breaks).
fn distinct_rows(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, dim..=dim), 8..max_n).prop_map(
        |mut rows| {
            rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.dedup();
            rows
        },
    )
}

fn params(n: usize) -> DbLshParams {
    DbLshParams::paper_defaults(n)
        .with_kl(4, 3)
        .with_r_min(0.5)
        .with_t(4) // small budget so the cutoff path is exercised
}

/// Assert byte-identity between the sharded answer and the unsharded
/// canonical answer for one query.
fn assert_parity(sharded: &ShardedDbLsh, reference: &DbLsh, q: &[f32], k: usize) {
    let s = sharded.k_ann(q, k).unwrap();
    let r = reference
        .search_canonical(q, k, &SearchOptions::default())
        .unwrap();
    assert_eq!(s.ids(), r.ids(), "neighbor ids diverge");
    for (a, b) in s.neighbors.iter().zip(&r.neighbors) {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "distances not byte-identical"
        );
    }
    assert_eq!(s.stats, r.stats, "work counters diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fresh bulk builds: {1, 2, 7} shards, both policies, on- and
    /// off-dataset queries.
    #[test]
    fn sharded_kann_is_byte_identical_to_unsharded(
        rows in distinct_rows(120, 8),
        k in 1usize..10,
        qi in 0usize..120,
    ) {
        let data = Dataset::from_rows(&rows);
        let n = data.len();
        let p = params(n);
        let reference = DbLsh::build(Arc::new(data.clone()), &p).unwrap();
        let q = data.point(qi % n).to_vec();
        // off-dataset query: midpoint of the extremes
        let q2: Vec<f32> = data
            .point(0)
            .iter()
            .zip(data.point(n - 1))
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        for shards in [1usize, 2, 7] {
            if n < shards {
                continue;
            }
            for policy in [ShardPolicy::RoundRobin, ShardPolicy::HashId] {
                let sharded =
                    ShardedDbLsh::build_with_params(&data, &p, shards, policy).unwrap();
                assert_parity(&sharded, &reference, &q, k);
                assert_parity(&sharded, &reference, &q2, k);
            }
        }
    }

    /// Parity survives dynamic traffic: the same interleaved removes and
    /// inserts applied to the sharded and unsharded indexes keep the
    /// global id spaces in lockstep and the answers byte-identical —
    /// even though the sharded inserts route by load, not by the bulk
    /// partition policy.
    #[test]
    fn sharded_parity_through_interleaved_updates(
        rows in distinct_rows(100, 6),
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 6..=6), 1..12),
        remove_mod in 2usize..5,
        k in 1usize..8,
        qi in 0usize..100,
    ) {
        let data = Dataset::from_rows(&rows);
        let n = data.len();
        let p = params(n);
        for shards in [1usize, 2, 7] {
            if n < shards {
                continue;
            }
            let sharded =
                ShardedDbLsh::build_with_params(&data, &p, shards, ShardPolicy::RoundRobin)
                    .unwrap();
            // Drive BOTH indexes through the same traffic. The reference
            // is rebuilt per shard count so its state matches exactly.
            let mut reference = DbLsh::build(Arc::new(data.clone()), &p).unwrap();
            for (j, e) in extra.iter().enumerate() {
                let victim = ((j * remove_mod) % n) as u32;
                prop_assert_eq!(
                    sharded.remove(victim).unwrap_or(false),
                    reference.remove(victim).unwrap_or(false),
                    "remove outcomes diverge"
                );
                let gs = sharded.insert(e).unwrap();
                let gr = reference.insert(e).unwrap();
                prop_assert_eq!(gs, gr, "global insert ids must stay in lockstep");
                prop_assert!(sharded.contains(gs));
            }
            prop_assert_eq!(sharded.len(), reference.len());
            sharded.check_invariants();
            let q = reference.data().point(qi % reference.data().len()).to_vec();
            assert_parity(&sharded, &reference, &q, k);
            // per-query overrides keep parity too
            let opts = SearchOptions { budget: Some(3), ..Default::default() };
            let rs = sharded.search_with(&q, k, &opts).unwrap();
            let rr = reference.search_canonical(&q, k, &opts).unwrap();
            prop_assert_eq!(rs.ids(), rr.ids());
            prop_assert_eq!(rs.stats, rr.stats);
            prop_assert!(rs.stats.candidates <= 3, "budget override ignored");
        }
    }

    /// Compaction and fleet persistence stay sharding-transparent: a
    /// fleet with an aggressive auto-compaction policy, driven through
    /// interleaved insert/remove traffic and then snapshotted to disk
    /// and restored, answers byte-identically to an unsharded,
    /// never-compacted reference over the same traffic.
    #[test]
    fn compaction_and_snapshots_keep_sharded_parity(
        rows in distinct_rows(90, 6),
        extra in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 6..=6), 1..10),
        remove_mod in 2usize..5,
        k in 1usize..8,
        qi in 0usize..90,
        case in 0usize..1000,
    ) {
        use dblsh_serve::CompactionPolicy;
        let data = Dataset::from_rows(&rows);
        let n = data.len();
        let p = params(n);
        let sharded =
            ShardedDbLsh::build_with_params(&data, &p, 2, ShardPolicy::RoundRobin)
                .unwrap()
                .with_compaction_policy(CompactionPolicy {
                    dead_fraction: 0.05,
                    min_dead_rows: 1,
                });
        let mut reference = DbLsh::build(Arc::new(data.clone()), &p).unwrap();
        for (j, e) in extra.iter().enumerate() {
            let victim = ((j * remove_mod) % n) as u32;
            prop_assert_eq!(
                sharded.remove(victim).unwrap_or(false),
                reference.remove(victim).unwrap_or(false)
            );
            prop_assert_eq!(sharded.insert(e).unwrap(), reference.insert(e).unwrap());
        }
        sharded.check_invariants();

        let dir = std::env::temp_dir().join(format!("dblsh-prop-fleet-{case}"));
        let _ = std::fs::remove_dir_all(&dir);
        sharded.save_dir(&dir).unwrap();
        let restored = ShardedDbLsh::load_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        restored.check_invariants();
        prop_assert_eq!(restored.len(), reference.len());

        let q = reference.data().point(qi % reference.data().len()).to_vec();
        assert_parity(&sharded, &reference, &q, k);
        assert_parity(&restored, &reference, &q, k);
    }

    /// Per-stage tracing is observation-only: the traced sharded search
    /// answers byte-identically to the untraced one — same neighbor ids,
    /// same distance bits, same work counters — under both prefilter
    /// settings, while the trace itself attributes real time to the
    /// projection and tree-probe stages.
    #[test]
    fn traced_sharded_search_is_observation_only(
        rows in distinct_rows(100, 6),
        k in 1usize..8,
        qi in 0usize..100,
        prefilter in prop::bool::ANY,
    ) {
        use dblsh_telemetry::{QueryTrace, Stage};
        let data = Dataset::from_rows(&rows);
        let n = data.len();
        let p = params(n);
        let sharded =
            ShardedDbLsh::build_with_params(&data, &p, 2, ShardPolicy::RoundRobin).unwrap();
        let q = data.point(qi % n).to_vec();
        let opts = SearchOptions { prefilter, ..Default::default() };
        let untraced = sharded.search_with(&q, k, &opts).unwrap();
        let mut trace = QueryTrace::new();
        let traced = sharded.search_with_trace(&q, k, &opts, &mut trace).unwrap();
        prop_assert_eq!(traced.ids(), untraced.ids());
        for (a, b) in traced.neighbors.iter().zip(&untraced.neighbors) {
            prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        }
        prop_assert_eq!(traced.stats.clone(), untraced.stats.clone());
        prop_assert!(trace.get(Stage::Projection) > 0);
        prop_assert!(trace.get(Stage::TreeProbe) > 0);
        // nothing attributes queue or reply time below the engine
        prop_assert_eq!(trace.get(Stage::Queue), 0);
        prop_assert_eq!(trace.get(Stage::Reply), 0);
    }

    /// skip_stats zeroes counters without changing answers, and
    /// `QueryStats` merging over a sharded batch equals the per-query
    /// fold.
    #[test]
    fn sharded_options_and_batch_aggregate(
        rows in distinct_rows(80, 6),
        k in 1usize..6,
    ) {
        let data = Dataset::from_rows(&rows);
        let p = params(data.len());
        let sharded =
            ShardedDbLsh::build_with_params(&data, &p, 2, ShardPolicy::RoundRobin).unwrap();
        let q = data.point(0).to_vec();
        let quiet = sharded.search_with(&q, k, &SearchOptions {
            skip_stats: true,
            ..Default::default()
        }).unwrap();
        let loud = sharded.k_ann(&q, k).unwrap();
        prop_assert_eq!(quiet.stats, QueryStats::default());
        prop_assert_eq!(quiet.ids(), loud.ids());
    }
}
