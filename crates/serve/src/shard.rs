//! [`ShardedDbLsh`]: N independent [`DbLsh`] shards behind one global id
//! space, with a deterministic cross-shard top-k merge.
//!
//! # Shard layout and the id-space story
//!
//! Points are partitioned across shards at bulk build by a
//! [`ShardPolicy`]; afterwards [`ShardedDbLsh::insert`] routes each new
//! point to the least-loaded shard and [`ShardedDbLsh::remove`] routes by
//! the id→shard map. Three id spaces are in play, only one of them
//! public:
//!
//! * **global external ids** — the only ids callers ever see: the row
//!   index in the originally supplied dataset, plus densely increasing
//!   ids for inserts, exactly like an unsharded [`DbLsh`];
//! * **shard-local external ids** — each shard's own `DbLsh` row space;
//!   the router's `assign` table maps global → `(shard, local)` and each
//!   shard's `global_of_local` table maps back;
//! * **shard-internal ids** — the locality-relabeled layout *inside* each
//!   shard (see `DbLshParams::relabel`), which never leaks out of the
//!   shard, exactly as it never leaks out of an unsharded index.
//!
//! # Concurrency
//!
//! Every shard sits behind its own `RwLock`: readers never block each
//! other, and a writer blocks only its shard (plus a short critical
//! section on the router mutex to keep the global id map in step). A
//! query takes read locks on all shards for its duration — a consistent
//! snapshot — so a concurrent writer delays queries only for the length
//! of one single-shard update. No code path holds the router mutex while
//! acquiring a shard lock, which rules out lock-order cycles by
//! construction.
//!
//! # Determinism: the canonical cross-shard merge
//!
//! Queries run the *canonical round-exhaustive ladder*
//! ([`dblsh_core::CanonicalLadder`]): every shard probes the same radius,
//! all per-round candidates are merged and sorted into canonical
//! `(distance, global id)` order, and only then are the budget and `c·r`
//! termination rules applied. Because every shard is built with the same
//! resolved parameters (same Gaussian family, same ladder), window
//! membership and per-row distances are independent of which shard a
//! point lives in — so the answer is **byte-identical** to
//! [`DbLsh::search_canonical`] on an unsharded index over the same data,
//! for any shard count and any partition policy. The property tests in
//! `tests/properties.rs` assert exactly this, including after
//! interleaved insert/remove traffic.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dblsh_core::{
    CanonicalLadder, DbLsh, DbLshBuilder, DbLshParams, LadderPlan, ProberScratch, SearchOptions,
};
use dblsh_data::error::check_query;
use dblsh_data::io::{SectionBuf, SnapshotReader, SnapshotWriter};
use dblsh_data::kernels::key_parts;
use dblsh_data::wal::WalFile;
use dblsh_data::{AnnIndex, Dataset, DbLshError, Neighbor, QueryStats, SearchResult, Sq8Grid};
use dblsh_telemetry::{QueryTrace, Stage};

use crate::walrec::{self, WalOp};

/// How the bulk-build partitions points across shards.
///
/// The policy only decides *initial placement*; query answers are
/// byte-identical under any placement (that is the point of the
/// canonical merge), so the choice is about balance and operational
/// convenience, not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Point `i` goes to shard `i % shards`: perfectly balanced shard
    /// sizes for any input.
    #[default]
    RoundRobin,
    /// Point `i` goes to shard `mix64(i) % shards` (a fixed SplitMix64
    /// finalizer): placement is a pure function of the id, so two
    /// processes building over the same rows agree on placement without
    /// talking to each other. Balanced only in expectation; shards left
    /// empty on tiny inputs are topped up deterministically from the
    /// largest shard (every shard must hold at least one point).
    HashId,
}

/// Snapshot kind tag of a [`ShardedDbLsh`] fleet manifest
/// (`manifest.dblsh` in a [`ShardedDbLsh::save_dir`] directory).
pub const FLEET_SNAPSHOT_KIND: [u8; 4] = *b"SHRD";

/// WAL kind tag of a fleet shard's op log (`wal-<i>.dblshwal` next to
/// the fleet snapshot once [`ShardedDbLsh::enable_wal`] is on).
pub const FLEET_WAL_KIND: [u8; 4] = *b"SWAL";

/// The router's "this global id was allocated but never materialized"
/// sentinel: a torn WAL tail can lose the final (never-acknowledged)
/// insert of one shard while a later id from another shard survives.
/// Such holes stay permanently dead — ids are never recycled.
const UNASSIGNED: (u32, u32) = (u32::MAX, u32::MAX);

/// One write-ahead log per shard. Appends happen under the router
/// mutex (insert) or the owning shard's write lock (remove), so each
/// log is totally ordered and consistent with the acknowledgement
/// order of the operations it records.
#[derive(Debug)]
struct FleetWal {
    dir: PathBuf,
    logs: Vec<Mutex<WalFile>>,
}

impl FleetWal {
    fn append(&self, s: usize, payload: &[u8]) -> Result<(), DbLshError> {
        self.logs[s]
            .lock()
            .map_err(|_| DbLshError::poisoned("wal"))?
            .append(payload)
    }

    fn same_dir(&self, dir: &Path) -> bool {
        match (std::fs::canonicalize(&self.dir), std::fs::canonicalize(dir)) {
            (Ok(a), Ok(b)) => a == b,
            _ => self.dir == dir,
        }
    }
}

/// When a shard reclaims the space of its tombstoned rows
/// ([`DbLsh::compact`]). Checked after every successful remove, while
/// the shard's write lock is already held, so a compaction blocks
/// exactly what the triggering remove already blocked — its own shard —
/// and never perturbs the router's global id space (shard-local
/// external ids are preserved by compaction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once tombstoned rows reach this fraction of the shard's
    /// physical rows (live + dead). Paper-scale serving default: 0.3.
    pub dead_fraction: f64,
    /// ...and at least this many rows are dead — hysteresis so small
    /// shards don't re-compact on every handful of removes.
    pub min_dead_rows: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            dead_fraction: 0.3,
            min_dead_rows: 256,
        }
    }
}

impl CompactionPolicy {
    /// Whether a shard with `dead_rows` of `total_rows` physical rows
    /// should compact now.
    pub fn should_compact(&self, dead_rows: usize, total_rows: usize) -> bool {
        dead_rows >= self.min_dead_rows.max(1)
            && total_rows > 0
            && dead_rows as f64 >= self.dead_fraction * total_rows as f64
    }
}

/// SplitMix64 finalizer — a fixed, dependency-free 64-bit mix.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardPolicy {
    fn shard_of(self, id: u32, shards: usize) -> usize {
        match self {
            ShardPolicy::RoundRobin => id as usize % shards,
            ShardPolicy::HashId => (mix64(id as u64) % shards as u64) as usize,
        }
    }
}

/// One shard: an independent [`DbLsh`] plus the map from its local
/// external ids back to global ids (`global_of_local[local] = global`).
#[derive(Debug)]
struct Shard {
    index: DbLsh,
    global_of_local: Vec<u32>,
}

/// The global id table: `assign[global] = (shard, local)` for every id
/// ever handed out (removals tombstone inside the shard; ids are never
/// recycled), plus per-shard live counts for least-loaded insert routing.
#[derive(Debug)]
struct Router {
    assign: Vec<(u32, u32)>,
    live: Vec<usize>,
}

impl Router {
    fn least_loaded(&self) -> usize {
        let mut best = 0;
        for (s, &n) in self.live.iter().enumerate() {
            if n < self.live[best] {
                best = s;
            }
        }
        best
    }
}

/// Per-thread fan-out buffers: one [`ProberScratch`] per shard plus the
/// merged-keys buffer the coordinator sorts.
#[derive(Default)]
struct FanOutScratch {
    probers: Vec<ProberScratch>,
    keys: Vec<u64>,
}

thread_local! {
    /// Reused across requests so the fan-out path (probing *and* the
    /// cross-shard merge) stops allocating after the first query on each
    /// worker thread.
    static FAN_OUT_SCRATCH: RefCell<FanOutScratch> =
        RefCell::new(FanOutScratch::default());
}

/// Borrow the thread's fan-out buffers (fresh ones on re-entrancy, e.g.
/// a Drop impl querying mid-query, rather than panicking).
fn with_fan_out_scratch<T>(f: impl FnOnce(&mut FanOutScratch) -> T) -> T {
    FAN_OUT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut FanOutScratch::default()),
    })
}

/// N independent [`DbLsh`] shards behind one global id space with a
/// deterministic cross-shard top-k merge; see the module docs for the
/// layout, locking and determinism story.
///
/// All methods take `&self`: writers lock one shard, readers lock all
/// shards shared, so the structure is directly usable from a worker pool
/// (see [`crate::Engine`]).
#[derive(Debug)]
pub struct ShardedDbLsh {
    shards: Vec<RwLock<Shard>>,
    router: Mutex<Router>,
    params: DbLshParams,
    policy: ShardPolicy,
    dim: usize,
    /// Per-shard auto-compaction policy; `None` leaves reclamation to
    /// manual [`ShardedDbLsh::compact`] calls.
    compaction: Option<CompactionPolicy>,
    /// Total shard compactions performed (automatic + manual).
    compactions: AtomicU64,
    /// Per-shard write-ahead logs ([`ShardedDbLsh::enable_wal`]); when
    /// set, every insert/remove is logged **before** it is applied and
    /// [`ShardedDbLsh::load_dir`] replays the tail past the snapshot.
    wal: Option<FleetWal>,
    /// How many shard logs had a torn (partially written) final record
    /// dropped and physically truncated during the [`ShardedDbLsh::load_dir`]
    /// crash recovery that produced this fleet. The fault-path counter
    /// the torture harness asserts on.
    wal_truncations: AtomicU64,
}

impl ShardedDbLsh {
    /// Build from a [`DbLshBuilder`]: the configuration — including a
    /// requested `auto_r_min` estimate — is resolved **once over the
    /// full dataset**, then every shard is built with the identical
    /// resolved parameters, which is what keeps sharded answers
    /// byte-identical to an unsharded build.
    pub fn build(
        data: &Dataset,
        builder: &DbLshBuilder,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, DbLshError> {
        let params = builder.resolve_params_for(data)?;
        ShardedDbLsh::build_with_params(data, &params, shards, policy)
    }

    /// Build from fully resolved parameters (shared verbatim by every
    /// shard). Fails on an empty dataset, `shards == 0`, or fewer points
    /// than shards (every shard must hold at least one point).
    pub fn build_with_params(
        data: &Dataset,
        params: &DbLshParams,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, DbLshError> {
        params.validate()?;
        if shards == 0 {
            return Err(DbLshError::invalid("shards", "need at least one shard"));
        }
        let n = data.len();
        if n == 0 {
            return Err(DbLshError::EmptyDataset);
        }
        if n > u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        if n < shards {
            return Err(DbLshError::invalid(
                "shards",
                format!("{n} points cannot populate {shards} shards (every shard needs at least one point)"),
            ));
        }
        // Partition global ids by policy...
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for g in 0..n as u32 {
            members[policy.shard_of(g, shards)].push(g);
        }
        // ...topping up empty shards deterministically from the largest
        // one (HashId can leave shards empty on tiny inputs).
        while let Some(empty) = members.iter().position(Vec::is_empty) {
            // `n >= shards` was checked above, so while any shard is
            // empty some other shard holds at least two points — the
            // `else` arms are unreachable, spelled as loop exits so the
            // build path stays free of panic tokens.
            let Some(largest) = (0..shards).max_by_key(|&s| members[s].len()) else {
                break;
            };
            let Some(moved) = members[largest].pop() else {
                break;
            };
            members[empty].push(moved);
        }

        // Build every shard over its own row subset, in parallel. The
        // SQ8 pre-filter grid is learned ONCE over the full dataset and
        // injected into every shard: per-shard grids would quantize the
        // same point differently depending on placement, breaking the
        // byte-identical-to-unsharded contract (grid learning is a
        // per-dimension min/max over the point multiset, so the full-data
        // grid is exactly what an unsharded build would learn).
        let dim = data.dim();
        let grid = Sq8Grid::learn(dim, data.flat());
        let grid = &grid;
        let mut built: Vec<Option<Result<Shard, DbLshError>>> = Vec::new();
        built.resize_with(shards, || None);
        std::thread::scope(|scope| {
            for (slot, ids) in built.iter_mut().zip(&members) {
                scope.spawn(move || {
                    let mut rows = Vec::with_capacity(ids.len() * dim);
                    for &g in ids {
                        rows.extend_from_slice(data.point(g as usize));
                    }
                    *slot = Some(
                        Dataset::try_from_flat(dim, rows)
                            .and_then(|d| {
                                DbLsh::build_with_grid(Arc::new(d), params, Some(grid.clone()))
                            })
                            .map(|index| Shard {
                                index,
                                global_of_local: ids.clone(),
                            }),
                    );
                });
            }
        });
        let mut shard_vec = Vec::with_capacity(shards);
        for slot in built {
            // lint: allow(panic-free-surface) — thread::scope joined every builder, so each slot was written
            shard_vec.push(RwLock::new(slot.expect("shard build ran")?));
        }

        let mut assign = vec![(0u32, 0u32); n];
        let mut live = vec![0usize; shards];
        for (s, ids) in members.iter().enumerate() {
            live[s] = ids.len();
            for (local, &g) in ids.iter().enumerate() {
                assign[g as usize] = (s as u32, local as u32);
            }
        }

        Ok(ShardedDbLsh {
            shards: shard_vec,
            router: Mutex::new(Router { assign, live }),
            params: params.clone(),
            policy,
            dim,
            compaction: None,
            compactions: AtomicU64::new(0),
            wal: None,
            wal_truncations: AtomicU64::new(0),
        })
    }

    /// Turn on write-ahead logging rooted at `dir`: a baseline
    /// checkpoint ([`ShardedDbLsh::save_dir`]) is written immediately,
    /// one `wal-<i>.dblshwal` log is created per shard, and from here
    /// on every insert/remove is appended to its shard's log **before**
    /// it is applied. [`ShardedDbLsh::load_dir`] on the same directory
    /// is then *crash recovery*: snapshot + WAL replay reconstructs the
    /// exact pre-crash state, and each successful `save_dir` into `dir`
    /// truncates the logs (the checkpoint made them redundant).
    ///
    /// Durability model: an acknowledged write has reached the OS (it
    /// survives a process kill); call [`ShardedDbLsh::sync_wal`] where
    /// power-loss durability is required. Logging serializes inserts
    /// fleet-wide for the length of one log append (id allocation and
    /// the append must be atomic under the router mutex); removes only
    /// serialize against their own shard.
    pub fn enable_wal<P: AsRef<Path>>(mut self, dir: P) -> Result<Self, DbLshError> {
        if self.wal.is_some() {
            return Err(DbLshError::invalid("wal", "WAL is already enabled"));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| DbLshError::io("create", e))?;
        let mut logs = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            logs.push(Mutex::new(WalFile::create(
                dir.join(format!("wal-{s}.dblshwal")),
                FLEET_WAL_KIND,
            )?));
        }
        self.wal = Some(FleetWal {
            dir: dir.clone(),
            logs,
        });
        self.save_dir(&dir)?;
        Ok(self)
    }

    /// Whether write-ahead logging is on, and where it lives.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal.as_ref().map(|w| w.dir.as_path())
    }

    /// fsync every shard's WAL — the power-loss durability point for
    /// writes acknowledged since the last sync (appends alone are
    /// process-crash durable only).
    pub fn sync_wal(&self) -> Result<(), DbLshError> {
        if let Some(wal) = &self.wal {
            for log in &wal.logs {
                log.lock()
                    .map_err(|_| DbLshError::poisoned("wal"))?
                    .sync()?;
            }
        }
        Ok(())
    }

    /// Enable per-shard auto-compaction: after every successful remove
    /// the owning shard is compacted in place (under the write lock the
    /// remove already holds) once `policy` says its dead-row share is
    /// worth reclaiming.
    pub fn with_compaction_policy(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }

    /// The auto-compaction policy, if one is set.
    pub fn compaction_policy(&self) -> Option<CompactionPolicy> {
        self.compaction
    }

    /// Total shard compactions performed so far (automatic and manual).
    pub fn compaction_count(&self) -> u64 {
        // order: standalone monotone counter, reporting only.
        self.compactions.load(Ordering::Relaxed)
    }

    /// Compact every shard now, regardless of policy, one write lock at
    /// a time. Returns the total number of dead rows reclaimed, or
    /// [`DbLshError::LockPoisoned`] if a writer panicked mid-mutation —
    /// compacting possibly-torn rows would bake the tear in.
    pub fn compact(&self) -> Result<usize, DbLshError> {
        let mut dropped = 0usize;
        for lock in &self.shards {
            let mut shard = lock.write().map_err(|_| DbLshError::poisoned("shard"))?;
            let stats = shard.index.compact();
            if stats.dropped_rows > 0 {
                // order: standalone monotone counter; the compaction
                // itself is ordered by the shard write lock.
                self.compactions.fetch_add(1, Ordering::Relaxed);
            }
            dropped += stats.dropped_rows;
        }
        Ok(dropped)
    }

    /// Sum of tombstoned rows still occupying space across all shards.
    pub fn dead_rows(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .index
                    .dead_rows()
            })
            .sum()
    }

    /// The resolved parameters every shard was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The bulk-build partition policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live points per shard, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.router().live.clone()
    }

    /// Total number of live points across all shards.
    pub fn len(&self) -> usize {
        self.router().live.iter().sum()
    }

    /// True if no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` names a live point.
    pub fn contains(&self, id: u32) -> bool {
        let Some(&(s, local)) = self.router().assign.get(id as usize) else {
            return false;
        };
        if (s, local) == UNASSIGNED {
            // A crash-recovery hole (allocated, never acknowledged).
            return false;
        }
        self.read_shard(s as usize).index.contains(local)
    }

    /// Router guard for read-only observers (`len`, `shard_lens`,
    /// `contains`, `memory_bytes`). Poisoning is recovered: the router's
    /// tables are plain `Vec`s whose every published state is readable,
    /// so an observer answering from a poisoned router reports the last
    /// published state rather than panicking a metrics scrape. Mutation
    /// paths use [`ShardedDbLsh::try_router`] instead and refuse.
    fn router(&self) -> MutexGuard<'_, Router> {
        self.router.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Router guard for mutation paths: a poisoned router means a writer
    /// panicked mid-publication, so mutating on top would compound the
    /// tear — surface [`DbLshError::LockPoisoned`] instead.
    fn try_router(&self) -> Result<MutexGuard<'_, Router>, DbLshError> {
        self.router
            .lock()
            .map_err(|_| DbLshError::poisoned("router"))
    }

    /// Read guard on shard `s` for infallible observers; poisoning is
    /// recovered on the same grounds as [`ShardedDbLsh::router`].
    fn read_shard(&self, s: usize) -> RwLockReadGuard<'_, Shard> {
        self.shards[s]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Read guards on every shard at once (query fan-out, snapshots):
    /// these paths surface [`DbLshError::LockPoisoned`] rather than
    /// answer from an index a writer panicked inside of.
    fn read_all_shards(&self) -> Result<Vec<RwLockReadGuard<'_, Shard>>, DbLshError> {
        self.shards
            .iter()
            .map(|s| s.read().map_err(|_| DbLshError::poisoned("shard")))
            .collect()
    }

    /// Fallible write guard on shard `s` for the mutation paths.
    fn try_write_shard(&self, s: usize) -> Result<RwLockWriteGuard<'_, Shard>, DbLshError> {
        self.shards[s]
            .write()
            .map_err(|_| DbLshError::poisoned("shard"))
    }

    /// Insert one point, routed to the least-loaded shard (ties break to
    /// the lowest shard index). Returns the new point's **global** id —
    /// ids keep increasing densely across the whole engine, exactly like
    /// an unsharded index. Blocks writers of the same shard only.
    pub fn insert(&self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.dim {
            return Err(DbLshError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        let s = {
            let router = self.try_router()?;
            if router.assign.len() >= u32::MAX as usize {
                return Err(DbLshError::CapacityExceeded {
                    limit: u32::MAX as usize,
                });
            }
            router.least_loaded()
        };
        let mut shard = self.try_write_shard(s)?;
        // The local id `DbLsh::insert` will assign is its current id
        // bound (local external ids are dense), so the global mapping
        // can be logged and published *before* the apply.
        let local = shard.index.id_bound() as u32;
        // Allocate the global id, log, and publish atomically under the
        // router mutex (shard → router is the allowed lock order). The
        // WAL append must sit inside this critical section: ids are
        // acknowledged densely, so the log record claiming id `g` has
        // to win the same race that hands out `g`. A failed append
        // publishes nothing — no id is burnt, the caller sees the
        // error, and the on-disk log was rolled back by `WalFile`.
        let g = {
            let mut router = self.try_router()?;
            if router.assign.len() >= u32::MAX as usize {
                return Err(DbLshError::CapacityExceeded {
                    limit: u32::MAX as usize,
                });
            }
            let g = router.assign.len() as u32;
            if let Some(wal) = &self.wal {
                wal.append(s, &walrec::encode_insert(g, point))?;
            }
            router.assign.push((s as u32, local));
            g
        };
        // Apply under the shard write lock the mapping was published
        // under: a concurrent remove can never observe the mapping
        // before the point is queryable, and `len`/`check_invariants`
        // (which read the router only after the shard locks are free
        // or held shared) never see a count out of step with the
        // shard's actual contents. The apply cannot fail here — the
        // point is validated and capacity was checked — but if it ever
        // did, the logged record makes recovery apply what the caller
        // was told failed, which is the WAL's standard ambiguity for
        // un-acknowledged writes.
        match shard.index.insert(point) {
            Ok(applied) => {
                debug_assert_eq!(applied, local);
                shard.global_of_local.push(g);
                debug_assert_eq!(shard.global_of_local.len(), shard.index.id_bound());
                self.try_router()?.live[s] += 1;
                Ok(g)
            }
            Err(e) => Err(e),
        }
    }

    /// Remove the point with global id `id`, routed through the
    /// id→shard map. Same contract as [`DbLsh::remove`]: `Ok(true)` if
    /// it was live, `Ok(false)` if already removed, `Err(UnknownId)` if
    /// the id was never handed out.
    pub fn remove(&self, id: u32) -> Result<bool, DbLshError> {
        let (s, local) = {
            let router = self.try_router()?;
            match router.assign.get(id as usize) {
                None => return Err(DbLshError::UnknownId { id }),
                // A crash-recovery hole: the id was allocated but its
                // insert was torn from the WAL before acknowledgement.
                Some(&entry) if entry == UNASSIGNED => return Err(DbLshError::UnknownId { id }),
                Some(&(s, local)) => (s as usize, local),
            }
        };
        let mut shard = self.try_write_shard(s)?;
        // Log before applying — but only removes that will actually
        // flip a live point (the outcome is stable under the write
        // lock), so replay never has to guess about no-ops.
        if let Some(wal) = self.wal.as_ref() {
            if shard.index.contains(local) {
                wal.append(s, &walrec::encode_remove(id, local))?;
            }
        }
        let removed = shard.index.remove(local).map_err(|e| match e {
            DbLshError::UnknownId { .. } => DbLshError::UnknownId { id },
            other => other,
        })?;
        if removed {
            // Decrement while still holding the shard lock, for the same
            // observability guarantee as `insert` (shard → router is the
            // allowed lock order).
            self.try_router()?.live[s] -= 1;
            // Auto-compaction rides the write lock this remove already
            // holds: shard-local external ids survive compaction, so the
            // router's tables and every global id stay untouched.
            if let Some(policy) = self.compaction {
                let index = &mut shard.index;
                if policy.should_compact(index.dead_rows(), index.len() + index.dead_rows()) {
                    index.compact();
                    // order: standalone monotone counter; the compaction
                    // itself is ordered by the shard write lock.
                    self.compactions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(removed)
    }

    /// (c,k)-ANN with the index-wide defaults; see
    /// [`ShardedDbLsh::search_with`].
    pub fn k_ann(&self, q: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.search_with(q, k, &SearchOptions::default())
    }

    /// (c,k)-ANN over all shards: the canonical round-exhaustive ladder,
    /// byte-identical to [`DbLsh::search_canonical`] on an unsharded
    /// index over the same data and parameters (see the module docs).
    /// Takes a read lock on every shard for the duration of the query.
    pub fn search_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> Result<SearchResult, DbLshError> {
        check_query(self.dim, q, k)?;
        let plan = opts.plan(&self.params, k)?;
        let mut res = with_fan_out_scratch(|scratch| self.fan_out(q, k, &plan, scratch))?;
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    /// [`ShardedDbLsh::search_with`] with a per-stage
    /// [`dblsh_telemetry::QueryTrace`]: projection (all shards'
    /// query-projection + SQ8 preparation), per-round tree probing, SQ8
    /// pre-filtering, exact verification, and the cross-shard canonical
    /// merge (`sort_unstable` + ladder consumption,
    /// [`Stage::Merge`]) are timed into `trace`. Answers and
    /// [`QueryStats`] are byte-identical to the untraced path — the
    /// serving engine flips tracing per request without perturbing
    /// results.
    pub fn search_with_trace(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
        trace: &mut QueryTrace,
    ) -> Result<SearchResult, DbLshError> {
        check_query(self.dim, q, k)?;
        let plan = opts.plan(&self.params, k)?;
        let mut res =
            with_fan_out_scratch(|scratch| self.fan_out_traced(q, k, &plan, scratch, trace))?;
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    /// The fan-out/merge kernel: probe every shard per ladder round,
    /// merge the per-shard canonical key streams, and let the
    /// [`CanonicalLadder`] consume them in global `(distance, id)` order.
    fn fan_out(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut FanOutScratch,
    ) -> Result<SearchResult, DbLshError> {
        if scratch.probers.len() < self.shards.len() {
            scratch
                .probers
                .resize_with(self.shards.len(), ProberScratch::default);
        }
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.read_all_shards()?;
        let live: usize = guards.iter().map(|g| g.index.len()).sum();
        let mut probers = Vec::with_capacity(guards.len());
        for (g, sc) in guards.iter().zip(scratch.probers.iter_mut()) {
            probers.push(g.index.ladder_prober(q, sc)?);
        }
        let mut ladder = CanonicalLadder::new(plan, self.params.c, k, live);
        let mut stats = QueryStats::default();
        let keys = &mut scratch.keys;
        while let Some(r) = ladder.begin_round(&mut stats) {
            keys.clear();
            // Same threshold for every shard in the round (the k-th best
            // exact distance seen so far, across all shards), so pruning
            // decisions are independent of placement.
            let prune = plan.prefilter.then(|| ladder.prune_threshold());
            for (guard, prober) in guards.iter().zip(probers.iter_mut()) {
                prober.probe_round(
                    r,
                    plan.timing,
                    prune,
                    &mut stats,
                    |local| guard.global_of_local[local as usize],
                    keys,
                );
            }
            keys.sort_unstable(); // merge: global canonical order
            ladder.consume(keys, &mut stats);
        }
        Ok(ladder.into_result(stats))
    }

    /// [`ShardedDbLsh::fan_out`] with per-stage timing. Mirrors the
    /// untraced kernel statement for statement — the traced prober
    /// entry points are themselves pinned byte-identical — so only the
    /// clock reads differ.
    fn fan_out_traced(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut FanOutScratch,
        trace: &mut QueryTrace,
    ) -> Result<SearchResult, DbLshError> {
        if scratch.probers.len() < self.shards.len() {
            scratch
                .probers
                .resize_with(self.shards.len(), ProberScratch::default);
        }
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.read_all_shards()?;
        let live: usize = guards.iter().map(|g| g.index.len()).sum();
        let mut probers = Vec::with_capacity(guards.len());
        for (g, sc) in guards.iter().zip(scratch.probers.iter_mut()) {
            probers.push(g.index.ladder_prober_traced(q, sc, trace)?);
        }
        let mut ladder = CanonicalLadder::new(plan, self.params.c, k, live);
        let mut stats = QueryStats::default();
        let keys = &mut scratch.keys;
        while let Some(r) = ladder.begin_round(&mut stats) {
            keys.clear();
            let prune = plan.prefilter.then(|| ladder.prune_threshold());
            for (guard, prober) in guards.iter().zip(probers.iter_mut()) {
                prober.probe_round_traced(
                    r,
                    plan.timing,
                    prune,
                    &mut stats,
                    |local| guard.global_of_local[local as usize],
                    keys,
                    trace,
                );
            }
            let merge_started = std::time::Instant::now();
            keys.sort_unstable(); // merge: global canonical order
            ladder.consume(keys, &mut stats);
            trace.add(Stage::Merge, merge_started.elapsed().as_nanos() as u64);
        }
        Ok(ladder.into_result(stats))
    }

    /// One `(r, c)`-NN probe over all shards, with the canonical
    /// consumption order (the whole merged round in ascending
    /// `(distance, id)` order — deterministic under any sharding, unlike
    /// [`DbLsh::r_c_nn`]'s enumeration-order early exit).
    pub fn r_c_nn(&self, q: &[f32], r: f64) -> Result<(Option<Neighbor>, QueryStats), DbLshError> {
        check_query(self.dim, q, 1)?;
        if !(r > 0.0 && r.is_finite()) {
            return Err(DbLshError::invalid(
                "r",
                "probe radius must be positive and finite",
            ));
        }
        let budget = self.params.rcnn_budget();
        let cr = self.params.c * r;
        let mut stats = QueryStats {
            rounds: 1,
            ..QueryStats::default()
        };
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.read_all_shards()?;
        with_fan_out_scratch(|scratch| {
            if scratch.probers.len() < guards.len() {
                scratch
                    .probers
                    .resize_with(guards.len(), ProberScratch::default);
            }
            let keys = &mut scratch.keys;
            keys.clear();
            for (guard, sc) in guards.iter().zip(scratch.probers.iter_mut()) {
                let mut prober = guard.index.ladder_prober(q, sc)?;
                // (r,c)-NN is a single exact probe with no evolving k-th
                // best: no pre-filter (mirrors `DbLsh::r_c_nn`).
                prober.probe_round(
                    r,
                    false,
                    None,
                    &mut stats,
                    |local| guard.global_of_local[local as usize],
                    keys,
                );
            }
            keys.sort_unstable();
            // Keys are sorted ascending, so the first one is the closest
            // verified point: if it is within `c·r` it is the answer, and
            // if the budget runs out first it is still the best point the
            // probe can report (the budget-exhaustion case of
            // Definition 2 — the canonical order makes "return the
            // closest verified point" free, where the classic
            // enumeration-order probe returns whichever candidate
            // happened to exhaust the budget).
            if let Some(&first) = keys.first() {
                let (id, d) = key_parts(first);
                if d <= cr {
                    stats.candidates += 1;
                    return Ok((Some(Neighbor { id, dist: d as f32 }), stats));
                }
                if keys.len() >= budget {
                    stats.candidates += budget;
                    return Ok((Some(Neighbor { id, dist: d as f32 }), stats));
                }
                stats.candidates += keys.len();
            }
            Ok((None, stats))
        })
    }

    /// Answer one (c,k)-ANN query per row of `queries`, fanning rows
    /// across all available cores (each worker runs the full cross-shard
    /// merge for its rows). Results are in query order.
    pub fn search_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        self.search_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`ShardedDbLsh::search_batch`] with per-batch [`SearchOptions`].
    pub fn search_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        dblsh_data::parallel_search_batch(queries, self.dim, k, |q| self.search_with(q, k, opts))
    }

    /// Total heap footprint: every shard's index structures plus the
    /// global id tables.
    pub fn memory_bytes(&self) -> usize {
        let tables: usize = {
            let router = self.router();
            router.assign.len() * std::mem::size_of::<(u32, u32)>()
        };
        let shards: usize = self
            .shards
            .iter()
            .map(|s| {
                let g = s.read().unwrap_or_else(PoisonError::into_inner);
                g.index.memory_bytes() + g.global_of_local.len() * std::mem::size_of::<u32>()
            })
            .sum();
        tables + shards
    }

    /// Verify cross-shard invariants: the router's `assign` table and the
    /// shards' `global_of_local` tables are mutually inverse, live counts
    /// agree with every shard's live size, and every shard passes its own
    /// [`DbLsh::check_invariants`]. Panics with a description on
    /// violation. Cost is a full scan of every shard.
    pub fn check_invariants(&self) {
        // This is a panics-by-design diagnostic, so a poisoned lock is
        // recovered and the (possibly torn) state checked anyway — the
        // asserts below are exactly the right reporter for a tear.
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let router = self.router();
        assert_eq!(router.live.len(), guards.len(), "live table size");
        let total_ids: usize = guards.iter().map(|g| g.index.id_bound()).sum();
        // Crash-recovery holes (allocated but never-acknowledged ids)
        // sit in `assign` as sentinels and belong to no shard.
        let assigned = router
            .assign
            .iter()
            .filter(|&&entry| entry != UNASSIGNED)
            .count();
        assert_eq!(
            assigned, total_ids,
            "assign table out of step with shard id spaces"
        );
        for (s, guard) in guards.iter().enumerate() {
            assert_eq!(guard.index.data().dim(), self.dim, "shard {s} dim");
            assert_eq!(
                guard.global_of_local.len(),
                guard.index.id_bound(),
                "shard {s} id table out of step with its id space"
            );
            assert_eq!(
                router.live[s],
                guard.index.len(),
                "shard {s} live count out of sync"
            );
            for (local, &g) in guard.global_of_local.iter().enumerate() {
                assert_eq!(
                    router.assign[g as usize],
                    (s as u32, local as u32),
                    "assign and global_of_local disagree at global id {g}"
                );
            }
            guard.index.check_invariants();
        }
    }

    /// Snapshot the whole serving fleet into a directory: one
    /// `manifest.dblsh` (shard count, partition policy, compaction
    /// policy, and every shard's local→global id table) plus one
    /// `shard-<i>.dblsh` index snapshot per shard ([`DbLsh::save`]).
    /// All shard read locks are held for the duration, so the snapshot
    /// is a consistent point-in-time cut even under concurrent writers.
    ///
    /// The router's `assign` table is *not* stored — it is the inverse
    /// of the shards' id tables and is rebuilt (and cross-checked) by
    /// [`ShardedDbLsh::load_dir`].
    ///
    /// Crash safety: every file is written to a `.tmp` sibling and
    /// renamed into place, and the manifest — whose id tables must
    /// match the shard files — is committed **last**, so an interrupted
    /// save leaves the directory's previous consistent snapshot intact.
    pub fn save_dir<P: AsRef<Path>>(&self, dir: P) -> Result<(), DbLshError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| DbLshError::io("create", e))?;
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.read_all_shards()?;

        let mut w = SnapshotWriter::new(FLEET_SNAPSHOT_KIND);
        let mut meta = SectionBuf::new();
        meta.put_u64(guards.len() as u64);
        meta.put_u64(self.dim as u64);
        meta.put_u8(match self.policy {
            ShardPolicy::RoundRobin => 0,
            ShardPolicy::HashId => 1,
        });
        meta.put_u8(u8::from(self.compaction.is_some()));
        let policy = self.compaction.unwrap_or_default();
        meta.put_f64(policy.dead_fraction);
        meta.put_u64(policy.min_dead_rows as u64);
        // Trailing optional field (readers check `remaining()`, so
        // pre-WAL manifests still parse): whether WAL files accompany
        // this snapshot and must be replayed by `load_dir`.
        meta.put_u8(u8::from(self.wal.is_some()));
        w.section(*b"META", meta);
        let mut glob = SectionBuf::new();
        for guard in &guards {
            glob.put_u64(guard.global_of_local.len() as u64);
            glob.put_u32_slice(&guard.global_of_local);
        }
        w.section(*b"GLOB", glob);

        for (s, guard) in guards.iter().enumerate() {
            guard
                .index
                .save_file(dir.join(format!("shard-{s}.dblsh")))?;
        }
        w.write_file(dir.join("manifest.dblsh"))?;

        // The manifest commit makes every logged record redundant:
        // truncate the WALs while the shard read locks are still held
        // (writers log under a shard *write* lock, so nothing can
        // slip a record in between the snapshot cut and the truncate).
        // A crash in between is benign — replay is idempotent against
        // the newer snapshot (pre-checkpoint inserts are skipped by id,
        // re-removes are no-ops). Checkpointing into a directory other
        // than the WAL's leaves the logs alone: that snapshot is a
        // copy, not the recovery image the logs extend.
        if let Some(wal) = self.wal.as_ref().filter(|w| w.same_dir(dir)) {
            for log in &wal.logs {
                log.lock()
                    .map_err(|_| DbLshError::poisoned("wal"))?
                    .truncate()?;
            }
        }
        Ok(())
    }

    /// Restore a fleet saved by [`ShardedDbLsh::save_dir`]: load every
    /// shard snapshot, rebuild the router's `assign` table from the
    /// shards' id tables, and cross-check the whole global id space
    /// (every global id assigned exactly once, every shard built with
    /// identical parameters and dimensionality). Any inconsistency —
    /// a missing or mangled file, shards from different builds mixed
    /// into one directory — is a typed [`DbLshError`].
    pub fn load_dir<P: AsRef<Path>>(dir: P) -> Result<Self, DbLshError> {
        let dir = dir.as_ref();
        let manifest = SnapshotReader::read_file(dir.join("manifest.dblsh"), FLEET_SNAPSHOT_KIND)?;
        let mut meta = manifest.section(*b"META")?;
        let shard_count = meta.get_len()?;
        let dim = meta.get_len()?;
        let policy = match meta.get_u8()? {
            0 => ShardPolicy::RoundRobin,
            1 => ShardPolicy::HashId,
            other => {
                return Err(DbLshError::corrupt(format!(
                    "unknown shard policy tag {other}"
                )))
            }
        };
        let has_compaction = meta.get_u8()? != 0;
        let compaction = CompactionPolicy {
            dead_fraction: meta.get_f64()?,
            min_dead_rows: meta.get_len()?,
        };
        // Optional trailing field — absent in pre-WAL manifests.
        let wal_enabled = meta.remaining() > 0 && meta.get_u8()? != 0;
        meta.finish()?;
        if shard_count == 0 {
            return Err(DbLshError::corrupt("manifest names zero shards"));
        }
        if has_compaction && !compaction.dead_fraction.is_finite() {
            return Err(DbLshError::corrupt("non-finite compaction threshold"));
        }

        let mut glob = manifest.section(*b"GLOB")?;
        let mut tables: Vec<Vec<u32>> = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let len = glob.get_len()?;
            tables.push(glob.get_u32_vec(len)?);
        }
        glob.finish()?;

        let mut shards: Vec<RwLock<Shard>> = Vec::with_capacity(shard_count);
        let mut params: Option<DbLshParams> = None;
        for (s, global_of_local) in tables.iter().enumerate() {
            let index = DbLsh::load_file(dir.join(format!("shard-{s}.dblsh")))?;
            if index.data().dim() != dim {
                return Err(DbLshError::corrupt(format!(
                    "shard {s} is {}-dimensional, manifest says {dim}",
                    index.data().dim()
                )));
            }
            match &params {
                None => params = Some(index.params().clone()),
                Some(p) if p != index.params() => {
                    return Err(DbLshError::corrupt(format!(
                        "shard {s} was built with different parameters than shard 0"
                    )));
                }
                Some(_) => {}
            }
            if global_of_local.len() != index.id_bound() {
                return Err(DbLshError::corrupt(format!(
                    "shard {s} id table covers {} locals, index has {}",
                    global_of_local.len(),
                    index.id_bound()
                )));
            }
            shards.push(RwLock::new(Shard {
                index,
                global_of_local: global_of_local.clone(),
            }));
        }
        let Some(params) = params else {
            return Err(DbLshError::corrupt("manifest names zero shards"));
        };

        // Crash recovery: replay each shard's WAL tail on top of its
        // snapshot. The snapshot covers global ids [0, base_total);
        // records below that bound predate the checkpoint (a crash hit
        // between the manifest commit and the log truncation) and are
        // skipped — replay is idempotent. Torn final records were
        // already dropped (and physically truncated) by `WalFile::open`;
        // they were never acknowledged.
        let base_total: usize = tables.iter().map(Vec::len).sum();
        let mut torn_tails = 0u64;
        let wal = if wal_enabled {
            let mut logs = Vec::with_capacity(shard_count);
            for (s, lock) in shards.iter_mut().enumerate() {
                let (log, replay) =
                    WalFile::open(dir.join(format!("wal-{s}.dblshwal")), FLEET_WAL_KIND)?;
                torn_tails += u64::from(replay.torn);
                let shard = lock.get_mut().unwrap_or_else(PoisonError::into_inner);
                for (i, rec) in replay.records.iter().enumerate() {
                    let fail = |e: DbLshError| {
                        DbLshError::corrupt(format!("replaying WAL record {i} of shard {s}: {e}"))
                    };
                    match walrec::decode(rec)? {
                        WalOp::Insert { global, point } => {
                            if (global as usize) < base_total {
                                continue; // already in the snapshot
                            }
                            let local = shard.index.insert(&point).map_err(fail)?;
                            debug_assert_eq!(local as usize + 1, shard.index.id_bound());
                            shard.global_of_local.push(global);
                        }
                        WalOp::Remove { global: _, local } => {
                            if (local as usize) >= shard.index.id_bound() {
                                return Err(fail(DbLshError::UnknownId { id: local }));
                            }
                            // Ok(false) = logged before the checkpoint
                            // that already reflects it; a no-op.
                            shard.index.remove(local).map_err(fail)?;
                        }
                    }
                }
                logs.push(Mutex::new(log));
            }
            Some(FleetWal {
                dir: dir.to_path_buf(),
                logs,
            })
        } else {
            None
        };

        // Rebuild the router from the (replayed) shards' id tables.
        // Without a WAL they must tile the global id space exactly; with
        // one, holes past the snapshot bound are legal — a torn tail can
        // lose shard A's final (never-acknowledged) insert while a later
        // id from shard B survives — and stay permanently dead.
        let tables: Vec<Vec<u32>> = shards
            .iter_mut()
            .map(|l| {
                l.get_mut()
                    .unwrap_or_else(PoisonError::into_inner)
                    .global_of_local
                    .clone()
            })
            .collect();
        let claimed: usize = tables.iter().map(Vec::len).sum();
        let total = if wal_enabled {
            tables
                .iter()
                .flat_map(|t| t.iter())
                .map(|&g| g as usize + 1)
                .max()
                .unwrap_or(0)
        } else {
            claimed
        };
        let mut assign = vec![UNASSIGNED; total];
        for (s, table) in tables.iter().enumerate() {
            for (local, &g) in table.iter().enumerate() {
                let slot = assign.get_mut(g as usize).ok_or_else(|| {
                    DbLshError::corrupt(format!("global id {g} exceeds the fleet id space {total}"))
                })?;
                if *slot != UNASSIGNED {
                    return Err(DbLshError::corrupt(format!(
                        "global id {g} is claimed by two shards"
                    )));
                }
                *slot = (s as u32, local as u32);
            }
        }
        for (g, slot) in assign.iter().enumerate() {
            if *slot == UNASSIGNED && g < base_total {
                return Err(DbLshError::corrupt(format!(
                    "global id {g} inside the snapshot is claimed by no shard"
                )));
            }
        }
        let live: Vec<usize> = shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).index.len())
            .collect();

        Ok(ShardedDbLsh {
            shards,
            router: Mutex::new(Router { assign, live }),
            params,
            policy,
            dim,
            compaction: has_compaction.then_some(compaction),
            compactions: AtomicU64::new(0),
            wal,
            wal_truncations: AtomicU64::new(torn_tails),
        })
    }

    /// How many shard WAL logs had a torn final record dropped (and the
    /// file physically truncated back to the last whole record) by the
    /// [`ShardedDbLsh::load_dir`] crash recovery that produced this
    /// fleet. Zero for a freshly built fleet or a clean shutdown; the
    /// torture harness asserts it goes non-zero when it tears log tails
    /// on purpose.
    pub fn wal_truncations_recovered(&self) -> u64 {
        // order: written once during single-threaded recovery, read for
        // reporting — no concurrent writer to order against.
        self.wal_truncations.load(Ordering::Relaxed)
    }
}

impl AnnIndex for ShardedDbLsh {
    fn name(&self) -> &'static str {
        "DB-LSH-sharded"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.k_ann(query, k)
    }

    fn search_batch(&self, queries: &Dataset, k: usize) -> Result<Vec<SearchResult>, DbLshError> {
        ShardedDbLsh::search_batch(self, queries, k)
    }

    fn index_size_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn cloud(n: usize, dim: usize, seed: u64) -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n,
            dim,
            clusters: 12,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.02,
            seed,
        })
    }

    fn builder() -> DbLshBuilder {
        DbLshBuilder::new().k(6).l(3).t(8).r_min(0.5)
    }

    #[test]
    fn build_partitions_all_points() {
        let data = cloud(500, 12, 3);
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::HashId] {
            let idx = ShardedDbLsh::build(&data, &builder(), 4, policy).unwrap();
            assert_eq!(idx.shard_count(), 4);
            assert_eq!(idx.len(), 500);
            assert_eq!(idx.shard_lens().iter().sum::<usize>(), 500);
            assert!(idx.shard_lens().iter().all(|&n| n > 0));
            assert!((0..500u32).all(|g| idx.contains(g)));
            idx.check_invariants();
        }
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let data = cloud(103, 8, 1);
        let idx = ShardedDbLsh::build(&data, &builder(), 4, ShardPolicy::RoundRobin).unwrap();
        let lens = idx.shard_lens();
        assert_eq!(lens.iter().max().unwrap() - lens.iter().min().unwrap(), 1);
    }

    #[test]
    fn hash_policy_tops_up_empty_shards() {
        // with as many shards as points, hashing collides and some shards
        // start empty; the fix-up must leave every shard non-empty
        let data = cloud(7, 8, 2);
        let idx = ShardedDbLsh::build(&data, &builder(), 7, ShardPolicy::HashId).unwrap();
        assert!(idx.shard_lens().iter().all(|&n| n == 1));
        idx.check_invariants();
    }

    #[test]
    fn build_validation() {
        let data = cloud(10, 8, 5);
        assert!(matches!(
            ShardedDbLsh::build(&data, &builder(), 0, ShardPolicy::RoundRobin),
            Err(DbLshError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedDbLsh::build(&data, &builder(), 11, ShardPolicy::RoundRobin),
            Err(DbLshError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert_eq!(
            ShardedDbLsh::build(&Dataset::empty(8), &builder(), 2, ShardPolicy::RoundRobin)
                .unwrap_err(),
            DbLshError::EmptyDataset
        );
    }

    #[test]
    fn insert_routes_to_least_loaded_and_remove_routes_back() {
        let data = cloud(40, 8, 7);
        let idx = ShardedDbLsh::build(&data, &builder(), 4, ShardPolicy::RoundRobin).unwrap();
        // unbalance shard 0 by removing from it
        let victim = 0u32; // round-robin: global 0 -> shard 0
        assert!(idx.remove(victim).unwrap());
        assert!(!idx.remove(victim).unwrap(), "double remove reports false");
        assert!(!idx.contains(victim));
        assert_eq!(idx.len(), 39);
        // next insert must land on the now-least-loaded shard 0, and get
        // the next dense global id
        let id = idx.insert(&[0.5; 8]).unwrap();
        assert_eq!(id, 40);
        assert_eq!(idx.shard_lens(), vec![10, 10, 10, 10]);
        assert!(idx.contains(id));
        idx.check_invariants();
        assert!(matches!(
            idx.remove(10_000),
            Err(DbLshError::UnknownId { id: 10_000 })
        ));
    }

    #[test]
    fn insert_validates_without_corrupting_counts() {
        let data = cloud(20, 8, 9);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        assert!(matches!(
            idx.insert(&[1.0; 3]),
            Err(DbLshError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.insert(&[f32::NAN; 8]),
            Err(DbLshError::NonFiniteCoordinate)
        ));
        assert_eq!(idx.len(), 20);
        idx.check_invariants();
    }

    #[test]
    fn queries_validate_like_the_unsharded_index() {
        let data = cloud(50, 8, 11);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        assert!(matches!(
            idx.k_ann(&[1.0; 3], 5),
            Err(DbLshError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.k_ann(&[f32::NAN; 8], 5),
            Err(DbLshError::NonFiniteCoordinate)
        ));
        assert!(matches!(
            idx.k_ann(&[0.0; 8], 0),
            Err(DbLshError::InvalidParameter { param: "k", .. })
        ));
        assert!(matches!(
            idx.r_c_nn(&[0.0; 8], -1.0),
            Err(DbLshError::InvalidParameter { param: "r", .. })
        ));
    }

    #[test]
    fn removed_points_never_returned() {
        let data = cloud(300, 12, 13);
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin).unwrap();
        let q = data.point(5).to_vec();
        let before = idx.k_ann(&q, 5).unwrap();
        for id in before.ids() {
            idx.remove(id).unwrap();
        }
        let after = idx.k_ann(&q, 5).unwrap();
        for n in &after.neighbors {
            assert!(!before.ids().contains(&n.id), "removed id {} back", n.id);
            assert!(idx.contains(n.id));
        }
    }

    #[test]
    fn search_batch_matches_sequential() {
        let data = cloud(400, 12, 17);
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin).unwrap();
        let queries = Dataset::from_rows(&[
            data.point(1).to_vec(),
            data.point(9).to_vec(),
            data.point(200).to_vec(),
        ]);
        let batch = idx.search_batch(&queries, 7).unwrap();
        assert_eq!(batch.len(), 3);
        for (qi, res) in batch.iter().enumerate() {
            let solo = idx.k_ann(queries.point(qi), 7).unwrap();
            assert_eq!(res.ids(), solo.ids());
            assert_eq!(res.stats, solo.stats);
        }
        // aggregate path (QueryStats::merge) agrees with a manual fold
        let (results, total) = idx.search_batch_aggregate(&queries, 7).unwrap();
        assert_eq!(total, QueryStats::merged(results.iter().map(|r| &r.stats)));
    }

    #[test]
    fn r_c_nn_contract() {
        let data = cloud(200, 8, 19);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        let (hit, stats) = idx.r_c_nn(data.point(3), 1000.0).unwrap();
        assert!(hit.expect("radius covers everything").dist as f64 <= idx.params().c * 1000.0);
        assert_eq!(stats.rounds, 1);
        let (none, _) = idx.r_c_nn(&[1e4f32; 8], 1e-9).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn auto_compaction_triggers_and_preserves_answers() {
        let data = cloud(400, 8, 23);
        let reference = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .with_compaction_policy(CompactionPolicy {
                dead_fraction: 0.25,
                min_dead_rows: 10,
            });
        for id in (0..300u32).step_by(2) {
            assert!(idx.remove(id).unwrap());
            assert!(reference.remove(id).unwrap());
        }
        assert!(idx.compaction_count() > 0, "policy never fired");
        assert!(
            idx.dead_rows() < reference.dead_rows(),
            "auto-compaction reclaimed nothing"
        );
        idx.check_invariants();
        // answers stay byte-identical to the never-compacted fleet
        for qi in [1usize, 99, 333] {
            let a = idx.k_ann(data.point(qi), 7).unwrap();
            let b = reference.k_ann(data.point(qi), 7).unwrap();
            assert_eq!(a.ids(), b.ids());
            assert_eq!(a.stats, b.stats);
        }
        // global ids keep flowing from the same sequence
        assert_eq!(idx.insert(&[0.1; 8]).unwrap(), 400);
        idx.check_invariants();
    }

    #[test]
    fn manual_compact_reclaims_all_shards() {
        let data = cloud(200, 8, 29);
        let idx = ShardedDbLsh::build(&data, &builder(), 4, ShardPolicy::HashId).unwrap();
        for id in 0..100u32 {
            idx.remove(id).unwrap();
        }
        assert_eq!(idx.dead_rows(), 100);
        let dropped = idx.compact().unwrap();
        assert_eq!(dropped, 100);
        assert_eq!(idx.dead_rows(), 0);
        assert!(idx.compaction_count() >= 1);
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        assert!(!idx.contains(50));
        assert!(idx.contains(150));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dblsh-fleet-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_dir_load_dir_round_trips_a_fleet() {
        let data = cloud(300, 8, 31);
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin)
            .unwrap()
            .with_compaction_policy(CompactionPolicy::default());
        for id in (0..120u32).step_by(3) {
            idx.remove(id).unwrap();
        }
        idx.insert(&[0.5; 8]).unwrap();
        let dir = temp_dir("roundtrip");
        idx.save_dir(&dir).unwrap();
        let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
        loaded.check_invariants();
        assert_eq!(loaded.shard_count(), 3);
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.shard_lens(), idx.shard_lens());
        assert_eq!(loaded.policy(), idx.policy());
        assert_eq!(loaded.params(), idx.params());
        assert_eq!(loaded.compaction_policy(), idx.compaction_policy());
        for qi in [0usize, 7, 250] {
            let a = idx.k_ann(data.point(qi), 9).unwrap();
            let b = loaded.k_ann(data.point(qi), 9).unwrap();
            assert_eq!(a.ids(), b.ids(), "query {qi}");
            assert_eq!(a.stats, b.stats);
        }
        // the restored fleet keeps serving writes with the same ids
        assert_eq!(
            idx.insert(&[0.7; 8]).unwrap(),
            loaded.insert(&[0.7; 8]).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_rejects_mangled_fleets() {
        let data = cloud(60, 8, 37);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        let dir = temp_dir("mangled");
        idx.save_dir(&dir).unwrap();
        // missing shard file
        std::fs::remove_file(dir.join("shard-1.dblsh")).unwrap();
        assert!(matches!(
            ShardedDbLsh::load_dir(&dir),
            Err(DbLshError::Io { .. })
        ));
        // mismatched shard (from a different build) in shard-1's slot
        let other = ShardedDbLsh::build(
            &data,
            &DbLshBuilder::new().k(4).l(2).t(8).r_min(0.5),
            2,
            ShardPolicy::RoundRobin,
        )
        .unwrap();
        let donor = temp_dir("donor");
        other.save_dir(&donor).unwrap();
        std::fs::copy(donor.join("shard-1.dblsh"), dir.join("shard-1.dblsh")).unwrap();
        assert!(matches!(
            ShardedDbLsh::load_dir(&dir),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // corrupted manifest bytes
        let manifest = dir.join("manifest.dblsh");
        let mut bytes = std::fs::read(&manifest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&manifest, &bytes).unwrap();
        assert!(matches!(
            ShardedDbLsh::load_dir(&dir),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(donor);
    }

    /// Assert two fleets answer byte-identically (ids, distances and
    /// stats) over a probe set, and agree on membership.
    fn assert_fleets_identical(a: &ShardedDbLsh, b: &ShardedDbLsh, data: &Dataset) {
        assert_eq!(a.len(), b.len());
        let bound = a.router().assign.len() as u32;
        assert_eq!(bound, b.router().assign.len() as u32);
        for g in 0..bound {
            assert_eq!(a.contains(g), b.contains(g), "membership of id {g}");
        }
        for qi in (0..data.len()).step_by(data.len().div_ceil(7).max(1)) {
            let ra = a.k_ann(data.point(qi), 9).unwrap();
            let rb = b.k_ann(data.point(qi), 9).unwrap();
            assert_eq!(ra.ids(), rb.ids(), "query {qi}");
            assert_eq!(ra.neighbors, rb.neighbors, "query {qi}");
            assert_eq!(ra.stats, rb.stats, "query {qi}");
        }
    }

    #[test]
    fn wal_recovery_replays_every_acknowledged_write() {
        let data = cloud(200, 8, 41);
        let dir = temp_dir("wal-replay");
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin)
            .unwrap()
            .enable_wal(&dir)
            .unwrap();
        // Mutate well past the checkpoint WITHOUT saving again — these
        // writes live only in the WAL.
        for id in (0..80u32).step_by(4) {
            assert!(idx.remove(id).unwrap());
        }
        for i in 0..30 {
            idx.insert(&[i as f32 * 0.25; 8]).unwrap();
        }
        assert!(idx.remove(205).unwrap()); // remove a WAL-inserted point
        idx.check_invariants();
        // The never-faulted reference: the same op stream, no crash.
        let reference = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin).unwrap();
        for id in (0..80u32).step_by(4) {
            reference.remove(id).unwrap();
        }
        for i in 0..30 {
            reference.insert(&[i as f32 * 0.25; 8]).unwrap();
        }
        reference.remove(205).unwrap();
        // "Crash": drop the in-memory fleet, recover from disk — twice;
        // a read-only recovery must not consume or corrupt the log.
        for _ in 0..2 {
            let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
            loaded.check_invariants();
            assert_fleets_identical(&loaded, &reference, &data);
        }
        // Recovery keeps the id sequence: the next insert continues
        // densely, on both sides.
        let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
        assert_eq!(
            loaded.insert(&[9.9; 8]).unwrap(),
            reference.insert(&[9.9; 8]).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_dir_truncates_the_wal() {
        let data = cloud(120, 8, 43);
        let dir = temp_dir("wal-truncate");
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .enable_wal(&dir)
            .unwrap();
        for i in 0..20 {
            idx.insert(&[i as f32; 8]).unwrap();
        }
        idx.save_dir(&dir).unwrap();
        // Checkpoint committed → logs are header-only again.
        for s in 0..2 {
            let len = std::fs::metadata(dir.join(format!("wal-{s}.dblshwal")))
                .unwrap()
                .len();
            assert_eq!(
                len,
                dblsh_data::wal::WAL_HEADER_LEN,
                "wal-{s} not truncated"
            );
        }
        // Post-checkpoint traffic logs again and recovers.
        idx.remove(5).unwrap();
        let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
        loaded.check_invariants();
        assert_eq!(loaded.len(), idx.len());
        assert!(!loaded.contains(5));
        assert!(loaded.contains(130));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_torn_tail_loses_only_the_unacknowledged_write() {
        let data = cloud(100, 8, 47);
        let dir = temp_dir("wal-torn");
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .enable_wal(&dir)
            .unwrap();
        let a = idx.insert(&[1.0; 8]).unwrap(); // shard 0 (least loaded tie)
        let b = idx.insert(&[2.0; 8]).unwrap(); // the other shard
        drop(idx);
        // Tear the tail of the log holding `a`'s insert: find it by
        // decoding each shard's log.
        let mut torn_shard = None;
        for s in 0..2 {
            let bytes = std::fs::read(dir.join(format!("wal-{s}.dblshwal"))).unwrap();
            let replay = dblsh_data::wal::replay_wal(&bytes[..], FLEET_WAL_KIND).unwrap();
            if replay.records.len() == 1 {
                if let WalOp::Insert { global, .. } = walrec::decode(&replay.records[0]).unwrap() {
                    if global == a {
                        // Chop 3 bytes off the final record.
                        std::fs::write(
                            dir.join(format!("wal-{s}.dblshwal")),
                            &bytes[..bytes.len() - 3],
                        )
                        .unwrap();
                        torn_shard = Some(s);
                    }
                }
            }
        }
        let torn = torn_shard.expect("one shard logged exactly a's insert");
        let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
        loaded.check_invariants();
        // `a` is a hole: allocated, never materialized, permanently dead.
        assert!(!loaded.contains(a), "torn insert must not survive");
        assert!(matches!(
            loaded.remove(a),
            Err(DbLshError::UnknownId { .. })
        ));
        // `b` (acknowledged, in the *other* shard's intact log) survives.
        assert!(loaded.contains(b), "acknowledged write lost");
        assert_eq!(loaded.len(), 101);
        // Ids are never recycled: the hole stays dead.
        let next = loaded.insert(&[3.0; 8]).unwrap();
        assert_eq!(next, b + 1);
        assert!(!loaded.contains(a));
        // The torn log was physically truncated on open, so a fresh
        // recovery sees a clean prefix, not the same torn tail.
        let bytes = std::fs::read(dir.join(format!("wal-{torn}.dblshwal"))).unwrap();
        let replay = dblsh_data::wal::replay_wal(&bytes[..], FLEET_WAL_KIND).unwrap();
        assert!(!replay.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_bit_flip_is_a_typed_recovery_error() {
        let data = cloud(60, 8, 53);
        let dir = temp_dir("wal-flip");
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .enable_wal(&dir)
            .unwrap();
        idx.insert(&[1.5; 8]).unwrap();
        idx.insert(&[2.5; 8]).unwrap();
        drop(idx);
        // Flip a byte inside the first record's payload of a non-empty
        // log: recovery must refuse, not replay damaged bytes.
        let path = (0..2)
            .map(|s| dir.join(format!("wal-{s}.dblshwal")))
            .find(|p| std::fs::metadata(p).unwrap().len() > dblsh_data::wal::WAL_HEADER_LEN)
            .expect("some log holds a record");
        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = dblsh_data::wal::WAL_HEADER_LEN as usize + 10;
        bytes[flip_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardedDbLsh::load_dir(&dir),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_after_compaction_preserves_local_ids() {
        // Compaction relabels *internal* rows but preserves shard-local
        // external ids, so a WAL remove logged before a compaction must
        // still resolve after recovery replays it onto the compacted
        // snapshot — and vice versa: removes logged after a compaction
        // replay cleanly onto a snapshot taken before it.
        let data = cloud(300, 8, 59);
        let dir = temp_dir("wal-compact");
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .with_compaction_policy(CompactionPolicy {
                dead_fraction: 0.2,
                min_dead_rows: 8,
            })
            .enable_wal(&dir)
            .unwrap();
        let reference = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
            .unwrap()
            .with_compaction_policy(CompactionPolicy {
                dead_fraction: 0.2,
                min_dead_rows: 8,
            });
        // Interleave removes (tripping auto-compaction) with inserts.
        for i in 0..200u32 {
            if i % 2 == 0 {
                assert_eq!(idx.remove(i).unwrap(), reference.remove(i).unwrap());
            } else {
                assert_eq!(
                    idx.insert(&[i as f32 * 0.1; 8]).unwrap(),
                    reference.insert(&[i as f32 * 0.1; 8]).unwrap()
                );
            }
        }
        assert!(idx.compaction_count() > 0, "compaction never fired");
        let loaded = ShardedDbLsh::load_dir(&dir).unwrap();
        loaded.check_invariants();
        assert_fleets_identical(&loaded, &reference, &data);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
