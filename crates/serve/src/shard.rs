//! [`ShardedDbLsh`]: N independent [`DbLsh`] shards behind one global id
//! space, with a deterministic cross-shard top-k merge.
//!
//! # Shard layout and the id-space story
//!
//! Points are partitioned across shards at bulk build by a
//! [`ShardPolicy`]; afterwards [`ShardedDbLsh::insert`] routes each new
//! point to the least-loaded shard and [`ShardedDbLsh::remove`] routes by
//! the id→shard map. Three id spaces are in play, only one of them
//! public:
//!
//! * **global external ids** — the only ids callers ever see: the row
//!   index in the originally supplied dataset, plus densely increasing
//!   ids for inserts, exactly like an unsharded [`DbLsh`];
//! * **shard-local external ids** — each shard's own `DbLsh` row space;
//!   the router's `assign` table maps global → `(shard, local)` and each
//!   shard's `global_of_local` table maps back;
//! * **shard-internal ids** — the locality-relabeled layout *inside* each
//!   shard (see `DbLshParams::relabel`), which never leaks out of the
//!   shard, exactly as it never leaks out of an unsharded index.
//!
//! # Concurrency
//!
//! Every shard sits behind its own `RwLock`: readers never block each
//! other, and a writer blocks only its shard (plus a short critical
//! section on the router mutex to keep the global id map in step). A
//! query takes read locks on all shards for its duration — a consistent
//! snapshot — so a concurrent writer delays queries only for the length
//! of one single-shard update. No code path holds the router mutex while
//! acquiring a shard lock, which rules out lock-order cycles by
//! construction.
//!
//! # Determinism: the canonical cross-shard merge
//!
//! Queries run the *canonical round-exhaustive ladder*
//! ([`dblsh_core::CanonicalLadder`]): every shard probes the same radius,
//! all per-round candidates are merged and sorted into canonical
//! `(distance, global id)` order, and only then are the budget and `c·r`
//! termination rules applied. Because every shard is built with the same
//! resolved parameters (same Gaussian family, same ladder), window
//! membership and per-row distances are independent of which shard a
//! point lives in — so the answer is **byte-identical** to
//! [`DbLsh::search_canonical`] on an unsharded index over the same data,
//! for any shard count and any partition policy. The property tests in
//! `tests/properties.rs` assert exactly this, including after
//! interleaved insert/remove traffic.

use std::cell::RefCell;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use dblsh_core::{
    CanonicalLadder, DbLsh, DbLshBuilder, DbLshParams, LadderPlan, ProberScratch, SearchOptions,
};
use dblsh_data::error::check_query;
use dblsh_data::kernels::key_parts;
use dblsh_data::{AnnIndex, Dataset, DbLshError, Neighbor, QueryStats, SearchResult};

/// How the bulk-build partitions points across shards.
///
/// The policy only decides *initial placement*; query answers are
/// byte-identical under any placement (that is the point of the
/// canonical merge), so the choice is about balance and operational
/// convenience, not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Point `i` goes to shard `i % shards`: perfectly balanced shard
    /// sizes for any input.
    #[default]
    RoundRobin,
    /// Point `i` goes to shard `mix64(i) % shards` (a fixed SplitMix64
    /// finalizer): placement is a pure function of the id, so two
    /// processes building over the same rows agree on placement without
    /// talking to each other. Balanced only in expectation; shards left
    /// empty on tiny inputs are topped up deterministically from the
    /// largest shard (every shard must hold at least one point).
    HashId,
}

/// SplitMix64 finalizer — a fixed, dependency-free 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardPolicy {
    fn shard_of(self, id: u32, shards: usize) -> usize {
        match self {
            ShardPolicy::RoundRobin => id as usize % shards,
            ShardPolicy::HashId => (mix64(id as u64) % shards as u64) as usize,
        }
    }
}

/// One shard: an independent [`DbLsh`] plus the map from its local
/// external ids back to global ids (`global_of_local[local] = global`).
#[derive(Debug)]
struct Shard {
    index: DbLsh,
    global_of_local: Vec<u32>,
}

/// The global id table: `assign[global] = (shard, local)` for every id
/// ever handed out (removals tombstone inside the shard; ids are never
/// recycled), plus per-shard live counts for least-loaded insert routing.
#[derive(Debug)]
struct Router {
    assign: Vec<(u32, u32)>,
    live: Vec<usize>,
}

impl Router {
    fn least_loaded(&self) -> usize {
        let mut best = 0;
        for (s, &n) in self.live.iter().enumerate() {
            if n < self.live[best] {
                best = s;
            }
        }
        best
    }
}

/// Per-thread fan-out buffers: one [`ProberScratch`] per shard plus the
/// merged-keys buffer the coordinator sorts.
#[derive(Default)]
struct FanOutScratch {
    probers: Vec<ProberScratch>,
    keys: Vec<u64>,
}

thread_local! {
    /// Reused across requests so the fan-out path (probing *and* the
    /// cross-shard merge) stops allocating after the first query on each
    /// worker thread.
    static FAN_OUT_SCRATCH: RefCell<FanOutScratch> =
        RefCell::new(FanOutScratch::default());
}

/// Borrow the thread's fan-out buffers (fresh ones on re-entrancy, e.g.
/// a Drop impl querying mid-query, rather than panicking).
fn with_fan_out_scratch<T>(f: impl FnOnce(&mut FanOutScratch) -> T) -> T {
    FAN_OUT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut FanOutScratch::default()),
    })
}

/// N independent [`DbLsh`] shards behind one global id space with a
/// deterministic cross-shard top-k merge; see the module docs for the
/// layout, locking and determinism story.
///
/// All methods take `&self`: writers lock one shard, readers lock all
/// shards shared, so the structure is directly usable from a worker pool
/// (see [`crate::Engine`]).
#[derive(Debug)]
pub struct ShardedDbLsh {
    shards: Vec<RwLock<Shard>>,
    router: Mutex<Router>,
    params: DbLshParams,
    policy: ShardPolicy,
    dim: usize,
}

impl ShardedDbLsh {
    /// Build from a [`DbLshBuilder`]: the configuration — including a
    /// requested `auto_r_min` estimate — is resolved **once over the
    /// full dataset**, then every shard is built with the identical
    /// resolved parameters, which is what keeps sharded answers
    /// byte-identical to an unsharded build.
    pub fn build(
        data: &Dataset,
        builder: &DbLshBuilder,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, DbLshError> {
        let params = builder.resolve_params_for(data)?;
        ShardedDbLsh::build_with_params(data, &params, shards, policy)
    }

    /// Build from fully resolved parameters (shared verbatim by every
    /// shard). Fails on an empty dataset, `shards == 0`, or fewer points
    /// than shards (every shard must hold at least one point).
    pub fn build_with_params(
        data: &Dataset,
        params: &DbLshParams,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, DbLshError> {
        params.validate()?;
        if shards == 0 {
            return Err(DbLshError::invalid("shards", "need at least one shard"));
        }
        let n = data.len();
        if n == 0 {
            return Err(DbLshError::EmptyDataset);
        }
        if n > u32::MAX as usize {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        if n < shards {
            return Err(DbLshError::invalid(
                "shards",
                format!("{n} points cannot populate {shards} shards (every shard needs at least one point)"),
            ));
        }
        // Partition global ids by policy...
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for g in 0..n as u32 {
            members[policy.shard_of(g, shards)].push(g);
        }
        // ...topping up empty shards deterministically from the largest
        // one (HashId can leave shards empty on tiny inputs).
        while let Some(empty) = members.iter().position(Vec::is_empty) {
            let largest = (0..shards)
                .max_by_key(|&s| members[s].len())
                .expect("shards >= 1");
            let moved = members[largest].pop().expect("largest shard is non-empty");
            members[empty].push(moved);
        }

        // Build every shard over its own row subset, in parallel.
        let dim = data.dim();
        let mut built: Vec<Option<Result<Shard, DbLshError>>> = Vec::new();
        built.resize_with(shards, || None);
        std::thread::scope(|scope| {
            for (slot, ids) in built.iter_mut().zip(&members) {
                scope.spawn(move || {
                    let mut rows = Vec::with_capacity(ids.len() * dim);
                    for &g in ids {
                        rows.extend_from_slice(data.point(g as usize));
                    }
                    *slot = Some(
                        Dataset::try_from_flat(dim, rows)
                            .and_then(|d| DbLsh::build(Arc::new(d), params))
                            .map(|index| Shard {
                                index,
                                global_of_local: ids.clone(),
                            }),
                    );
                });
            }
        });
        let mut shard_vec = Vec::with_capacity(shards);
        for slot in built {
            shard_vec.push(RwLock::new(slot.expect("shard build ran")?));
        }

        let mut assign = vec![(0u32, 0u32); n];
        let mut live = vec![0usize; shards];
        for (s, ids) in members.iter().enumerate() {
            live[s] = ids.len();
            for (local, &g) in ids.iter().enumerate() {
                assign[g as usize] = (s as u32, local as u32);
            }
        }

        Ok(ShardedDbLsh {
            shards: shard_vec,
            router: Mutex::new(Router { assign, live }),
            params: params.clone(),
            policy,
            dim,
        })
    }

    /// The resolved parameters every shard was built with.
    pub fn params(&self) -> &DbLshParams {
        &self.params
    }

    /// The bulk-build partition policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live points per shard, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.router().live.clone()
    }

    /// Total number of live points across all shards.
    pub fn len(&self) -> usize {
        self.router().live.iter().sum()
    }

    /// True if no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` names a live point.
    pub fn contains(&self, id: u32) -> bool {
        let Some(&(s, local)) = self.router().assign.get(id as usize) else {
            return false;
        };
        self.read_shard(s as usize).index.contains(local)
    }

    fn router(&self) -> std::sync::MutexGuard<'_, Router> {
        self.router.lock().expect("router mutex poisoned")
    }

    fn read_shard(&self, s: usize) -> RwLockReadGuard<'_, Shard> {
        self.shards[s].read().expect("shard lock poisoned")
    }

    /// Insert one point, routed to the least-loaded shard (ties break to
    /// the lowest shard index). Returns the new point's **global** id —
    /// ids keep increasing densely across the whole engine, exactly like
    /// an unsharded index. Blocks writers of the same shard only.
    pub fn insert(&self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.dim {
            return Err(DbLshError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        let s = {
            let router = self.router();
            if router.assign.len() >= u32::MAX as usize {
                return Err(DbLshError::CapacityExceeded {
                    limit: u32::MAX as usize,
                });
            }
            router.least_loaded()
        };
        let mut shard = self.shards[s].write().expect("shard lock poisoned");
        match shard.index.insert(point) {
            Ok(local) => {
                // Publish the global id and bump the live count while
                // still holding the shard lock: a concurrent remove can
                // never observe the mapping before the point is
                // queryable, and `len`/`check_invariants` (which read
                // the router only after the shard locks are free or
                // held shared) never see a count out of step with the
                // shard's actual contents.
                let g = {
                    let mut router = self.router();
                    let g = router.assign.len() as u32;
                    router.assign.push((s as u32, local));
                    router.live[s] += 1;
                    g
                };
                shard.global_of_local.push(g);
                debug_assert_eq!(shard.global_of_local.len(), shard.index.data().len());
                Ok(g)
            }
            Err(e) => Err(e),
        }
    }

    /// Remove the point with global id `id`, routed through the
    /// id→shard map. Same contract as [`DbLsh::remove`]: `Ok(true)` if
    /// it was live, `Ok(false)` if already removed, `Err(UnknownId)` if
    /// the id was never handed out.
    pub fn remove(&self, id: u32) -> Result<bool, DbLshError> {
        let (s, local) = {
            let router = self.router();
            match router.assign.get(id as usize) {
                None => return Err(DbLshError::UnknownId { id }),
                Some(&(s, local)) => (s as usize, local),
            }
        };
        let mut shard = self.shards[s].write().expect("shard lock poisoned");
        let removed = shard.index.remove(local).map_err(|e| match e {
            DbLshError::UnknownId { .. } => DbLshError::UnknownId { id },
            other => other,
        })?;
        if removed {
            // Decrement while still holding the shard lock, for the same
            // observability guarantee as `insert` (shard → router is the
            // allowed lock order).
            self.router().live[s] -= 1;
        }
        Ok(removed)
    }

    /// (c,k)-ANN with the index-wide defaults; see
    /// [`ShardedDbLsh::search_with`].
    pub fn k_ann(&self, q: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.search_with(q, k, &SearchOptions::default())
    }

    /// (c,k)-ANN over all shards: the canonical round-exhaustive ladder,
    /// byte-identical to [`DbLsh::search_canonical`] on an unsharded
    /// index over the same data and parameters (see the module docs).
    /// Takes a read lock on every shard for the duration of the query.
    pub fn search_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> Result<SearchResult, DbLshError> {
        check_query(self.dim, q, k)?;
        let plan = opts.plan(&self.params, k)?;
        let mut res = with_fan_out_scratch(|scratch| self.fan_out(q, k, &plan, scratch))?;
        if opts.skip_stats {
            res.stats = QueryStats::default();
        }
        Ok(res)
    }

    /// The fan-out/merge kernel: probe every shard per ladder round,
    /// merge the per-shard canonical key streams, and let the
    /// [`CanonicalLadder`] consume them in global `(distance, id)` order.
    fn fan_out(
        &self,
        q: &[f32],
        k: usize,
        plan: &LadderPlan,
        scratch: &mut FanOutScratch,
    ) -> Result<SearchResult, DbLshError> {
        if scratch.probers.len() < self.shards.len() {
            scratch
                .probers
                .resize_with(self.shards.len(), ProberScratch::default);
        }
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned"))
            .collect();
        let live: usize = guards.iter().map(|g| g.index.len()).sum();
        let mut probers = Vec::with_capacity(guards.len());
        for (g, sc) in guards.iter().zip(scratch.probers.iter_mut()) {
            probers.push(g.index.ladder_prober(q, sc)?);
        }
        let mut ladder = CanonicalLadder::new(plan, self.params.c, k, live);
        let mut stats = QueryStats::default();
        let keys = &mut scratch.keys;
        while let Some(r) = ladder.begin_round(&mut stats) {
            keys.clear();
            for (guard, prober) in guards.iter().zip(probers.iter_mut()) {
                prober.probe_round(
                    r,
                    plan.timing,
                    &mut stats,
                    |local| guard.global_of_local[local as usize],
                    keys,
                );
            }
            keys.sort_unstable(); // merge: global canonical order
            ladder.consume(keys, &mut stats);
        }
        Ok(ladder.into_result(stats))
    }

    /// One `(r, c)`-NN probe over all shards, with the canonical
    /// consumption order (the whole merged round in ascending
    /// `(distance, id)` order — deterministic under any sharding, unlike
    /// [`DbLsh::r_c_nn`]'s enumeration-order early exit).
    pub fn r_c_nn(&self, q: &[f32], r: f64) -> Result<(Option<Neighbor>, QueryStats), DbLshError> {
        check_query(self.dim, q, 1)?;
        if !(r > 0.0 && r.is_finite()) {
            return Err(DbLshError::invalid(
                "r",
                "probe radius must be positive and finite",
            ));
        }
        let budget = self.params.rcnn_budget();
        let cr = self.params.c * r;
        let mut stats = QueryStats {
            rounds: 1,
            ..QueryStats::default()
        };
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned"))
            .collect();
        with_fan_out_scratch(|scratch| {
            if scratch.probers.len() < guards.len() {
                scratch
                    .probers
                    .resize_with(guards.len(), ProberScratch::default);
            }
            let keys = &mut scratch.keys;
            keys.clear();
            for (guard, sc) in guards.iter().zip(scratch.probers.iter_mut()) {
                let mut prober = guard.index.ladder_prober(q, sc)?;
                prober.probe_round(
                    r,
                    false,
                    &mut stats,
                    |local| guard.global_of_local[local as usize],
                    keys,
                );
            }
            keys.sort_unstable();
            // Keys are sorted ascending, so the first one is the closest
            // verified point: if it is within `c·r` it is the answer, and
            // if the budget runs out first it is still the best point the
            // probe can report (the budget-exhaustion case of
            // Definition 2 — the canonical order makes "return the
            // closest verified point" free, where the classic
            // enumeration-order probe returns whichever candidate
            // happened to exhaust the budget).
            if let Some(&first) = keys.first() {
                let (id, d) = key_parts(first);
                if d <= cr {
                    stats.candidates += 1;
                    return Ok((Some(Neighbor { id, dist: d as f32 }), stats));
                }
                if keys.len() >= budget {
                    stats.candidates += budget;
                    return Ok((Some(Neighbor { id, dist: d as f32 }), stats));
                }
                stats.candidates += keys.len();
            }
            Ok((None, stats))
        })
    }

    /// Answer one (c,k)-ANN query per row of `queries`, fanning rows
    /// across all available cores (each worker runs the full cross-shard
    /// merge for its rows). Results are in query order.
    pub fn search_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        self.search_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`ShardedDbLsh::search_batch`] with per-batch [`SearchOptions`].
    pub fn search_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> Result<Vec<SearchResult>, DbLshError> {
        dblsh_data::parallel_search_batch(queries, self.dim, k, |q| self.search_with(q, k, opts))
    }

    /// Total heap footprint: every shard's index structures plus the
    /// global id tables.
    pub fn memory_bytes(&self) -> usize {
        let tables: usize = {
            let router = self.router();
            router.assign.len() * std::mem::size_of::<(u32, u32)>()
        };
        let shards: usize = self
            .shards
            .iter()
            .map(|s| {
                let g = s.read().expect("shard lock poisoned");
                g.index.memory_bytes() + g.global_of_local.len() * std::mem::size_of::<u32>()
            })
            .sum();
        tables + shards
    }

    /// Verify cross-shard invariants: the router's `assign` table and the
    /// shards' `global_of_local` tables are mutually inverse, live counts
    /// agree with every shard's live size, and every shard passes its own
    /// [`DbLsh::check_invariants`]. Panics with a description on
    /// violation. Cost is a full scan of every shard.
    pub fn check_invariants(&self) {
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned"))
            .collect();
        let router = self.router();
        assert_eq!(router.live.len(), guards.len(), "live table size");
        let total_rows: usize = guards.iter().map(|g| g.index.data().len()).sum();
        assert_eq!(
            router.assign.len(),
            total_rows,
            "assign table out of step with shard rows"
        );
        for (s, guard) in guards.iter().enumerate() {
            assert_eq!(guard.index.data().dim(), self.dim, "shard {s} dim");
            assert_eq!(
                guard.global_of_local.len(),
                guard.index.data().len(),
                "shard {s} id table out of step with its rows"
            );
            assert_eq!(
                router.live[s],
                guard.index.len(),
                "shard {s} live count out of sync"
            );
            for (local, &g) in guard.global_of_local.iter().enumerate() {
                assert_eq!(
                    router.assign[g as usize],
                    (s as u32, local as u32),
                    "assign and global_of_local disagree at global id {g}"
                );
            }
            guard.index.check_invariants();
        }
    }
}

impl AnnIndex for ShardedDbLsh {
    fn name(&self) -> &'static str {
        "DB-LSH-sharded"
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.k_ann(query, k)
    }

    fn search_batch(&self, queries: &Dataset, k: usize) -> Result<Vec<SearchResult>, DbLshError> {
        ShardedDbLsh::search_batch(self, queries, k)
    }

    fn index_size_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn cloud(n: usize, dim: usize, seed: u64) -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n,
            dim,
            clusters: 12,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.02,
            seed,
        })
    }

    fn builder() -> DbLshBuilder {
        DbLshBuilder::new().k(6).l(3).t(8).r_min(0.5)
    }

    #[test]
    fn build_partitions_all_points() {
        let data = cloud(500, 12, 3);
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::HashId] {
            let idx = ShardedDbLsh::build(&data, &builder(), 4, policy).unwrap();
            assert_eq!(idx.shard_count(), 4);
            assert_eq!(idx.len(), 500);
            assert_eq!(idx.shard_lens().iter().sum::<usize>(), 500);
            assert!(idx.shard_lens().iter().all(|&n| n > 0));
            assert!((0..500u32).all(|g| idx.contains(g)));
            idx.check_invariants();
        }
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let data = cloud(103, 8, 1);
        let idx = ShardedDbLsh::build(&data, &builder(), 4, ShardPolicy::RoundRobin).unwrap();
        let lens = idx.shard_lens();
        assert_eq!(lens.iter().max().unwrap() - lens.iter().min().unwrap(), 1);
    }

    #[test]
    fn hash_policy_tops_up_empty_shards() {
        // with as many shards as points, hashing collides and some shards
        // start empty; the fix-up must leave every shard non-empty
        let data = cloud(7, 8, 2);
        let idx = ShardedDbLsh::build(&data, &builder(), 7, ShardPolicy::HashId).unwrap();
        assert!(idx.shard_lens().iter().all(|&n| n == 1));
        idx.check_invariants();
    }

    #[test]
    fn build_validation() {
        let data = cloud(10, 8, 5);
        assert!(matches!(
            ShardedDbLsh::build(&data, &builder(), 0, ShardPolicy::RoundRobin),
            Err(DbLshError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedDbLsh::build(&data, &builder(), 11, ShardPolicy::RoundRobin),
            Err(DbLshError::InvalidParameter {
                param: "shards",
                ..
            })
        ));
        assert_eq!(
            ShardedDbLsh::build(&Dataset::empty(8), &builder(), 2, ShardPolicy::RoundRobin)
                .unwrap_err(),
            DbLshError::EmptyDataset
        );
    }

    #[test]
    fn insert_routes_to_least_loaded_and_remove_routes_back() {
        let data = cloud(40, 8, 7);
        let idx = ShardedDbLsh::build(&data, &builder(), 4, ShardPolicy::RoundRobin).unwrap();
        // unbalance shard 0 by removing from it
        let victim = 0u32; // round-robin: global 0 -> shard 0
        assert!(idx.remove(victim).unwrap());
        assert!(!idx.remove(victim).unwrap(), "double remove reports false");
        assert!(!idx.contains(victim));
        assert_eq!(idx.len(), 39);
        // next insert must land on the now-least-loaded shard 0, and get
        // the next dense global id
        let id = idx.insert(&[0.5; 8]).unwrap();
        assert_eq!(id, 40);
        assert_eq!(idx.shard_lens(), vec![10, 10, 10, 10]);
        assert!(idx.contains(id));
        idx.check_invariants();
        assert!(matches!(
            idx.remove(10_000),
            Err(DbLshError::UnknownId { id: 10_000 })
        ));
    }

    #[test]
    fn insert_validates_without_corrupting_counts() {
        let data = cloud(20, 8, 9);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        assert!(matches!(
            idx.insert(&[1.0; 3]),
            Err(DbLshError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.insert(&[f32::NAN; 8]),
            Err(DbLshError::NonFiniteCoordinate)
        ));
        assert_eq!(idx.len(), 20);
        idx.check_invariants();
    }

    #[test]
    fn queries_validate_like_the_unsharded_index() {
        let data = cloud(50, 8, 11);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        assert!(matches!(
            idx.k_ann(&[1.0; 3], 5),
            Err(DbLshError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.k_ann(&[f32::NAN; 8], 5),
            Err(DbLshError::NonFiniteCoordinate)
        ));
        assert!(matches!(
            idx.k_ann(&[0.0; 8], 0),
            Err(DbLshError::InvalidParameter { param: "k", .. })
        ));
        assert!(matches!(
            idx.r_c_nn(&[0.0; 8], -1.0),
            Err(DbLshError::InvalidParameter { param: "r", .. })
        ));
    }

    #[test]
    fn removed_points_never_returned() {
        let data = cloud(300, 12, 13);
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin).unwrap();
        let q = data.point(5).to_vec();
        let before = idx.k_ann(&q, 5).unwrap();
        for id in before.ids() {
            idx.remove(id).unwrap();
        }
        let after = idx.k_ann(&q, 5).unwrap();
        for n in &after.neighbors {
            assert!(!before.ids().contains(&n.id), "removed id {} back", n.id);
            assert!(idx.contains(n.id));
        }
    }

    #[test]
    fn search_batch_matches_sequential() {
        let data = cloud(400, 12, 17);
        let idx = ShardedDbLsh::build(&data, &builder(), 3, ShardPolicy::RoundRobin).unwrap();
        let queries = Dataset::from_rows(&[
            data.point(1).to_vec(),
            data.point(9).to_vec(),
            data.point(200).to_vec(),
        ]);
        let batch = idx.search_batch(&queries, 7).unwrap();
        assert_eq!(batch.len(), 3);
        for (qi, res) in batch.iter().enumerate() {
            let solo = idx.k_ann(queries.point(qi), 7).unwrap();
            assert_eq!(res.ids(), solo.ids());
            assert_eq!(res.stats, solo.stats);
        }
        // aggregate path (QueryStats::merge) agrees with a manual fold
        let (results, total) = idx.search_batch_aggregate(&queries, 7).unwrap();
        assert_eq!(total, QueryStats::merged(results.iter().map(|r| &r.stats)));
    }

    #[test]
    fn r_c_nn_contract() {
        let data = cloud(200, 8, 19);
        let idx = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).unwrap();
        let (hit, stats) = idx.r_c_nn(data.point(3), 1000.0).unwrap();
        assert!(hit.expect("radius covers everything").dist as f64 <= idx.params().c * 1000.0);
        assert_eq!(stats.rounds, 1);
        let (none, _) = idx.r_c_nn(&[1e4f32; 8], 1e-9).unwrap();
        assert!(none.is_none());
    }
}
