//! # dblsh-serve — sharded concurrent serving over DB-LSH
//!
//! The serving layer the ROADMAP's "heavy traffic" north star asks for:
//! a [`ShardedDbLsh`] wrapping N independent `DbLsh` shards behind one
//! global id space, and an [`Engine`] worker pool draining a bounded
//! request queue against it.
//!
//! * **Sharding** ([`ShardedDbLsh`]): points are partitioned at bulk
//!   build by a [`ShardPolicy`]; inserts route to the least-loaded
//!   shard, removes route through the id→shard map, and external ids
//!   stay global — callers cannot tell a sharded index from an
//!   unsharded one by its id space.
//! * **Concurrency**: per-shard `RwLock`s — readers never block each
//!   other; a writer blocks only its own shard.
//! * **Determinism**: queries run the canonical round-exhaustive ladder
//!   ([`dblsh_core::CanonicalLadder`]) and merge per-shard candidates in
//!   canonical `(distance, global id)` order, so answers are
//!   **byte-identical** to [`dblsh_core::DbLsh::search_canonical`] on an
//!   unsharded index over the same data, for any shard count and any
//!   partition policy — property-tested, including through interleaved
//!   insert/remove traffic.
//! * **Serving** ([`Engine`]): long-lived workers, bounded submission
//!   queue with backpressure, per-request [`dblsh_data::QueryStats`]
//!   aggregated into [`EngineStats`] (QPS, log₂-bucket p50/p99 latency,
//!   candidates verified). The `saturate` binary in `dblsh-bench` drives
//!   it with mixed read/write workloads at increasing worker counts.
//!
//! ```
//! use std::sync::Arc;
//! use dblsh_core::DbLshBuilder;
//! use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
//! use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
//!
//! let data = gaussian_mixture(&MixtureConfig {
//!     n: 1000, dim: 16, ..Default::default()
//! });
//! let index = ShardedDbLsh::build(
//!     &data,
//!     &DbLshBuilder::new().l(3).auto_r_min(),
//!     4,
//!     ShardPolicy::RoundRobin,
//! ).expect("valid configuration");
//!
//! let engine = Engine::start(Arc::new(index), EngineConfig::default());
//! let q = data.point(0).to_vec();
//! let top5 = engine.search(&q, 5).wait().expect("well-formed query");
//! assert_eq!(top5.neighbors[0].id, 0); // global ids: the point itself
//! let stats = engine.shutdown();
//! assert_eq!(stats.searches, 1);
//! ```

mod engine;
mod replica;
mod shard;
mod walrec;

pub use engine::{Engine, EngineConfig, EngineStats, LatencyHistogram, Ticket};
pub use replica::{
    FaultAction, FaultHook, FaultPlan, FaultSite, ReplicaState, ReplicaStats, ReplicatedShard,
    REPLICA_WAL_KIND,
};
pub use shard::{CompactionPolicy, ShardPolicy, ShardedDbLsh, FLEET_SNAPSHOT_KIND, FLEET_WAL_KIND};
