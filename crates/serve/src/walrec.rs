//! WAL record payloads shared by the sharded fleet
//! ([`crate::ShardedDbLsh`]) and replica groups
//! ([`crate::ReplicatedShard`]): the schema *inside* each checksummed
//! [`dblsh_data::wal`] record.
//!
//! # Record layout (little-endian, after the container's `len | crc32`)
//!
//! ```text
//! insert   op: u8 = 1 | global: u32 | dim: u32 | point: dim x f32
//! remove   op: u8 = 2 | global: u32 | local: u32
//! ```
//!
//! `global` is the id the caller was (or would have been) acknowledged
//! with; for a replica group, which owns a single unsharded index,
//! global and local coincide. Replay is idempotent against a newer
//! base snapshot: an insert whose id the snapshot already covers is
//! skipped, and a remove of an already-removed id is a no-op — so a
//! crash *between* a checkpoint commit and the WAL truncation that
//! should follow it only re-applies work, never corrupts it.

use dblsh_data::io::SectionCursor;
use dblsh_data::DbLshError;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// One logged mutation, decoded.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalOp {
    /// `insert` acknowledged as `global`.
    Insert { global: u32, point: Vec<f32> },
    /// `remove` of `global`, which lived at `local` in its shard.
    Remove { global: u32, local: u32 },
}

/// Frame an insert payload.
pub(crate) fn encode_insert(global: u32, point: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + point.len() * 4);
    out.push(OP_INSERT);
    out.extend_from_slice(&global.to_le_bytes());
    out.extend_from_slice(&(point.len() as u32).to_le_bytes());
    for &v in point {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Frame a remove payload.
pub(crate) fn encode_remove(global: u32, local: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(OP_REMOVE);
    out.extend_from_slice(&global.to_le_bytes());
    out.extend_from_slice(&local.to_le_bytes());
    out
}

/// Decode one record payload; schema violations are typed
/// [`DbLshError::CorruptSnapshot`] (the container's CRC already passed,
/// so damage here means writer/reader schema drift, which must not be
/// replayed on faith).
pub(crate) fn decode(bytes: &[u8]) -> Result<WalOp, DbLshError> {
    let mut c = SectionCursor::over(*b"WREC", bytes);
    let op = match c.get_u8()? {
        OP_INSERT => {
            let global = c.get_u32()?;
            let dim = c.get_u32()? as usize;
            let point = c.get_f32_vec(dim)?;
            WalOp::Insert { global, point }
        }
        OP_REMOVE => WalOp::Remove {
            global: c.get_u32()?,
            local: c.get_u32()?,
        },
        other => return Err(DbLshError::corrupt(format!("unknown WAL op tag {other}"))),
    };
    c.finish()?;
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip() {
        let ins = encode_insert(7, &[1.0, -2.5, 3.25]);
        assert_eq!(
            decode(&ins).unwrap(),
            WalOp::Insert {
                global: 7,
                point: vec![1.0, -2.5, 3.25]
            }
        );
        let rem = encode_remove(9, 4);
        assert_eq!(
            decode(&rem).unwrap(),
            WalOp::Remove {
                global: 9,
                local: 4
            }
        );
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // unknown op
        assert!(matches!(
            decode(&[99]),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // truncated insert
        let ins = encode_insert(7, &[1.0, 2.0]);
        assert!(matches!(
            decode(&ins[..ins.len() - 1]),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // trailing bytes
        let mut rem = encode_remove(1, 2);
        rem.push(0);
        assert!(matches!(
            decode(&rem),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // empty
        assert!(decode(&[]).is_err());
    }
}
