//! Replica groups: R byte-identical copies of one [`DbLsh`] behind a
//! single write-ahead log.
//!
//! A [`ReplicatedShard`] owns `R` copies of an unsharded index plus one
//! group WAL (`replica.dblshwal`, kind [`REPLICA_WAL_KIND`]) and a base
//! snapshot (`replica.dblsh`). The failure model it defends against is
//! a *single copy* going bad at runtime — a panic inside an apply or a
//! query, a torn in-memory mutation, an injected fault — while the
//! group as a whole keeps serving:
//!
//! * **Writes** take the group write mutex, append to the WAL first
//!   (an acknowledged write is durable regardless of replica health),
//!   then fan out to every live replica *in WAL order* — the mutex is
//!   the total order, so replicas can only ever disagree by having
//!   missed a suffix, never by reordering.
//! * **Reads** round-robin across live replicas and fail over past
//!   quarantined ones; answers are canonical
//!   ([`DbLsh::search_canonical`]), so the caller cannot tell which
//!   replica answered. All replicas dead ⇒ [`DbLshError::Busy`]
//!   (retryable — rehydration is already running).
//! * **Quarantine**: a replica that panics or errors mid-apply is
//!   pulled from rotation immediately (its copy is dropped — a torn
//!   mutation is never trusted) and a background thread rebuilds it
//!   from the snapshot, catches up from the WAL under the write mutex,
//!   and readmits it **only after a logical-parity self-check** against
//!   a live replica. Physical layout may differ between copies; the
//!   check digests `(id, point)` content, which is what canonical
//!   queries depend on.
//!
//! Fault injection for the torture harness threads through
//! [`FaultHook`]/[`FaultPlan`] (kill or panic a replica at a chosen
//! write) and [`ReplicatedShard::set_wal_faults`] (I/O faults on the
//! log itself — see [`dblsh_data::wal::WriteFaultPlan`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;

use dblsh_core::{DbLsh, SearchOptions};
use dblsh_data::error::check_query;
use dblsh_data::io::crc32;
use dblsh_data::wal::{replay_wal, WalFile, WriteFaultPlan};
use dblsh_data::{DbLshError, SearchResult};

use crate::shard::mix64;
use crate::walrec::{self, WalOp};

/// Container kind tag of a replica-group WAL.
pub const REPLICA_WAL_KIND: [u8; 4] = *b"RWAL";

/// Base snapshot file inside the group directory.
const SNAPSHOT_FILE: &str = "replica.dblsh";
/// Group WAL file inside the group directory.
const WAL_FILE: &str = "replica.dblshwal";

const STATE_LIVE: u8 = 0;
const STATE_QUARANTINED: u8 = 1;
const STATE_REHYDRATING: u8 = 2;

/// Where a replica is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// In rotation: receives writes, serves reads.
    Live,
    /// Out of rotation after a fault; holds no index copy. A
    /// rehydration either hasn't started or has failed (see
    /// [`ReplicaStats::rehydration_failures`]) — use
    /// [`ReplicatedShard::rehydrate`] to retry a failed one.
    Quarantined,
    /// A background thread is rebuilding it from snapshot + WAL.
    Rehydrating,
}

/// What an injected fault does to a replica at a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: the write applies normally.
    None,
    /// The replica "crashes" before applying — it silently misses the
    /// op and is quarantined, as if its process died.
    Kill,
    /// The apply panics mid-request; the panic is caught at the
    /// isolation boundary and the replica is quarantined.
    Panic,
}

/// Identifies one (replica, write) application the hook may fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Replica slot about to apply the write.
    pub replica: usize,
    /// Monotone per-group write sequence number.
    pub seq: u64,
}

/// Test/torture hook consulted before each per-replica apply.
pub type FaultHook = Arc<dyn Fn(FaultSite) -> FaultAction + Send + Sync>;

/// Seeded deterministic fault schedule: a pure function of
/// `(seed, site)`, so a torture run replays identically from its seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    kill_p: f64,
    panic_p: f64,
}

impl FaultPlan {
    /// A plan that injects nothing until probabilities are set.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            kill_p: 0.0,
            panic_p: 0.0,
        }
    }

    /// Kill a replica before an apply with probability `p`.
    pub fn with_kills(mut self, p: f64) -> Self {
        self.kill_p = p.clamp(0.0, 1.0);
        self
    }

    /// Panic an apply mid-request with probability `p`.
    pub fn with_panics(mut self, p: f64) -> Self {
        self.panic_p = p.clamp(0.0, 1.0);
        self
    }

    /// The action this plan takes at `site`.
    pub fn action(&self, site: FaultSite) -> FaultAction {
        let bits = mix64(self.seed ^ mix64(site.seq ^ ((site.replica as u64) << 48)));
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.kill_p {
            FaultAction::Kill
        } else if u < self.kill_p + self.panic_p {
            FaultAction::Panic
        } else {
            FaultAction::None
        }
    }

    /// Package the plan as a [`FaultHook`].
    pub fn hook(self) -> FaultHook {
        Arc::new(move |site| self.action(site))
    }
}

/// Health counters for a replica group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Configured group size.
    pub replicas: usize,
    /// Replicas currently in rotation.
    pub live: usize,
    /// Times a replica was pulled from rotation.
    pub quarantines: u64,
    /// Times a rehydrated replica passed parity and rejoined.
    pub readmissions: u64,
    /// Rehydration attempts that failed (replica stays quarantined).
    pub rehydration_failures: u64,
    /// Reads that hit a faulty replica and failed over to another.
    pub read_failovers: u64,
}

struct Slot {
    /// `None` while quarantined: a copy that faulted mid-mutation is
    /// dropped, never trusted.
    index: RwLock<Option<DbLsh>>,
    state: AtomicU8,
}

impl Slot {
    fn live(index: DbLsh) -> Self {
        Slot {
            index: RwLock::new(Some(index)),
            state: AtomicU8::new(STATE_LIVE),
        }
    }

    fn state(&self) -> u8 {
        // order: Acquire pairs with the Release stores in the
        // quarantine/rehydration transitions, so a reader that observes
        // STATE_LIVE also observes the rehydrated index the readmitting
        // thread published before the store.
        self.state.load(Ordering::Acquire)
    }
}

/// Serialized by the group write mutex: the WAL append *is* the write
/// order, and holding the mutex across the fan-out means every live
/// replica applies ops in exactly that order.
struct WriteState {
    wal: WalFile,
    next_id: u32,
}

struct Inner {
    dir: PathBuf,
    dim: usize,
    slots: Vec<Slot>,
    write: Mutex<WriteState>,
    next_read: AtomicUsize,
    seq: AtomicU64,
    hook: RwLock<Option<FaultHook>>,
    quarantines: AtomicU64,
    readmissions: AtomicU64,
    rehydration_failures: AtomicU64,
    read_failovers: AtomicU64,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn lock_write(&self) -> MutexGuard<'_, WriteState> {
        // Panics never unwind through a held guard here (applies run
        // inside `catch_unwind`), but recover from poison anyway — the
        // WAL carries its own poisoned flag for real torn-log states.
        self.write.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `R` byte-identical copies of one index behind a single WAL — see
/// the module-level docs above for the full failure model.
pub struct ReplicatedShard {
    inner: Arc<Inner>,
}

impl ReplicatedShard {
    /// Stand up a fresh group of `replicas` copies of `index` in `dir`:
    /// writes the base snapshot, creates an empty WAL, and loads the
    /// remaining copies back from that snapshot so every replica starts
    /// from the same bytes.
    pub fn create<P: AsRef<Path>>(
        index: DbLsh,
        replicas: usize,
        dir: P,
    ) -> Result<Self, DbLshError> {
        if replicas == 0 {
            return Err(DbLshError::invalid("replicas", "must be at least 1"));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| DbLshError::io("create_dir", e))?;
        index.save_file(dir.join(SNAPSHOT_FILE))?;
        let wal = WalFile::create(dir.join(WAL_FILE), REPLICA_WAL_KIND)?;
        let dim = index.data().dim();
        let next_id = index.id_bound() as u32;
        let mut slots = Vec::with_capacity(replicas);
        slots.push(Slot::live(index));
        for _ in 1..replicas {
            slots.push(Slot::live(DbLsh::load_file(dir.join(SNAPSHOT_FILE))?));
        }
        Ok(ReplicatedShard {
            inner: Arc::new(Inner {
                dir,
                dim,
                slots,
                write: Mutex::new(WriteState { wal, next_id }),
                next_read: AtomicUsize::new(0),
                seq: AtomicU64::new(0),
                hook: RwLock::new(None),
                quarantines: AtomicU64::new(0),
                readmissions: AtomicU64::new(0),
                rehydration_failures: AtomicU64::new(0),
                read_failovers: AtomicU64::new(0),
                threads: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Crash recovery: reopen a group directory, rebuilding every
    /// replica from the snapshot plus a replay of the WAL tail. A torn
    /// final record (a write that was never acknowledged) is dropped;
    /// any other damage is a typed [`DbLshError::CorruptSnapshot`].
    pub fn open<P: AsRef<Path>>(dir: P, replicas: usize) -> Result<Self, DbLshError> {
        if replicas == 0 {
            return Err(DbLshError::invalid("replicas", "must be at least 1"));
        }
        let dir = dir.as_ref().to_path_buf();
        let (wal, replay) = WalFile::open(dir.join(WAL_FILE), REPLICA_WAL_KIND)?;
        let mut slots = Vec::with_capacity(replicas);
        let mut next_id = 0u32;
        let mut dim = 0usize;
        for r in 0..replicas {
            let mut idx = DbLsh::load_file(dir.join(SNAPSHOT_FILE))?;
            replay_into(&mut idx, &replay.records)?;
            if r == 0 {
                next_id = idx.id_bound() as u32;
                dim = idx.data().dim();
            }
            slots.push(Slot::live(idx));
        }
        Ok(ReplicatedShard {
            inner: Arc::new(Inner {
                dir,
                dim,
                slots,
                write: Mutex::new(WriteState { wal, next_id }),
                next_read: AtomicUsize::new(0),
                seq: AtomicU64::new(0),
                hook: RwLock::new(None),
                quarantines: AtomicU64::new(0),
                readmissions: AtomicU64::new(0),
                rehydration_failures: AtomicU64::new(0),
                read_failovers: AtomicU64::new(0),
                threads: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Insert a point; the returned id is acknowledged only after the
    /// WAL append succeeded, so it survives any replica (or even
    /// whole-group) failure from here on. Fans out to live replicas in
    /// WAL order.
    pub fn insert(&self, point: &[f32]) -> Result<u32, DbLshError> {
        if point.len() != self.inner.dim {
            return Err(DbLshError::DimensionMismatch {
                expected: self.inner.dim,
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        let mut w = self.inner.lock_write();
        if w.next_id == u32::MAX {
            return Err(DbLshError::CapacityExceeded {
                limit: u32::MAX as usize,
            });
        }
        let g = w.next_id;
        // Log-first: a failed append acknowledges nothing and burns no
        // id (`WalFile` rolled the file back).
        w.wal.append(&walrec::encode_insert(g, point))?;
        w.next_id += 1;
        // order: write order is serialized by the write mutex held
        // here; the counter only mints a label for it, so the ticket
        // needs atomicity, not ordering.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.fan_out(seq, |idx| {
            let applied = idx.insert(point)?;
            debug_assert_eq!(applied, g);
            Ok(())
        });
        Ok(g)
    }

    /// Remove by id. The outcome is decided once (against a live
    /// replica) and logged only when it flips a live point, so replay
    /// never has to guess about no-ops. All replicas dead ⇒
    /// [`DbLshError::Busy`] — the liveness of the point can't be read.
    pub fn remove(&self, id: u32) -> Result<bool, DbLshError> {
        let mut w = self.inner.lock_write();
        if id >= w.next_id {
            return Err(DbLshError::UnknownId { id });
        }
        if !self.peek_contains(id)? {
            return Ok(false);
        }
        // A replica group owns a single unsharded index: global and
        // local ids coincide.
        w.wal.append(&walrec::encode_remove(id, id))?;
        // order: same as insert — the write mutex is the order, the
        // counter just labels it.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.fan_out(seq, |idx| idx.remove(id).map(drop));
        Ok(true)
    }

    /// k-NN with default options — see [`Self::search_with`].
    pub fn search(&self, q: &[f32], k: usize) -> Result<SearchResult, DbLshError> {
        self.search_with(q, k, &SearchOptions::default())
    }

    /// Canonical k-NN served by one live replica, chosen round-robin.
    /// A replica that panics mid-query is quarantined and the read
    /// fails over to the next; only with *every* replica out of
    /// rotation does the caller see [`DbLshError::Busy`].
    pub fn search_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> Result<SearchResult, DbLshError> {
        check_query(self.inner.dim, q, k)?;
        let r = self.inner.slots.len();
        // order: round-robin cursor — any interleaving of readers still
        // spreads load; no other state rides on it.
        let start = self.inner.next_read.fetch_add(1, Ordering::Relaxed);
        for off in 0..r {
            let i = (start + off) % r;
            let slot = &self.inner.slots[i];
            if slot.state() != STATE_LIVE {
                continue;
            }
            let guard = slot.index.read().unwrap_or_else(PoisonError::into_inner);
            let Some(idx) = guard.as_ref() else { continue };
            match catch_unwind(AssertUnwindSafe(|| idx.search_canonical(q, k, opts))) {
                // Query errors (bad k, etc.) are deterministic — every
                // replica would answer the same — so propagate rather
                // than failing over.
                Ok(res) => return res,
                Err(_) => {
                    drop(guard);
                    // order: standalone health counter, reporting only.
                    self.inner.read_failovers.fetch_add(1, Ordering::Relaxed);
                    self.quarantine(i);
                }
            }
        }
        Err(DbLshError::Busy)
    }

    /// Whether `id` is live, read from one live replica
    /// ([`DbLshError::Busy`] if none is).
    pub fn contains(&self, id: u32) -> Result<bool, DbLshError> {
        self.peek_contains(id)
    }

    /// Live points, read from one live replica ([`DbLshError::Busy`]
    /// if none is).
    pub fn len(&self) -> Result<usize, DbLshError> {
        self.for_first_live(|idx| idx.len())
    }

    /// True if the group holds no live points (see [`Self::len`]).
    pub fn is_empty(&self) -> Result<bool, DbLshError> {
        Ok(self.len()? == 0)
    }

    /// One past the largest id ever acknowledged.
    pub fn id_bound(&self) -> u32 {
        self.inner.lock_write().next_id
    }

    /// Configured group size.
    pub fn replicas(&self) -> usize {
        self.inner.slots.len()
    }

    /// The group directory (snapshot + WAL).
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Current lifecycle state of every replica slot.
    pub fn replica_states(&self) -> Vec<ReplicaState> {
        self.inner
            .slots
            .iter()
            .map(|s| match s.state() {
                STATE_LIVE => ReplicaState::Live,
                STATE_QUARANTINED => ReplicaState::Quarantined,
                _ => ReplicaState::Rehydrating,
            })
            .collect()
    }

    /// Health counters.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            replicas: self.inner.slots.len(),
            live: self
                .inner
                .slots
                .iter()
                .filter(|s| s.state() == STATE_LIVE)
                .count(),
            // order: independent health counters sampled for reporting;
            // cross-counter skew of in-flight transitions is inherent
            // to a live snapshot.
            quarantines: self.inner.quarantines.load(Ordering::Relaxed),
            readmissions: self.inner.readmissions.load(Ordering::Relaxed),
            rehydration_failures: self.inner.rehydration_failures.load(Ordering::Relaxed),
            read_failovers: self.inner.read_failovers.load(Ordering::Relaxed),
        }
    }

    /// Checkpoint: snapshot one live replica and truncate the WAL,
    /// atomically with respect to writes (the write mutex is held
    /// across both). Bounds recovery time; changes no answers.
    pub fn checkpoint(&self) -> Result<(), DbLshError> {
        let mut w = self.inner.lock_write();
        self.for_first_live(|idx| idx.save_file(self.inner.dir.join(SNAPSHOT_FILE)))??;
        w.wal.truncate()
    }

    /// Flush the WAL to disk (power-loss durability for every write
    /// acknowledged so far; see the crate's durability model).
    pub fn sync_wal(&self) -> Result<(), DbLshError> {
        self.inner.lock_write().wal.sync()
    }

    /// Install (or clear) the fault-injection hook consulted before
    /// each per-replica apply.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self
            .inner
            .hook
            .write()
            .unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// Inject I/O faults into the group WAL itself (`None` clears).
    pub fn set_wal_faults(&self, faults: Option<WriteFaultPlan>) {
        self.inner.lock_write().wal.set_faults(faults);
    }

    /// Torture hook: "crash" replica `i` right now. Returns whether it
    /// was live (and is now quarantined, with rehydration running).
    pub fn kill_replica(&self, i: usize) -> bool {
        i < self.inner.slots.len() && self.quarantine(i)
    }

    /// Retry rehydration for a replica whose previous attempt failed
    /// (state [`ReplicaState::Quarantined`]). Returns whether a new
    /// attempt was started.
    pub fn rehydrate(&self, i: usize) -> bool {
        let Some(slot) = self.inner.slots.get(i) else {
            return false;
        };
        if slot
            .state
            .compare_exchange(
                STATE_QUARANTINED,
                STATE_REHYDRATING,
                // order: AcqRel — acquire the failed attempt's state,
                // release this claim so exactly one retry wins; failure
                // Acquire just observes the competing transition.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        self.spawn_rehydration(i);
        true
    }

    /// Block until every background rehydration started so far has
    /// finished (joins the threads). For deterministic tests and
    /// orderly shutdown; the group serves fine without ever calling it.
    pub fn wait_idle(&self) {
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut t = self
                    .inner
                    .threads
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *t)
            };
            if drained.is_empty() {
                return;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }

    /// Apply `op` to every live replica, in the caller's (WAL) order.
    /// Must be called with the write mutex held. A replica that faults
    /// is quarantined; the group-level result was already decided by
    /// the WAL append.
    fn fan_out(&self, seq: u64, apply: impl Fn(&mut DbLsh) -> Result<(), DbLshError>) {
        let hook = self
            .inner
            .hook
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for (i, slot) in self.inner.slots.iter().enumerate() {
            if slot.state() != STATE_LIVE {
                continue;
            }
            let action = hook
                .as_ref()
                .map_or(FaultAction::None, |h| h(FaultSite { replica: i, seq }));
            if action == FaultAction::Kill {
                // Crashed before applying: it silently misses this op,
                // which is exactly the divergence rehydration repairs.
                self.quarantine(i);
                continue;
            }
            let mut guard = slot.index.write().unwrap_or_else(PoisonError::into_inner);
            // The guard stays outside the closure so a caught panic
            // can't poison the lock; replica health is tracked by our
            // own state machine, not by `std`'s poison bit.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if action == FaultAction::Panic {
                    // lint: allow(panic-free-surface) — the fault-injection hook exists to panic a replica on purpose
                    panic!("injected replica panic at write {seq}");
                }
                match guard.as_mut() {
                    Some(idx) => apply(idx),
                    None => Err(DbLshError::Busy),
                }
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(_)) | Err(_) => {
                    // Possibly torn mid-mutation — drop the copy and
                    // rebuild from snapshot + WAL rather than trust it.
                    *guard = None;
                    drop(guard);
                    self.quarantine(i);
                }
            }
        }
    }

    /// Pull replica `i` from rotation and start background
    /// rehydration. Returns false if it wasn't live.
    fn quarantine(&self, i: usize) -> bool {
        if self.inner.slots[i]
            .state
            .compare_exchange(
                STATE_LIVE,
                STATE_QUARANTINED,
                // order: AcqRel — exactly one caller wins the
                // LIVE→QUARANTINED edge and releases it to the
                // rehydration thread; failure Acquire observes the
                // transition that beat us.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        // order: standalone health counter, reporting only.
        self.inner.quarantines.fetch_add(1, Ordering::Relaxed);
        self.spawn_rehydration(i);
        true
    }

    fn spawn_rehydration(&self, i: usize) {
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::spawn(move || rehydrate_slot(&inner, i));
        self.inner
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }

    /// Run `f` against the first live replica ([`DbLshError::Busy`] if
    /// none is). Safe to call with the write mutex held (slot locks
    /// always nest inside it).
    fn for_first_live<T>(&self, f: impl FnOnce(&DbLsh) -> T) -> Result<T, DbLshError> {
        for slot in &self.inner.slots {
            if slot.state() != STATE_LIVE {
                continue;
            }
            let guard = slot.index.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(idx) = guard.as_ref() {
                return Ok(f(idx));
            }
        }
        Err(DbLshError::Busy)
    }

    fn peek_contains(&self, id: u32) -> Result<bool, DbLshError> {
        self.for_first_live(|idx| idx.contains(id))
    }
}

impl Drop for ReplicatedShard {
    fn drop(&mut self) {
        // Rehydration threads borrow the group via `Arc`; joining here
        // keeps teardown (and tests) deterministic.
        self.wait_idle();
    }
}

/// Replay decoded WAL records into a snapshot-fresh index. Idempotent
/// against a newer base: inserts the snapshot already covers are
/// skipped, re-removes are no-ops. Anything structurally impossible is
/// a typed corruption, never a silent divergence.
fn replay_into(idx: &mut DbLsh, records: &[Vec<u8>]) -> Result<(), DbLshError> {
    let base = idx.id_bound() as u32;
    for (i, rec) in records.iter().enumerate() {
        let wrap =
            |e: DbLshError| DbLshError::corrupt(format!("replaying replica WAL record {i}: {e}"));
        match walrec::decode(rec).map_err(wrap)? {
            WalOp::Insert { global, point } => {
                if global < base {
                    continue; // already inside the snapshot
                }
                if global as usize != idx.id_bound() {
                    return Err(DbLshError::corrupt(format!(
                        "replica WAL record {i} inserts id {global} but the index is at {}",
                        idx.id_bound()
                    )));
                }
                idx.insert(&point).map_err(wrap)?;
            }
            WalOp::Remove { global, local } => {
                if global != local {
                    return Err(DbLshError::corrupt(format!(
                        "replica WAL record {i} removes global {global} at local {local}; \
                         a replica group has no shard mapping"
                    )));
                }
                if local as usize >= idx.id_bound() {
                    return Err(DbLshError::corrupt(format!(
                        "replica WAL record {i} removes id {local} beyond bound {}",
                        idx.id_bound()
                    )));
                }
                idx.remove(local).map(drop).map_err(wrap)?;
            }
        }
    }
    Ok(())
}

/// Background rehydration: snapshot load (writers keep running), WAL
/// catch-up under the write mutex (the tail is frozen), parity
/// self-check against a live replica, then readmission — still under
/// the mutex, so no write can slip between catch-up and going live.
fn rehydrate_slot(inner: &Inner, i: usize) {
    inner.slots[i]
        .state
        // order: Release pairs with the Acquire in `Slot::state` so
        // status readers see the transition and what preceded it.
        .store(STATE_REHYDRATING, Ordering::Release);
    let result = try_rehydrate(inner, i);
    match result {
        Ok(()) => {
            // order: standalone health counter, reporting only.
            inner.readmissions.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            inner.slots[i]
                .state
                // order: Release pairs with the Acquire in
                // `Slot::state`; the slot leaves rotation with its
                // failed rebuild fully visible.
                .store(STATE_QUARANTINED, Ordering::Release);
            // order: standalone health counter, reporting only.
            inner.rehydration_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn try_rehydrate(inner: &Inner, i: usize) -> Result<(), DbLshError> {
    // Phase 1 — rebuild from the checkpoint without stalling writers.
    let mut idx = DbLsh::load_file(inner.dir.join(SNAPSHOT_FILE))?;
    // Phase 2 — catch up from the WAL with writes frozen so the tail
    // cannot move underneath the replay. Re-read the file rather than
    // trusting any in-memory state: recovery must work from the bytes.
    let w = inner.lock_write();
    let file = std::fs::File::open(w.wal.path()).map_err(|e| DbLshError::io("open", e))?;
    let replay = replay_wal(std::io::BufReader::new(file), REPLICA_WAL_KIND)?;
    replay_into(&mut idx, &replay.records)?;
    // Phase 3 — logical-parity self-check against a live replica.
    // Copies may differ physically (layout, scratch state); what must
    // agree is the (id → point) content canonical answers derive from.
    let rebuilt = logical_digest(&idx);
    for (j, other) in inner.slots.iter().enumerate() {
        if j == i || other.state() != STATE_LIVE {
            continue;
        }
        let guard = other.index.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(live) = guard.as_ref() {
            if logical_digest(live) != rebuilt {
                return Err(DbLshError::corrupt(format!(
                    "rehydrated replica {i} fails parity against live replica {j}"
                )));
            }
            break;
        }
    }
    // (With no live replica to compare against, the WAL is the only
    // authority — readmit on it.)
    let mut guard = inner.slots[i]
        .index
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    *guard = Some(idx);
    // order: Release publishes the rebuilt index written above; the
    // Acquire in `Slot::state` makes a reader that sees STATE_LIVE see
    // the index too.
    inner.slots[i].state.store(STATE_LIVE, Ordering::Release);
    drop(guard);
    drop(w);
    Ok(())
}

/// Order-defined digest of the live `(id, point)` content of an index.
fn logical_digest(idx: &DbLsh) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut row = Vec::new();
    for id in 0..idx.id_bound() as u32 {
        match idx.point(id) {
            Some(p) => {
                row.clear();
                row.extend_from_slice(&id.to_le_bytes());
                for &v in p {
                    row.extend_from_slice(&v.to_le_bytes());
                }
                acc = mix64(acc ^ u64::from(crc32(&row)));
            }
            None => acc = mix64(acc ^ 0xD1B5_4A32_D192_ED03 ^ u64::from(id)),
        }
    }
    mix64(acc ^ idx.id_bound() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblsh_core::DbLshBuilder;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
    use dblsh_data::Dataset;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dblsh-replica-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_data(n: usize) -> Dataset {
        gaussian_mixture(&MixtureConfig {
            n,
            dim: 8,
            clusters: 4,
            seed: 11,
            ..Default::default()
        })
    }

    fn build_one(data: &Dataset) -> DbLsh {
        DbLshBuilder::new()
            .k(4)
            .l(2)
            .t(8)
            .r_min(0.5)
            .build(data.clone())
            .unwrap()
    }

    /// Reference = a never-faulted plain DbLsh; the group must answer
    /// byte-identically through any fault schedule.
    fn assert_matches_reference(group: &ReplicatedShard, reference: &DbLsh, data: &Dataset) {
        assert_eq!(group.len().unwrap(), reference.len());
        assert_eq!(group.id_bound() as usize, reference.id_bound());
        for id in 0..reference.id_bound() as u32 {
            assert_eq!(
                group.contains(id).unwrap(),
                reference.contains(id),
                "membership of id {id}"
            );
        }
        let opts = SearchOptions::default();
        for qi in (0..data.len()).step_by(17.max(data.len() / 13)) {
            let q = data.point(qi);
            let got = group.search_with(q, 9, &opts).unwrap();
            let want = reference.search_canonical(q, 9, &opts).unwrap();
            assert_eq!(got.neighbors, want.neighbors, "query {qi}");
            assert_eq!(got.stats, want.stats, "query {qi} stats");
        }
    }

    #[test]
    fn replica_group_answers_like_a_single_index() {
        let data = small_data(160);
        let dir = tmpdir("basic");
        let group = ReplicatedShard::create(build_one(&data), 3, &dir).unwrap();
        let mut reference = build_one(&data);
        assert_matches_reference(&group, &reference, &data);
        // Mixed traffic keeps parity.
        for i in 0..60u32 {
            if i % 3 == 0 {
                assert_eq!(
                    group.remove(i).unwrap(),
                    reference.remove(i).unwrap(),
                    "remove {i}"
                );
            } else {
                let p = data.point((i as usize * 7) % data.len()).to_vec();
                assert_eq!(group.insert(&p).unwrap(), reference.insert(&p).unwrap());
            }
        }
        assert_matches_reference(&group, &reference, &data);
        assert_eq!(group.stats().quarantines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_replica_rehydrates_and_rejoins() {
        let data = small_data(140);
        let dir = tmpdir("kill");
        let group = ReplicatedShard::create(build_one(&data), 3, &dir).unwrap();
        let mut reference = build_one(&data);
        for i in 0..20u32 {
            let p = data.point(i as usize).to_vec();
            group.insert(&p).unwrap();
            reference.insert(&p).unwrap();
            if i == 7 {
                assert!(group.kill_replica(1));
                assert!(!group.kill_replica(1), "already out of rotation");
            }
        }
        group.wait_idle();
        let stats = group.stats();
        assert_eq!(stats.live, 3, "replica 1 must be readmitted");
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.readmissions, 1);
        assert_eq!(stats.rehydration_failures, 0);
        assert!(group
            .replica_states()
            .iter()
            .all(|s| *s == ReplicaState::Live));
        assert_matches_reference(&group, &reference, &data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_fault_plan_converges_to_parity() {
        let data = small_data(150);
        let dir = tmpdir("plan");
        let group = ReplicatedShard::create(build_one(&data), 3, &dir).unwrap();
        let mut reference = build_one(&data);
        let plan = FaultPlan::new(0xF417).with_kills(0.05).with_panics(0.05);
        // Determinism: the same plan answers the same schedule.
        assert_eq!(
            plan.action(FaultSite { replica: 1, seq: 9 }),
            plan.action(FaultSite { replica: 1, seq: 9 })
        );
        group.set_fault_hook(Some(plan.hook()));
        for i in 0..200u32 {
            if i % 3 == 0 && reference.contains(i) {
                // `Busy` = every replica momentarily quarantined; that
                // is the documented retryable state, and rehydration is
                // already running — wait and go again.
                loop {
                    match group.remove(i) {
                        Ok(removed) => {
                            assert!(removed, "remove {i}");
                            break;
                        }
                        Err(DbLshError::Busy) => group.wait_idle(),
                        Err(e) => panic!("remove {i}: {e}"),
                    }
                }
                reference.remove(i).unwrap();
            } else {
                let p = data.point((i as usize * 5) % data.len()).to_vec();
                assert_eq!(group.insert(&p).unwrap(), reference.insert(&p).unwrap());
            }
        }
        group.set_fault_hook(None);
        // Let every in-flight rehydration finish; retry any attempt
        // that lost a race with a fault on its comparison replica.
        for _ in 0..8 {
            group.wait_idle();
            let stuck: Vec<usize> = group
                .replica_states()
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == ReplicaState::Quarantined)
                .map(|(i, _)| i)
                .collect();
            if stuck.is_empty() {
                break;
            }
            for i in stuck {
                group.rehydrate(i);
            }
        }
        let stats = group.stats();
        assert_eq!(stats.live, 3, "all replicas readmitted: {stats:?}");
        assert!(stats.quarantines > 0, "the plan must actually fire");
        assert_matches_reference(&group, &reference, &data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_survive_a_fully_dead_read_path() {
        let data = small_data(120);
        let dir = tmpdir("dead");
        let group = ReplicatedShard::create(build_one(&data), 1, &dir).unwrap();
        let mut reference = build_one(&data);
        // Make rehydration fail: hide the snapshot, then kill the only
        // replica.
        let snap = dir.join(SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::remove_file(&snap).unwrap();
        assert!(group.kill_replica(0));
        group.wait_idle();
        assert_eq!(group.replica_states(), vec![ReplicaState::Quarantined]);
        assert_eq!(group.stats().rehydration_failures, 1);
        // Reads are Busy; writes still land in the WAL and are acked.
        assert!(matches!(
            group.search(data.point(0), 3),
            Err(DbLshError::Busy)
        ));
        assert!(matches!(group.len(), Err(DbLshError::Busy)));
        assert!(matches!(group.remove(0), Err(DbLshError::Busy)));
        let p = data.point(1).to_vec();
        let acked = group.insert(&p).unwrap();
        assert_eq!(acked, reference.insert(&p).unwrap());
        // Restore the snapshot and retry: the replica must come back
        // *with the write that happened while it was dead*.
        std::fs::write(&snap, &bytes).unwrap();
        assert!(group.rehydrate(0));
        group.wait_idle();
        assert_eq!(group.replica_states(), vec![ReplicaState::Live]);
        assert_matches_reference(&group, &reference, &data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_recovers_across_checkpoints() {
        let data = small_data(130);
        let dir = tmpdir("open");
        let mut reference = build_one(&data);
        {
            let group = ReplicatedShard::create(build_one(&data), 2, &dir).unwrap();
            for i in 0..25u32 {
                let p = data.point((i as usize * 3) % data.len()).to_vec();
                group.insert(&p).unwrap();
                reference.insert(&p).unwrap();
                if i % 4 == 0 {
                    group.remove(i).unwrap();
                    reference.remove(i).unwrap();
                }
                if i == 12 {
                    group.checkpoint().unwrap();
                }
            }
            group.sync_wal().unwrap();
        }
        let reopened = ReplicatedShard::open(&dir, 2).unwrap();
        assert_matches_reference(&reopened, &reference, &data);
        // Replay is idempotent against the mid-stream checkpoint: ops
        // 0..=12 are both inside the snapshot and (until the truncate
        // at 12) possibly in the log; nothing double-applies.
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_io_fault_fails_the_write_without_burning_an_id() {
        let data = small_data(110);
        let dir = tmpdir("iofault");
        let group = ReplicatedShard::create(build_one(&data), 2, &dir).unwrap();
        let before = group.id_bound();
        group.set_wal_faults(Some(WriteFaultPlan::new(5).with_hard_fail_after(4)));
        let p = data.point(0).to_vec();
        assert!(matches!(group.insert(&p), Err(DbLshError::Io { .. })));
        group.set_wal_faults(None);
        // The failed write burnt nothing: the next insert gets the id
        // the failed one would have, and recovery sees a clean log.
        assert_eq!(group.insert(&p).unwrap(), before);
        drop(group);
        let reopened = ReplicatedShard::open(&dir, 2).unwrap();
        assert_eq!(reopened.id_bound(), before + 1);
        assert!(reopened.contains(before).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
