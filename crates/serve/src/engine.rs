//! The serving front door: a long-lived worker pool draining a bounded
//! submission queue of search/insert/remove requests against a shared
//! [`ShardedDbLsh`], with per-request [`QueryStats`] aggregation into
//! engine-level counters (QPS, log₂-bucket latency quantiles, candidates
//! verified).
//!
//! Submissions are non-blocking until the queue is full, then apply
//! backpressure (the submitting thread waits for a slot); each request
//! returns a [`Ticket`] resolved by whichever worker executes it.
//! Workers are plain OS threads that live as long as the engine; the
//! per-thread prober scratch pools of the sharded query path warm up
//! once per worker and are reused across every request the worker
//! serves. Dropping (or [`Engine::shutdown`]-ing) the engine closes the
//! queue, drains the remaining requests, and joins the workers.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use dblsh_core::SearchOptions;
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};
use dblsh_telemetry::{
    args_digest, log2_quantile_us, render_json, render_prometheus, Counter, Gauge, Histo,
    QueryTrace, Registry, SlowQuery, SlowQueryLog, Stage, STAGE_COUNT,
};

use crate::shard::ShardedDbLsh;

pub use dblsh_telemetry::LatencyHistogram;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads serving the queue. Defaults to the number of
    /// available cores.
    pub workers: usize,
    /// Submission-queue capacity; a full queue blocks submitters
    /// (backpressure, never unbounded memory). Defaults to 1024.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
            queue_capacity: 1024,
        }
    }
}

/// One-shot result slot: the submitter holds the [`Ticket`], the worker
/// resolves it. Std-only (mutex + condvar), no channel allocation churn
/// beyond the one `Arc`.
#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

/// The submitter's handle to an in-flight request. Every request
/// resolves to a `Result`: the operation's own outcome, or a
/// [`DbLshError`] when the engine could not serve it (shut down before
/// acceptance, or a worker died mid-request) — a `Ticket` can never
/// block forever.
#[derive(Debug)]
pub struct Ticket<T> {
    slot: Arc<Slot<Result<T, DbLshError>>>,
}

impl<T> Ticket<T> {
    /// Block until the request completes and take its result. The slot
    /// holds a plain `Option` whose every state is valid, so a poisoned
    /// slot mutex (the worker panicked around a `send`) is recovered —
    /// either the value landed before the panic, or the dropped
    /// `Reply` already resolved it to the typed `Shutdown`.
    pub fn wait(self) -> Result<T, DbLshError> {
        let mut value = self
            .slot
            .value
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = value.take() {
                return v;
            }
            value = self
                .slot
                .ready
                .wait(value)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take the result if the request has already completed.
    pub fn try_take(&self) -> Option<Result<T, DbLshError>> {
        self.slot
            .value
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// The worker's side of a [`Ticket`]. If it is dropped without
/// [`Reply::send`] — a worker panicking mid-request, or the queue being
/// torn down with the job still queued — the ticket resolves to the
/// typed [`DbLshError::Shutdown`] instead of leaving the submitter
/// blocked forever.
#[derive(Debug)]
struct Reply<T> {
    slot: Option<Arc<Slot<Result<T, DbLshError>>>>,
}

impl<T> Reply<T> {
    fn send(mut self, value: Result<T, DbLshError>) {
        if let Some(slot) = self.slot.take() {
            *slot.value.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            slot.ready.notify_all();
        }
    }
}

impl<T> Drop for Reply<T> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            let mut value = match slot.value.lock() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            *value = Some(Err(DbLshError::Shutdown));
            drop(value);
            slot.ready.notify_all();
        }
    }
}

fn oneshot<T>() -> (Reply<T>, Ticket<T>) {
    let slot = Arc::new(Slot {
        value: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        Reply {
            slot: Some(Arc::clone(&slot)),
        },
        Ticket { slot },
    )
}

/// A queued request. Search requests carry their submission instant so
/// reported latency includes queue wait — the number a saturation
/// harness actually cares about.
enum Job {
    Search {
        query: Vec<f32>,
        k: usize,
        opts: SearchOptions,
        enqueued: Instant,
        /// Queue-wait budget: a search still queued past this expires
        /// with [`DbLshError::DeadlineExceeded`] instead of executing.
        deadline: Option<Duration>,
        reply: Reply<SearchResult>,
    },
    Insert {
        point: Vec<f32>,
        reply: Reply<u32>,
    },
    Remove {
        id: u32,
        reply: Reply<bool>,
    },
    RcNn {
        query: Vec<f32>,
        r: f64,
        enqueued: Instant,
        reply: Reply<(Option<Neighbor>, QueryStats)>,
    },
    /// Chaos hook: panic the executing worker mid-request (see
    /// [`Engine::inject_worker_panic`]). The panic is caught at the
    /// job boundary — the worker survives, the ticket resolves to the
    /// typed [`DbLshError::Shutdown`] via its dropped [`Reply`].
    Chaos(Reply<()>),
    /// Test-only: park the executing worker on a barrier, so tests can
    /// hold the queue deterministically full while probing admission
    /// control.
    #[cfg(test)]
    Fence(Arc<std::sync::Barrier>),
}

/// Bounded MPMC job queue: mutex + two condvars, closes on shutdown.
struct Queue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, blocking while full. A job refused by a closed queue is
    /// dropped here, outside the lock — which resolves its [`Reply`]
    /// with the typed [`DbLshError::Shutdown`] rather than leaving a
    /// waiter hanging.
    fn push(&self, job: Job) {
        // Queue state is a `VecDeque` + flag whose every published state
        // is valid, so poisoning (a panicking worker) is recovered here
        // and below — the submission and worker paths must never panic.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.jobs.len() >= self.capacity && !inner.closed {
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            drop(inner);
            drop(job);
            return;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Enqueue without blocking: a full queue is [`DbLshError::Busy`], a
    /// closed one [`DbLshError::Shutdown`]. A refused job is dropped
    /// here (outside the lock), which resolves its [`Reply`]; the caller
    /// gets the precise refusal reason through the returned error.
    fn try_push(&self, job: Job) -> Result<(), DbLshError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let refusal = if inner.closed {
            Some(DbLshError::Shutdown)
        } else if inner.jobs.len() >= self.capacity {
            Some(DbLshError::Busy)
        } else {
            None
        };
        if let Some(err) = refusal {
            drop(inner);
            drop(job);
            return Err(err);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently queued (accepted, not yet picked up by a worker).
    fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }

    /// Dequeue, blocking while empty. `None` once the queue is closed
    /// *and* drained — workers finish every accepted request.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Default slow-query capture threshold: queries at or above 100 ms
/// end-to-end land in the ring log. Tune per deployment with
/// [`Engine::set_slow_query_threshold`].
const DEFAULT_SLOW_QUERY_NANOS: u64 = 100_000_000;

/// Slow-query ring capacity: the most recent captures kept.
const SLOW_QUERY_CAPACITY: usize = 64;

/// Engine-level counters, updated lock-free by the workers through
/// [`dblsh_telemetry::Registry`] handles — the one registration point
/// for every serving metric, so the wire front door and the bench
/// harnesses scrape a single coherent snapshot. Latencies go into
/// log₂(nanoseconds) histograms: cheap, contention-free recording, with
/// quantiles interpolated inside one power-of-two bucket.
#[derive(Debug)]
struct Metrics {
    started: Instant,
    /// Wall-clock engine start, seconds since the Unix epoch.
    started_at_unix: u64,
    registry: Arc<Registry>,
    knn: Counter,
    rcnn: Counter,
    inserts: Counter,
    removes: Counter,
    errors: Counter,
    rejected: Counter,
    deadline_expired: Counter,
    candidates: Counter,
    rounds: Counter,
    index_probes: Counter,
    prefilter_pruned: Counter,
    prefilter_survivors: Counter,
    verify_nanos: Counter,
    /// End-to-end (submission → completion) search latency.
    latency: Histo,
    /// Per-stage latency, one series per [`Stage`], fed by traced
    /// requests only.
    stage: [Histo; STAGE_COUNT],
    /// Scrape-time gauges, refreshed by [`Engine::render_metrics`].
    queue_depth: Gauge,
    uptime: Gauge,
    live_points: Gauge,
    dead_rows: Gauge,
    memory_bytes: Gauge,
    compactions: Gauge,
    wal_truncations: Gauge,
    slow_log: SlowQueryLog,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Arc::new(Registry::new());
        let req = |op: &str| {
            registry.counter(
                "dblsh_requests_total",
                "Completed requests by opcode.",
                &[("op", op)],
            )
        };
        let stage = Stage::ALL.map(|s| {
            registry.histo(
                "dblsh_stage_seconds",
                "Per-stage latency of traced search requests.",
                &[("stage", s.name())],
            )
        });
        Metrics {
            started: Instant::now(),
            started_at_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            knn: req("knn"),
            rcnn: req("rcnn"),
            inserts: req("insert"),
            removes: req("remove"),
            errors: registry.counter(
                "dblsh_errors_total",
                "Requests that resolved to an error (including contained worker panics).",
                &[],
            ),
            rejected: registry.counter(
                "dblsh_rejected_total",
                "Requests refused at admission (full queue).",
                &[],
            ),
            deadline_expired: registry.counter(
                "dblsh_deadline_expired_total",
                "Searches that expired in the queue without executing.",
                &[],
            ),
            candidates: registry.counter(
                "dblsh_query_candidates_total",
                "Candidates consumed across all completed searches.",
                &[],
            ),
            rounds: registry.counter(
                "dblsh_query_rounds_total",
                "Radius-ladder rounds across all completed searches.",
                &[],
            ),
            index_probes: registry.counter(
                "dblsh_index_probes_total",
                "R*-tree window hits across all completed searches.",
                &[],
            ),
            prefilter_pruned: registry.counter(
                "dblsh_prefilter_pruned_total",
                "Candidates dropped by the SQ8 pre-filter before any f32 row read.",
                &[],
            ),
            prefilter_survivors: registry.counter(
                "dblsh_prefilter_survivors_total",
                "Candidates that survived the SQ8 pre-filter into exact verification.",
                &[],
            ),
            verify_nanos: registry.counter(
                "dblsh_verify_nanos_total",
                "Nanoseconds spent in timed verification stages.",
                &[],
            ),
            latency: registry.histo(
                "dblsh_request_seconds",
                "End-to-end search latency, submission to completion.",
                &[],
            ),
            stage,
            queue_depth: registry.gauge(
                "dblsh_queue_depth",
                "Jobs accepted but not yet picked up by a worker.",
                &[],
            ),
            uptime: registry.gauge("dblsh_uptime_seconds", "Seconds since engine start.", &[]),
            live_points: registry.gauge("dblsh_live_points", "Live points across all shards.", &[]),
            dead_rows: registry.gauge(
                "dblsh_dead_rows",
                "Tombstoned rows still occupying space across all shards.",
                &[],
            ),
            memory_bytes: registry.gauge(
                "dblsh_memory_bytes",
                "Heap footprint of the index structures and id tables.",
                &[],
            ),
            compactions: registry.gauge(
                "dblsh_compactions",
                "Shard compactions performed (automatic and manual).",
                &[],
            ),
            wal_truncations: registry.gauge(
                "dblsh_wal_truncations_recovered",
                "Shard WAL logs whose torn tail was dropped during crash recovery.",
                &[],
            ),
            slow_log: SlowQueryLog::new(SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_NANOS),
            registry,
        }
    }

    fn record_search(&self, op: &Counter, latency_nanos: u64, stats: &QueryStats) {
        op.inc();
        self.candidates.add(stats.candidates as u64);
        self.rounds.add(stats.rounds as u64);
        self.index_probes.add(stats.index_probes as u64);
        self.prefilter_pruned.add(stats.prefilter_pruned as u64);
        self.prefilter_survivors
            .add(stats.prefilter_survivors as u64);
        self.verify_nanos.add(stats.verify_nanos);
        self.latency.record(latency_nanos);
    }

    /// Feed one traced request's span breakdown into the per-stage
    /// histograms and offer it to the slow-query ring.
    fn record_trace(&self, trace: &QueryTrace, entry: SlowQuery) {
        for s in Stage::ALL {
            let nanos = trace.get(s);
            if nanos > 0 {
                self.stage[s as usize].record(nanos);
            }
        }
        self.slow_log.offer(entry);
    }
}

/// A point-in-time snapshot of the engine counters — what the `saturate`
/// harness prints per sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Completed search requests — (c,k)-ANN and (r,c)-NN probes
    /// combined (`knn_requests + rcnn_requests`).
    pub searches: u64,
    /// Completed (c,k)-ANN search requests (the Knn opcode).
    pub knn_requests: u64,
    /// Completed (r,c)-NN probe requests (the RcNn opcode).
    pub rcnn_requests: u64,
    /// Completed insert requests.
    pub inserts: u64,
    /// Completed remove requests.
    pub removes: u64,
    /// Requests that resolved to an error.
    pub errors: u64,
    /// Requests refused at admission (non-blocking submission against a
    /// full queue — [`DbLshError::Busy`]). These never executed; they
    /// are the backpressure the wire front door surfaces to remote
    /// callers.
    pub rejected: u64,
    /// Searches that sat in the queue past their per-request deadline
    /// and were **not executed** — resolved to
    /// [`DbLshError::DeadlineExceeded`] when a worker reached them.
    /// Counted separately from `errors`: an expired deadline is load
    /// shedding (like `rejected`), not a fault in the request.
    pub deadline_expired: u64,
    /// Jobs sitting in the submission queue at snapshot time (accepted,
    /// not yet picked up by a worker) — the live backlog admission
    /// control is reacting to.
    pub queue_depth: u64,
    /// Aggregate per-query work counters across all completed searches
    /// (accumulated via [`QueryStats::merge`]).
    pub query: QueryStats,
    /// Seconds since the engine started. Unlike `uptime_secs` this
    /// **adds** under [`EngineStats::merge`] (combined lifetime of
    /// sequentially run engines), which is what keeps the recomputed
    /// `qps` honest across a saturation sweep.
    pub elapsed_secs: f64,
    /// Seconds this engine has been up at snapshot time. Merging keeps
    /// the maximum (the longest-lived engine of the fold), never a sum.
    pub uptime_secs: f64,
    /// Wall-clock engine start, seconds since the Unix epoch (0 when
    /// the clock was unreadable). Merging keeps the earliest non-zero
    /// start.
    pub started_at_unix: u64,
    /// Completed searches per second of engine lifetime.
    pub qps: f64,
    /// Mean search latency (submission to completion), microseconds.
    pub mean_latency_us: f64,
    /// Median search latency, microseconds (log₂-bucket resolution).
    pub p50_latency_us: f64,
    /// 99th-percentile search latency, microseconds (log₂-bucket
    /// resolution).
    pub p99_latency_us: f64,
    /// The raw log₂(nanoseconds) latency histogram behind the
    /// quantiles: `latency_buckets[b]` counts searches whose latency was
    /// in `[2^b, 2^{b+1})` ns. Exposed so folds across engines
    /// ([`EngineStats::merge`]) can combine distributions exactly
    /// instead of degrading to max-of-maxes.
    pub latency_buckets: [u64; 64],
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            searches: 0,
            knn_requests: 0,
            rcnn_requests: 0,
            inserts: 0,
            removes: 0,
            errors: 0,
            rejected: 0,
            deadline_expired: 0,
            queue_depth: 0,
            query: QueryStats::default(),
            elapsed_secs: 0.0,
            uptime_secs: 0.0,
            started_at_unix: 0,
            qps: 0.0,
            mean_latency_us: 0.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            latency_buckets: [0; 64],
        }
    }
}

impl EngineStats {
    /// Fold another snapshot into this one — totals across the
    /// *sequentially run* engines of a saturation sweep. Counters and
    /// elapsed time add (`query` through [`QueryStats::merge`]), so the
    /// recomputed `qps` is overall searches per second of combined
    /// engine lifetime. The latency bucket counts add too, and p50/p99
    /// are recomputed from the **combined histogram** — exact at bucket
    /// resolution, where the old max-of-maxes answer could overstate the
    /// merged median by the full spread between the folded engines.
    pub fn merge(&mut self, other: &EngineStats) {
        let lat_total = self.mean_latency_us * self.searches as f64
            + other.mean_latency_us * other.searches as f64;
        self.searches += other.searches;
        self.knn_requests += other.knn_requests;
        self.rcnn_requests += other.rcnn_requests;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.errors += other.errors;
        self.rejected += other.rejected;
        self.deadline_expired += other.deadline_expired;
        // Queue depth is instantaneous, not cumulative: folding sweeps
        // keeps the worst backlog observed.
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.query.merge(&other.query);
        self.elapsed_secs += other.elapsed_secs;
        self.uptime_secs = self.uptime_secs.max(other.uptime_secs);
        self.started_at_unix = match (self.started_at_unix, other.started_at_unix) {
            (0, b) => b,
            (a, 0) => a,
            (a, b) => a.min(b),
        };
        self.qps = if self.elapsed_secs > 0.0 {
            self.searches as f64 / self.elapsed_secs
        } else {
            0.0
        };
        self.mean_latency_us = if self.searches > 0 {
            lat_total / self.searches as f64
        } else {
            0.0
        };
        for (mine, theirs) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *mine += theirs;
        }
        self.p50_latency_us = log2_quantile_us(&self.latency_buckets, 0.50);
        self.p99_latency_us = log2_quantile_us(&self.latency_buckets, 0.99);
    }
}

/// The serving engine: a worker pool over a shared [`ShardedDbLsh`].
/// See the module docs for the lifecycle and the latency/counter
/// semantics.
pub struct Engine {
    index: Arc<ShardedDbLsh>,
    queue: Arc<Queue>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start `config.workers` worker threads over `index`.
    pub fn start(index: Arc<ShardedDbLsh>, config: EngineConfig) -> Engine {
        let queue = Arc::new(Queue::new(config.queue_capacity.max(1)));
        let metrics = Arc::new(Metrics::new());
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let index = Arc::clone(&index);
                std::thread::Builder::new()
                    .name(format!("dblsh-serve-{w}"))
                    .spawn(move || worker_loop(&index, &queue, &metrics))
                    // lint: allow(panic-free-surface) — OS thread-spawn failure at startup has no caller to degrade to
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            index,
            queue,
            metrics,
            workers,
        }
    }

    /// The shared index the engine serves (usable directly for
    /// out-of-band reads, e.g. `len()` between sweeps).
    pub fn index(&self) -> &Arc<ShardedDbLsh> {
        &self.index
    }

    /// Submit a (c,k)-ANN search with default options.
    pub fn search(&self, query: &[f32], k: usize) -> Ticket<SearchResult> {
        self.search_with(query, k, SearchOptions::default())
    }

    /// Submit a (c,k)-ANN search with per-request options. Blocks only
    /// when the queue is full (backpressure).
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Ticket<SearchResult> {
        self.search_with_deadline(query, k, opts, None)
    }

    /// [`Engine::search_with`] plus a queue-wait budget: if the request
    /// is still queued once `deadline` has elapsed since submission, it
    /// expires with [`DbLshError::DeadlineExceeded`] instead of
    /// executing — returning a stale answer to a caller that already
    /// timed out would only add load. Expired requests are counted in
    /// [`EngineStats::deadline_expired`], not `errors`. The deadline
    /// bounds *queue wait*, not execution: a request a worker has
    /// already started runs to completion.
    pub fn search_with_deadline(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
        deadline: Option<Duration>,
    ) -> Ticket<SearchResult> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Search {
            query: query.to_vec(),
            k,
            opts,
            enqueued: Instant::now(),
            deadline,
            reply,
        });
        ticket
    }

    /// Submit an insert.
    pub fn insert(&self, point: &[f32]) -> Ticket<u32> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Insert {
            point: point.to_vec(),
            reply,
        });
        ticket
    }

    /// Submit a remove.
    pub fn remove(&self, id: u32) -> Ticket<bool> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Remove { id, reply });
        ticket
    }

    /// Submit an (r,c)-NN probe (Definition 2 of the paper): the nearest
    /// point within distance `c·r` of the query, if any lies within `r`.
    pub fn r_c_nn(&self, query: &[f32], r: f64) -> Ticket<(Option<Neighbor>, QueryStats)> {
        let (reply, ticket) = oneshot();
        self.submit(Job::RcNn {
            query: query.to_vec(),
            r,
            enqueued: Instant::now(),
            reply,
        });
        ticket
    }

    /// Non-blocking [`Engine::search_with`]: a full queue is refused
    /// with [`DbLshError::Busy`] (counted in [`EngineStats::rejected`])
    /// instead of blocking the submitter, and a draining engine with
    /// [`DbLshError::Shutdown`] — the admission-control surface a wire
    /// front door maps onto typed protocol errors, so a remote caller is
    /// never parked inside the server's accept path.
    pub fn try_search_with(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<Ticket<SearchResult>, DbLshError> {
        self.try_search_with_deadline(query, k, opts, None)
    }

    /// Non-blocking [`Engine::search_with_deadline`]: admission control
    /// and queue-wait deadlines compose — a full queue refuses with
    /// [`DbLshError::Busy`] immediately, an accepted request can still
    /// expire with [`DbLshError::DeadlineExceeded`] if the backlog
    /// outlasts its budget.
    pub fn try_search_with_deadline(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
        deadline: Option<Duration>,
    ) -> Result<Ticket<SearchResult>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Search {
            query: query.to_vec(),
            k,
            opts,
            enqueued: Instant::now(),
            deadline,
            reply,
        })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::insert`] (see [`Engine::try_search_with`]).
    pub fn try_insert(&self, point: &[f32]) -> Result<Ticket<u32>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Insert {
            point: point.to_vec(),
            reply,
        })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::remove`] (see [`Engine::try_search_with`]).
    pub fn try_remove(&self, id: u32) -> Result<Ticket<bool>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Remove { id, reply })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::r_c_nn`] (see [`Engine::try_search_with`]).
    pub fn try_r_c_nn(
        &self,
        query: &[f32],
        r: f64,
    ) -> Result<Ticket<(Option<Neighbor>, QueryStats)>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::RcNn {
            query: query.to_vec(),
            r,
            enqueued: Instant::now(),
            reply,
        })?;
        Ok(ticket)
    }

    /// Fault-injection hook for the torture harness: make whichever
    /// worker picks this job up panic mid-request. The panic is
    /// contained — the worker catches it at the job boundary and keeps
    /// serving — and the returned ticket resolves to the typed
    /// [`DbLshError::Shutdown`] (the standard "worker died mid-request"
    /// outcome), so callers can await the fault deterministically. The
    /// panic is counted in [`EngineStats::errors`].
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) -> Ticket<()> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Chaos(reply));
        ticket
    }

    fn submit(&self, job: Job) {
        self.queue.push(job);
    }

    fn try_submit(&self, job: Job) -> Result<(), DbLshError> {
        self.queue.try_push(job).inspect_err(|err| {
            if *err == DbLshError::Busy {
                self.metrics.rejected.inc();
            }
        })
    }

    /// Begin graceful drain *without* consuming the engine: the queue
    /// closes (new submissions resolve to [`DbLshError::Shutdown`];
    /// non-blocking ones refuse with it), every already-accepted request
    /// still completes, and workers exit once the backlog is empty.
    /// Unlike [`Engine::shutdown`] this does not join the workers — it
    /// is callable from any thread holding an `Arc<Engine>` (the wire
    /// server's shutdown path); the eventual drop (or `shutdown`) joins.
    pub fn drain(&self) {
        self.queue.close();
    }

    /// Whether [`Engine::drain`] (or shutdown) has closed the queue.
    pub fn is_draining(&self) -> bool {
        self.queue
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }

    /// Snapshot the engine counters.
    pub fn stats(&self) -> EngineStats {
        let m = &self.metrics;
        let knn = m.knn.get();
        let rcnn = m.rcnn.get();
        let searches = knn + rcnn;
        let elapsed = m.started.elapsed().as_secs_f64();
        let lat = m.latency.snapshot();
        EngineStats {
            searches,
            knn_requests: knn,
            rcnn_requests: rcnn,
            inserts: m.inserts.get(),
            removes: m.removes.get(),
            errors: m.errors.get(),
            rejected: m.rejected.get(),
            deadline_expired: m.deadline_expired.get(),
            queue_depth: self.queue.depth() as u64,
            query: QueryStats {
                candidates: m.candidates.get() as usize,
                rounds: m.rounds.get() as usize,
                index_probes: m.index_probes.get() as usize,
                prefilter_pruned: m.prefilter_pruned.get() as usize,
                prefilter_survivors: m.prefilter_survivors.get() as usize,
                verify_nanos: m.verify_nanos.get(),
            },
            elapsed_secs: elapsed,
            uptime_secs: elapsed,
            started_at_unix: m.started_at_unix,
            qps: if elapsed > 0.0 {
                searches as f64 / elapsed
            } else {
                0.0
            },
            mean_latency_us: if lat.count > 0 {
                lat.sum_nanos as f64 / lat.count as f64 / 1e3
            } else {
                0.0
            },
            p50_latency_us: log2_quantile_us(&lat.buckets, 0.50),
            p99_latency_us: log2_quantile_us(&lat.buckets, 0.99),
            latency_buckets: lat.buckets,
        }
    }

    /// The engine's metrics registry — every serving counter, gauge, and
    /// histogram registers here, so the wire front door and the bench
    /// harnesses scrape one coherent snapshot.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Refresh the scrape-time gauges (queue depth, uptime, index
    /// breakdown) so a snapshot taken right after reflects the present.
    fn refresh_gauges(&self) {
        let m = &self.metrics;
        m.queue_depth.set(self.queue.depth() as u64);
        m.uptime.set(m.started.elapsed().as_secs());
        m.live_points.set(self.index.len() as u64);
        m.dead_rows.set(self.index.dead_rows() as u64);
        m.memory_bytes.set(self.index.memory_bytes() as u64);
        m.compactions.set(self.index.compaction_count());
        m.wal_truncations
            .set(self.index.wal_truncations_recovered());
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (gauges refreshed first).
    pub fn render_metrics_prometheus(&self) -> String {
        self.refresh_gauges();
        render_prometheus(&self.metrics.registry.snapshot())
    }

    /// Render every registered metric as a JSON document (gauges
    /// refreshed first).
    pub fn render_metrics_json(&self) -> String {
        self.refresh_gauges();
        render_json(&self.metrics.registry.snapshot())
    }

    /// Snapshot of the slow-query ring log, oldest first. Only traced
    /// requests ([`SearchOptions::trace`]) are offered to the log.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.metrics.slow_log.snapshot()
    }

    /// Adjust the slow-query capture threshold at runtime (default
    /// 100 ms; `Duration::MAX`-scale values effectively disable capture).
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        self.metrics
            .slow_log
            .set_threshold_nanos(threshold.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Current slow-query capture threshold.
    pub fn slow_query_threshold(&self) -> Duration {
        Duration::from_nanos(self.metrics.slow_log.threshold_nanos())
    }

    /// Close the queue, finish every accepted request, and join the
    /// workers. Returns the final counter snapshot.
    pub fn shutdown(mut self) -> EngineStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(index: &ShardedDbLsh, queue: &Queue, metrics: &Metrics) {
    while let Some(job) = queue.pop() {
        // Contain panics at the job boundary: one poisoned request must
        // not shrink the worker pool for every later caller. The job
        // (with its Reply) is consumed either way, so the submitter's
        // ticket always resolves — normally, or with the typed
        // `Shutdown` a dropped Reply produces.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_job(index, metrics, job)
        }));
        if outcome.is_err() {
            metrics.errors.inc();
        }
    }
}

fn handle_job(index: &ShardedDbLsh, metrics: &Metrics, job: Job) {
    match job {
        Job::Search {
            query,
            k,
            opts,
            enqueued,
            deadline,
            reply,
        } => {
            if let Some(budget) = deadline {
                if enqueued.elapsed() >= budget {
                    // Expired while queued: never executed, so the
                    // caller can safely retry with a fresh budget.
                    metrics.deadline_expired.inc();
                    reply.send(Err(DbLshError::DeadlineExceeded));
                    return;
                }
            }
            if opts.trace {
                // Traced path: queue wait is everything up to this
                // pickup; the sharded search attributes the pipeline
                // stages; close() makes the per-stage sum equal the
                // end-to-end latency by construction.
                let mut trace = QueryTrace::new();
                trace.add(Stage::Queue, enqueued.elapsed().as_nanos() as u64);
                let result = index.search_with_trace(&query, k, &opts, &mut trace);
                let latency = enqueued.elapsed().as_nanos() as u64;
                match &result {
                    Ok(res) => {
                        trace.close(latency);
                        metrics.record_search(&metrics.knn, latency, &res.stats);
                        metrics.record_trace(
                            &trace,
                            SlowQuery {
                                args_digest: args_digest(&query, k),
                                k,
                                total_nanos: latency,
                                stage_nanos: trace.stage_nanos,
                                rounds: res.stats.rounds,
                                candidates: res.stats.candidates,
                            },
                        );
                    }
                    Err(_) => metrics.errors.inc(),
                }
                reply.send(result);
            } else {
                let result = index.search_with(&query, k, &opts);
                let latency = enqueued.elapsed().as_nanos() as u64;
                match &result {
                    Ok(res) => metrics.record_search(&metrics.knn, latency, &res.stats),
                    Err(_) => metrics.errors.inc(),
                }
                reply.send(result);
            }
        }
        Job::Insert { point, reply } => {
            let result = index.insert(&point);
            match &result {
                Ok(_) => metrics.inserts.inc(),
                Err(_) => metrics.errors.inc(),
            }
            reply.send(result);
        }
        Job::Remove { id, reply } => {
            let result = index.remove(id);
            match &result {
                Ok(_) => metrics.removes.inc(),
                Err(_) => metrics.errors.inc(),
            }
            reply.send(result);
        }
        Job::RcNn {
            query,
            r,
            enqueued,
            reply,
        } => {
            let result = index.r_c_nn(&query, r);
            let latency = enqueued.elapsed().as_nanos() as u64;
            match &result {
                // An (r,c)-NN probe is a search: it shares the search
                // latency histogram, under its own opcode counter.
                Ok((_, stats)) => metrics.record_search(&metrics.rcnn, latency, stats),
                Err(_) => metrics.errors.inc(),
            }
            reply.send(result);
        }
        Job::Chaos(_reply) => {
            // `_reply` is dropped by the unwind, resolving the
            // ticket with the typed Shutdown.
            // lint: allow(panic-free-surface) — the fault-injection hook exists to panic a worker on purpose
            panic!("injected worker panic");
        }
        #[cfg(test)]
        Job::Fence(barrier) => {
            barrier.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPolicy;
    use dblsh_core::DbLshBuilder;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
    use dblsh_telemetry::bucket_of;

    fn engine(workers: usize, cap: usize) -> Engine {
        let data = gaussian_mixture(&MixtureConfig {
            n: 400,
            dim: 12,
            clusters: 10,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.02,
            seed: 21,
        });
        let builder = DbLshBuilder::new().k(6).l(3).t(8).r_min(0.5);
        let index = ShardedDbLsh::build(&data, &builder, 2, ShardPolicy::RoundRobin).unwrap();
        Engine::start(
            Arc::new(index),
            EngineConfig {
                workers,
                queue_capacity: cap,
            },
        )
    }

    #[test]
    fn engine_answers_match_direct_queries() {
        let engine = engine(2, 64);
        let q = engine.index().k_ann(&[0.0; 12], 5); // warm nothing, just direct
        let direct = engine
            .index()
            .search_with(&[0.0; 12], 5, &SearchOptions::default());
        let served = engine.search(&[0.0; 12], 5).wait();
        assert_eq!(served.unwrap().ids(), direct.unwrap().ids());
        drop(q);
    }

    #[test]
    fn mixed_workload_updates_counters() {
        let engine = engine(2, 8);
        let mut tickets = Vec::new();
        for i in 0..30u32 {
            tickets.push(engine.search(&[i as f32 * 0.1; 12], 3));
        }
        let id = engine.insert(&[1.0; 12]).wait().unwrap();
        assert!(engine.remove(id).wait().unwrap());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.searches, 30);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.removes, 1);
        assert_eq!(stats.errors, 0);
        assert!(stats.query.candidates > 0);
        assert!(stats.mean_latency_us > 0.0);
        assert!(stats.p99_latency_us >= stats.p50_latency_us);
        let final_stats = engine.shutdown();
        assert_eq!(final_stats.searches, 30);
    }

    #[test]
    fn errors_are_counted_and_returned() {
        let engine = engine(1, 4);
        let res = engine.search(&[1.0; 3], 5).wait();
        assert!(matches!(res, Err(DbLshError::DimensionMismatch { .. })));
        let res = engine.remove(1_000_000).wait();
        assert!(matches!(res, Err(DbLshError::UnknownId { .. })));
        assert_eq!(engine.stats().errors, 2);
    }

    #[test]
    fn tiny_queue_applies_backpressure_but_completes() {
        let engine = engine(1, 1);
        let tickets: Vec<_> = (0..50).map(|i| engine.search(&[i as f32; 12], 2)).collect();
        assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
        assert_eq!(engine.stats().searches, 50);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let engine = engine(1, 64);
        let tickets: Vec<_> = (0..20)
            .map(|i| engine.search(&[i as f32 * 0.3; 12], 2))
            .collect();
        let stats = engine.shutdown();
        assert_eq!(stats.searches, 20);
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted request must resolve");
        }
    }

    #[test]
    fn full_queue_refuses_with_typed_busy_and_counts_it() {
        let engine = engine(1, 1);
        let gate = Arc::new(std::sync::Barrier::new(2));
        engine.submit(Job::Fence(Arc::clone(&gate)));
        // Blocking push returns only after the single worker popped the
        // fence (capacity 1), so the queue is now deterministically full
        // with this search while the worker is parked on the barrier.
        let pending = engine.search(&[0.0; 12], 2);
        assert!(matches!(
            engine.try_search_with(&[0.0; 12], 2, SearchOptions::default()),
            Err(DbLshError::Busy)
        ));
        assert!(matches!(
            engine.try_insert(&[0.0; 12]),
            Err(DbLshError::Busy)
        ));
        assert!(matches!(engine.try_remove(0), Err(DbLshError::Busy)));
        assert!(matches!(
            engine.try_r_c_nn(&[0.0; 12], 1.0),
            Err(DbLshError::Busy)
        ));
        let stats = engine.stats();
        assert_eq!(stats.rejected, 4, "every refusal must be counted");
        assert_eq!(stats.queue_depth, 1, "the accepted search is the backlog");
        gate.wait();
        assert!(pending.wait().is_ok(), "accepted request must still run");
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn drain_refuses_new_work_with_typed_shutdown() {
        let engine = engine(1, 8);
        assert!(!engine.is_draining());
        assert!(engine.search(&[0.2; 12], 3).wait().is_ok());
        engine.drain();
        assert!(engine.is_draining());
        // Blocking submission after drain: the ticket still resolves,
        // and with the typed Shutdown — never a hang, never a stringly
        // "abandoned" error.
        assert!(matches!(
            engine.search(&[0.2; 12], 3).wait(),
            Err(DbLshError::Shutdown)
        ));
        assert_eq!(engine.insert(&[0.2; 12]).wait(), Err(DbLshError::Shutdown));
        // Non-blocking submission refuses immediately, same type, and a
        // drain refusal is not a queue-full rejection.
        assert!(matches!(
            engine.try_search_with(&[0.2; 12], 3, SearchOptions::default()),
            Err(DbLshError::Shutdown)
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn queued_past_deadline_expires_without_executing() {
        let engine = engine(1, 4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        engine.submit(Job::Fence(Arc::clone(&gate)));
        // The single worker is parked on the fence, so these sit in the
        // queue: a zero budget has certainly elapsed by pickup, a huge
        // one certainly has not.
        let expired = engine.search_with_deadline(
            &[0.1; 12],
            3,
            SearchOptions::default(),
            Some(Duration::ZERO),
        );
        let served = engine.search_with_deadline(
            &[0.1; 12],
            3,
            SearchOptions::default(),
            Some(Duration::from_secs(3600)),
        );
        gate.wait();
        assert!(matches!(expired.wait(), Err(DbLshError::DeadlineExceeded)));
        let direct = engine
            .index()
            .search_with(&[0.1; 12], 3, &SearchOptions::default())
            .unwrap();
        assert_eq!(served.wait().unwrap().neighbors, direct.neighbors);
        let stats = engine.shutdown();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.searches, 1, "expired request must not execute");
        assert_eq!(stats.errors, 0, "expiry is load shedding, not a fault");
    }

    #[test]
    fn a_panicking_request_does_not_kill_the_worker() {
        // One worker: if the injected panic tore the thread down, the
        // follow-up search would hang in the queue forever.
        let engine = engine(1, 8);
        for _ in 0..3 {
            let chaos = engine.inject_worker_panic();
            assert!(matches!(chaos.wait(), Err(DbLshError::Shutdown)));
        }
        let direct = engine
            .index()
            .search_with(&[0.4; 12], 4, &SearchOptions::default())
            .unwrap();
        let served = engine.search(&[0.4; 12], 4).wait().unwrap();
        assert_eq!(served.neighbors, direct.neighbors);
        let stats = engine.shutdown();
        assert_eq!(stats.errors, 3, "each contained panic is counted");
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn deadline_expiries_merge_across_snapshots() {
        let mut a = EngineStats {
            deadline_expired: 2,
            ..EngineStats::default()
        };
        a.merge(&EngineStats {
            deadline_expired: 3,
            ..EngineStats::default()
        });
        assert_eq!(a.deadline_expired, 5);
    }

    #[test]
    fn rcnn_over_engine_matches_direct_probe() {
        let engine = engine(2, 16);
        let q = [0.0; 12];
        let direct = engine.index().r_c_nn(&q, 5.0).unwrap();
        let served = engine.r_c_nn(&q, 5.0).wait().unwrap();
        assert_eq!(served, direct);
        // An (r,c)-NN probe counts as a search in the engine stats.
        assert_eq!(engine.stats().searches, 1);
        // And the non-blocking path answers identically on an idle queue.
        let tried = engine.try_r_c_nn(&q, 5.0).unwrap().wait().unwrap();
        assert_eq!(tried, direct);
    }

    #[test]
    fn latency_histogram_matches_engine_quantiles() {
        let mut h = LatencyHistogram::new();
        for nanos in [800, 1_500, 70_000, 70_000, 2_000_000] {
            h.record(nanos);
        }
        assert_eq!(h.count(), 5);
        let mut counts = [0u64; 64];
        for nanos in [800u64, 1_500, 70_000, 70_000, 2_000_000] {
            counts[bucket_of(nanos)] += 1;
        }
        assert_eq!(h.quantile_us(0.50), log2_quantile_us(&counts, 0.50));
        assert_eq!(h.quantile_us(0.99), log2_quantile_us(&counts, 0.99));
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.count(), 10);
        // Doubling every bucket keeps each quantile in the same bucket;
        // the interpolated position inside it may legitimately shift.
        let bucket_of_us = |us: f64| bucket_of((us * 1e3) as u64);
        assert_eq!(
            bucket_of_us(merged.quantile_us(0.5)),
            bucket_of_us(h.quantile_us(0.5))
        );
        assert_eq!(
            bucket_of_us(merged.quantile_us(0.99)),
            bucket_of_us(h.quantile_us(0.99))
        );
    }

    #[test]
    fn traced_requests_match_untraced_and_feed_stage_histograms() {
        let engine = engine(2, 32);
        engine.set_slow_query_threshold(Duration::ZERO);
        assert_eq!(engine.slow_query_threshold(), Duration::ZERO);
        let q = [0.3; 12];
        let untraced = engine.search(&q, 5).wait().unwrap();
        let traced = engine
            .search_with(
                &q,
                5,
                SearchOptions {
                    trace: true,
                    ..SearchOptions::default()
                },
            )
            .wait()
            .unwrap();
        // Tracing must not perturb the answer or the per-query stats.
        assert_eq!(traced.neighbors, untraced.neighbors);
        assert_eq!(traced.stats, untraced.stats);
        // At threshold zero, the one traced request lands in the slow
        // log — the untraced one is never offered.
        let slow = engine.slow_queries();
        assert_eq!(slow.len(), 1);
        let entry = &slow[0];
        assert_eq!(entry.k, 5);
        assert_eq!(entry.args_digest, args_digest(&q, 5));
        assert_eq!(
            entry.stage_nanos.iter().sum::<u64>(),
            entry.total_nanos,
            "close() makes the per-stage sum equal end-to-end latency"
        );
        assert!(entry.stage_nanos[Stage::Projection as usize] > 0);
        assert!(entry.stage_nanos[Stage::TreeProbe as usize] > 0);
        let stats = engine.stats();
        assert_eq!(stats.searches, 2);
        assert_eq!(stats.knn_requests, 2);
        assert_eq!(stats.rcnn_requests, 0);
        assert!(stats.uptime_secs > 0.0);
        assert!(stats.started_at_unix > 0);
    }

    #[test]
    fn metrics_renderings_cover_the_catalogue() {
        let engine = engine(1, 8);
        assert!(engine.search(&[0.1; 12], 3).wait().is_ok());
        assert!(engine
            .search_with(
                &[0.1; 12],
                3,
                SearchOptions {
                    trace: true,
                    ..SearchOptions::default()
                },
            )
            .wait()
            .is_ok());
        let prom = engine.render_metrics_prometheus();
        for needle in [
            "dblsh_requests_total{op=\"knn\"} 2\n",
            "dblsh_requests_total{op=\"rcnn\"} 0\n",
            "# TYPE dblsh_request_seconds summary",
            "dblsh_stage_seconds{stage=\"projection\",quantile=\"0.5\"}",
            "dblsh_queue_depth 0\n",
            "dblsh_live_points 400\n",
            "dblsh_wal_truncations_recovered 0\n",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
        let json = engine.render_metrics_json();
        assert!(
            json.contains("\"name\":\"dblsh_request_seconds\""),
            "{json}"
        );
        assert!(json.contains("\"kind\":\"histogram\""), "{json}");
        // same registry behind both renderings
        assert!(Arc::ptr_eq(engine.registry(), &engine.metrics.registry));
    }

    #[test]
    fn engine_stats_merge_accumulates() {
        let mut buckets = [0u64; 64];
        buckets[16] = 10; // 10 searches around 65-131 us
        let a = EngineStats {
            searches: 10,
            qps: 5.0,
            elapsed_secs: 2.0,
            mean_latency_us: 100.0,
            p50_latency_us: log2_quantile_us(&buckets, 0.50),
            p99_latency_us: log2_quantile_us(&buckets, 0.99),
            latency_buckets: buckets,
            ..EngineStats::default()
        };
        let mut total = EngineStats::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.searches, 20);
        // sequential sweeps: lifetimes add, so throughput stays honest
        assert_eq!(total.elapsed_secs, 4.0);
        assert_eq!(total.qps, 5.0);
        assert_eq!(total.mean_latency_us, 100.0);
        assert_eq!(total.latency_buckets[16], 20);
        // Quantiles are recomputed from the combined histogram; with
        // every observation in bucket 16 they must stay inside it
        // ([2^16, 2^17) ns = [65.536, 131.072) us).
        assert_eq!(
            total.p50_latency_us,
            log2_quantile_us(&total.latency_buckets, 0.50)
        );
        assert_eq!(
            total.p99_latency_us,
            log2_quantile_us(&total.latency_buckets, 0.99)
        );
        for q in [total.p50_latency_us, total.p99_latency_us] {
            assert!((65.536..131.072).contains(&q), "{q} outside bucket 16");
        }
    }

    #[test]
    fn engine_stats_merge_recomputes_quantiles_from_the_histogram() {
        // Engine A: 90 fast requests (bucket 10, ~1-2 us). Engine B: 10
        // slow ones (bucket 20, ~1-2 ms). The merged p50 must stay in
        // the fast bucket — max-of-maxes would have reported B's much
        // larger median for the combined stream.
        let mut fast = [0u64; 64];
        fast[10] = 90;
        let mut slow = [0u64; 64];
        slow[20] = 10;
        let a = EngineStats {
            searches: 90,
            p50_latency_us: log2_quantile_us(&fast, 0.50),
            p99_latency_us: log2_quantile_us(&fast, 0.99),
            latency_buckets: fast,
            ..EngineStats::default()
        };
        let b = EngineStats {
            searches: 10,
            p50_latency_us: log2_quantile_us(&slow, 0.50),
            p99_latency_us: log2_quantile_us(&slow, 0.99),
            latency_buckets: slow,
            ..EngineStats::default()
        };
        let mut total = a.clone();
        total.merge(&b);
        // combined: rank 50 of 100 falls in the fast bucket; rank 99 in
        // the slow one
        assert_eq!(bucket_of((total.p50_latency_us * 1e3) as u64), 10);
        assert_eq!(bucket_of((total.p99_latency_us * 1e3) as u64), 20);
        assert!(total.p50_latency_us < b.p50_latency_us);
        // and the fold is symmetric
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(rev.p50_latency_us, total.p50_latency_us);
        assert_eq!(rev.p99_latency_us, total.p99_latency_us);
    }
}
