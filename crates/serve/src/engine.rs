//! The serving front door: a long-lived worker pool draining a bounded
//! submission queue of search/insert/remove requests against a shared
//! [`ShardedDbLsh`], with per-request [`QueryStats`] aggregation into
//! engine-level counters (QPS, log₂-bucket latency quantiles, candidates
//! verified).
//!
//! Submissions are non-blocking until the queue is full, then apply
//! backpressure (the submitting thread waits for a slot); each request
//! returns a [`Ticket`] resolved by whichever worker executes it.
//! Workers are plain OS threads that live as long as the engine; the
//! per-thread prober scratch pools of the sharded query path warm up
//! once per worker and are reused across every request the worker
//! serves. Dropping (or [`Engine::shutdown`]-ing) the engine closes the
//! queue, drains the remaining requests, and joins the workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dblsh_core::SearchOptions;
use dblsh_data::{DbLshError, Neighbor, QueryStats, SearchResult};

use crate::shard::ShardedDbLsh;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads serving the queue. Defaults to the number of
    /// available cores.
    pub workers: usize,
    /// Submission-queue capacity; a full queue blocks submitters
    /// (backpressure, never unbounded memory). Defaults to 1024.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
            queue_capacity: 1024,
        }
    }
}

/// One-shot result slot: the submitter holds the [`Ticket`], the worker
/// resolves it. Std-only (mutex + condvar), no channel allocation churn
/// beyond the one `Arc`.
#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

/// The submitter's handle to an in-flight request. Every request
/// resolves to a `Result`: the operation's own outcome, or a
/// [`DbLshError`] when the engine could not serve it (shut down before
/// acceptance, or a worker died mid-request) — a `Ticket` can never
/// block forever.
#[derive(Debug)]
pub struct Ticket<T> {
    slot: Arc<Slot<Result<T, DbLshError>>>,
}

impl<T> Ticket<T> {
    /// Block until the request completes and take its result.
    pub fn wait(self) -> Result<T, DbLshError> {
        let mut value = self.slot.value.lock().expect("ticket mutex poisoned");
        loop {
            if let Some(v) = value.take() {
                return v;
            }
            value = self.slot.ready.wait(value).expect("ticket mutex poisoned");
        }
    }

    /// Take the result if the request has already completed.
    pub fn try_take(&self) -> Option<Result<T, DbLshError>> {
        self.slot
            .value
            .lock()
            .expect("ticket mutex poisoned")
            .take()
    }
}

/// The worker's side of a [`Ticket`]. If it is dropped without
/// [`Reply::send`] — a worker panicking mid-request, or the queue being
/// torn down with the job still queued — the ticket resolves to the
/// typed [`DbLshError::Shutdown`] instead of leaving the submitter
/// blocked forever.
#[derive(Debug)]
struct Reply<T> {
    slot: Option<Arc<Slot<Result<T, DbLshError>>>>,
}

impl<T> Reply<T> {
    fn send(mut self, value: Result<T, DbLshError>) {
        if let Some(slot) = self.slot.take() {
            *slot.value.lock().expect("ticket mutex poisoned") = Some(value);
            slot.ready.notify_all();
        }
    }
}

impl<T> Drop for Reply<T> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            let mut value = match slot.value.lock() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            *value = Some(Err(DbLshError::Shutdown));
            drop(value);
            slot.ready.notify_all();
        }
    }
}

fn oneshot<T>() -> (Reply<T>, Ticket<T>) {
    let slot = Arc::new(Slot {
        value: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        Reply {
            slot: Some(Arc::clone(&slot)),
        },
        Ticket { slot },
    )
}

/// A queued request. Search requests carry their submission instant so
/// reported latency includes queue wait — the number a saturation
/// harness actually cares about.
enum Job {
    Search {
        query: Vec<f32>,
        k: usize,
        opts: SearchOptions,
        enqueued: Instant,
        /// Queue-wait budget: a search still queued past this expires
        /// with [`DbLshError::DeadlineExceeded`] instead of executing.
        deadline: Option<Duration>,
        reply: Reply<SearchResult>,
    },
    Insert {
        point: Vec<f32>,
        reply: Reply<u32>,
    },
    Remove {
        id: u32,
        reply: Reply<bool>,
    },
    RcNn {
        query: Vec<f32>,
        r: f64,
        enqueued: Instant,
        reply: Reply<(Option<Neighbor>, QueryStats)>,
    },
    /// Chaos hook: panic the executing worker mid-request (see
    /// [`Engine::inject_worker_panic`]). The panic is caught at the
    /// job boundary — the worker survives, the ticket resolves to the
    /// typed [`DbLshError::Shutdown`] via its dropped [`Reply`].
    Chaos(Reply<()>),
    /// Test-only: park the executing worker on a barrier, so tests can
    /// hold the queue deterministically full while probing admission
    /// control.
    #[cfg(test)]
    Fence(Arc<std::sync::Barrier>),
}

/// Bounded MPMC job queue: mutex + two condvars, closes on shutdown.
struct Queue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, blocking while full. A job refused by a closed queue is
    /// dropped here, outside the lock — which resolves its [`Reply`]
    /// with the typed [`DbLshError::Shutdown`] rather than leaving a
    /// waiter hanging.
    fn push(&self, job: Job) {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        while inner.jobs.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue mutex poisoned");
        }
        if inner.closed {
            drop(inner);
            drop(job);
            return;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Enqueue without blocking: a full queue is [`DbLshError::Busy`], a
    /// closed one [`DbLshError::Shutdown`]. A refused job is dropped
    /// here (outside the lock), which resolves its [`Reply`]; the caller
    /// gets the precise refusal reason through the returned error.
    fn try_push(&self, job: Job) -> Result<(), DbLshError> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        let refusal = if inner.closed {
            Some(DbLshError::Shutdown)
        } else if inner.jobs.len() >= self.capacity {
            Some(DbLshError::Busy)
        } else {
            None
        };
        if let Some(err) = refusal {
            drop(inner);
            drop(job);
            return Err(err);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently queued (accepted, not yet picked up by a worker).
    fn depth(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").jobs.len()
    }

    /// Dequeue, blocking while empty. `None` once the queue is closed
    /// *and* drained — workers finish every accepted request.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue mutex poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Engine-level counters, updated lock-free by the workers. Latencies go
/// into log₂(nanoseconds) buckets, so quantiles are exact to within a
/// factor of two — the right fidelity for a saturation harness that
/// wants cheap, contention-free recording.
#[derive(Debug)]
struct Metrics {
    started: Instant,
    searches: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    candidates: AtomicU64,
    rounds: AtomicU64,
    index_probes: AtomicU64,
    prefilter_pruned: AtomicU64,
    prefilter_survivors: AtomicU64,
    verify_nanos: AtomicU64,
    latency_nanos_total: AtomicU64,
    latency_buckets: [AtomicU64; 64],
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            searches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            index_probes: AtomicU64::new(0),
            prefilter_pruned: AtomicU64::new(0),
            prefilter_survivors: AtomicU64::new(0),
            verify_nanos: AtomicU64::new(0),
            latency_nanos_total: AtomicU64::new(0),
            latency_buckets: [const { AtomicU64::new(0) }; 64],
        }
    }

    fn record_search(&self, latency_nanos: u64, stats: &QueryStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(stats.candidates as u64, Ordering::Relaxed);
        self.rounds
            .fetch_add(stats.rounds as u64, Ordering::Relaxed);
        self.index_probes
            .fetch_add(stats.index_probes as u64, Ordering::Relaxed);
        self.prefilter_pruned
            .fetch_add(stats.prefilter_pruned as u64, Ordering::Relaxed);
        self.prefilter_survivors
            .fetch_add(stats.prefilter_survivors as u64, Ordering::Relaxed);
        self.verify_nanos
            .fetch_add(stats.verify_nanos, Ordering::Relaxed);
        self.latency_nanos_total
            .fetch_add(latency_nanos, Ordering::Relaxed);
        self.latency_buckets[bucket_of(latency_nanos)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A log₂(nanoseconds) latency histogram: 64 buckets, where bucket `b`
/// counts observations in `[2^b, 2^{b+1})` ns. The exact shape behind
/// [`EngineStats`]' quantiles, exposed so out-of-process harnesses (the
/// `loadgen` bench bin measuring wire round-trips) report p50/p99 with
/// identical semantics and can merge distributions exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Raw bucket counts.
    pub buckets: [u64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64] }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `nanos`.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[bucket_of(nanos)] += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The latency below which fraction `q` of observations fall,
    /// resolved to the upper edge of its log₂ bucket, in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        bucket_quantile_us(&self.buckets, q)
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// The log₂ bucket index a latency of `nanos` falls into.
fn bucket_of(nanos: u64) -> usize {
    63 - nanos.max(1).leading_zeros() as usize
}

/// The latency below which `q` of the recorded requests fall, resolved
/// to the upper edge of its log₂ bucket, in microseconds. Shared by the
/// live [`Engine::stats`] snapshot and [`EngineStats::merge`], which
/// recomputes quantiles from summed bucket counts.
fn bucket_quantile_us(counts: &[u64; 64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return (1u64 << (b + 1).min(63)) as f64 / 1e3;
        }
    }
    0.0
}

/// A point-in-time snapshot of the engine counters — what the `saturate`
/// harness prints per sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Completed search requests.
    pub searches: u64,
    /// Completed insert requests.
    pub inserts: u64,
    /// Completed remove requests.
    pub removes: u64,
    /// Requests that resolved to an error.
    pub errors: u64,
    /// Requests refused at admission (non-blocking submission against a
    /// full queue — [`DbLshError::Busy`]). These never executed; they
    /// are the backpressure the wire front door surfaces to remote
    /// callers.
    pub rejected: u64,
    /// Searches that sat in the queue past their per-request deadline
    /// and were **not executed** — resolved to
    /// [`DbLshError::DeadlineExceeded`] when a worker reached them.
    /// Counted separately from `errors`: an expired deadline is load
    /// shedding (like `rejected`), not a fault in the request.
    pub deadline_expired: u64,
    /// Jobs sitting in the submission queue at snapshot time (accepted,
    /// not yet picked up by a worker) — the live backlog admission
    /// control is reacting to.
    pub queue_depth: u64,
    /// Aggregate per-query work counters across all completed searches
    /// (accumulated via [`QueryStats::merge`]).
    pub query: QueryStats,
    /// Seconds since the engine started.
    pub elapsed_secs: f64,
    /// Completed searches per second of engine lifetime.
    pub qps: f64,
    /// Mean search latency (submission to completion), microseconds.
    pub mean_latency_us: f64,
    /// Median search latency, microseconds (log₂-bucket resolution).
    pub p50_latency_us: f64,
    /// 99th-percentile search latency, microseconds (log₂-bucket
    /// resolution).
    pub p99_latency_us: f64,
    /// The raw log₂(nanoseconds) latency histogram behind the
    /// quantiles: `latency_buckets[b]` counts searches whose latency was
    /// in `[2^b, 2^{b+1})` ns. Exposed so folds across engines
    /// ([`EngineStats::merge`]) can combine distributions exactly
    /// instead of degrading to max-of-maxes.
    pub latency_buckets: [u64; 64],
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            searches: 0,
            inserts: 0,
            removes: 0,
            errors: 0,
            rejected: 0,
            deadline_expired: 0,
            queue_depth: 0,
            query: QueryStats::default(),
            elapsed_secs: 0.0,
            qps: 0.0,
            mean_latency_us: 0.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            latency_buckets: [0; 64],
        }
    }
}

impl EngineStats {
    /// Fold another snapshot into this one — totals across the
    /// *sequentially run* engines of a saturation sweep. Counters and
    /// elapsed time add (`query` through [`QueryStats::merge`]), so the
    /// recomputed `qps` is overall searches per second of combined
    /// engine lifetime. The latency bucket counts add too, and p50/p99
    /// are recomputed from the **combined histogram** — exact at bucket
    /// resolution, where the old max-of-maxes answer could overstate the
    /// merged median by the full spread between the folded engines.
    pub fn merge(&mut self, other: &EngineStats) {
        let lat_total = self.mean_latency_us * self.searches as f64
            + other.mean_latency_us * other.searches as f64;
        self.searches += other.searches;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.errors += other.errors;
        self.rejected += other.rejected;
        self.deadline_expired += other.deadline_expired;
        // Queue depth is instantaneous, not cumulative: folding sweeps
        // keeps the worst backlog observed.
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.query.merge(&other.query);
        self.elapsed_secs += other.elapsed_secs;
        self.qps = if self.elapsed_secs > 0.0 {
            self.searches as f64 / self.elapsed_secs
        } else {
            0.0
        };
        self.mean_latency_us = if self.searches > 0 {
            lat_total / self.searches as f64
        } else {
            0.0
        };
        for (mine, theirs) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *mine += theirs;
        }
        self.p50_latency_us = bucket_quantile_us(&self.latency_buckets, 0.50);
        self.p99_latency_us = bucket_quantile_us(&self.latency_buckets, 0.99);
    }
}

/// The serving engine: a worker pool over a shared [`ShardedDbLsh`].
/// See the module docs for the lifecycle and the latency/counter
/// semantics.
pub struct Engine {
    index: Arc<ShardedDbLsh>,
    queue: Arc<Queue>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start `config.workers` worker threads over `index`.
    pub fn start(index: Arc<ShardedDbLsh>, config: EngineConfig) -> Engine {
        let queue = Arc::new(Queue::new(config.queue_capacity.max(1)));
        let metrics = Arc::new(Metrics::new());
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let index = Arc::clone(&index);
                std::thread::Builder::new()
                    .name(format!("dblsh-serve-{w}"))
                    .spawn(move || worker_loop(&index, &queue, &metrics))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            index,
            queue,
            metrics,
            workers,
        }
    }

    /// The shared index the engine serves (usable directly for
    /// out-of-band reads, e.g. `len()` between sweeps).
    pub fn index(&self) -> &Arc<ShardedDbLsh> {
        &self.index
    }

    /// Submit a (c,k)-ANN search with default options.
    pub fn search(&self, query: &[f32], k: usize) -> Ticket<SearchResult> {
        self.search_with(query, k, SearchOptions::default())
    }

    /// Submit a (c,k)-ANN search with per-request options. Blocks only
    /// when the queue is full (backpressure).
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Ticket<SearchResult> {
        self.search_with_deadline(query, k, opts, None)
    }

    /// [`Engine::search_with`] plus a queue-wait budget: if the request
    /// is still queued once `deadline` has elapsed since submission, it
    /// expires with [`DbLshError::DeadlineExceeded`] instead of
    /// executing — returning a stale answer to a caller that already
    /// timed out would only add load. Expired requests are counted in
    /// [`EngineStats::deadline_expired`], not `errors`. The deadline
    /// bounds *queue wait*, not execution: a request a worker has
    /// already started runs to completion.
    pub fn search_with_deadline(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
        deadline: Option<Duration>,
    ) -> Ticket<SearchResult> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Search {
            query: query.to_vec(),
            k,
            opts,
            enqueued: Instant::now(),
            deadline,
            reply,
        });
        ticket
    }

    /// Submit an insert.
    pub fn insert(&self, point: &[f32]) -> Ticket<u32> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Insert {
            point: point.to_vec(),
            reply,
        });
        ticket
    }

    /// Submit a remove.
    pub fn remove(&self, id: u32) -> Ticket<bool> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Remove { id, reply });
        ticket
    }

    /// Submit an (r,c)-NN probe (Definition 2 of the paper): the nearest
    /// point within distance `c·r` of the query, if any lies within `r`.
    pub fn r_c_nn(&self, query: &[f32], r: f64) -> Ticket<(Option<Neighbor>, QueryStats)> {
        let (reply, ticket) = oneshot();
        self.submit(Job::RcNn {
            query: query.to_vec(),
            r,
            enqueued: Instant::now(),
            reply,
        });
        ticket
    }

    /// Non-blocking [`Engine::search_with`]: a full queue is refused
    /// with [`DbLshError::Busy`] (counted in [`EngineStats::rejected`])
    /// instead of blocking the submitter, and a draining engine with
    /// [`DbLshError::Shutdown`] — the admission-control surface a wire
    /// front door maps onto typed protocol errors, so a remote caller is
    /// never parked inside the server's accept path.
    pub fn try_search_with(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<Ticket<SearchResult>, DbLshError> {
        self.try_search_with_deadline(query, k, opts, None)
    }

    /// Non-blocking [`Engine::search_with_deadline`]: admission control
    /// and queue-wait deadlines compose — a full queue refuses with
    /// [`DbLshError::Busy`] immediately, an accepted request can still
    /// expire with [`DbLshError::DeadlineExceeded`] if the backlog
    /// outlasts its budget.
    pub fn try_search_with_deadline(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
        deadline: Option<Duration>,
    ) -> Result<Ticket<SearchResult>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Search {
            query: query.to_vec(),
            k,
            opts,
            enqueued: Instant::now(),
            deadline,
            reply,
        })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::insert`] (see [`Engine::try_search_with`]).
    pub fn try_insert(&self, point: &[f32]) -> Result<Ticket<u32>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Insert {
            point: point.to_vec(),
            reply,
        })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::remove`] (see [`Engine::try_search_with`]).
    pub fn try_remove(&self, id: u32) -> Result<Ticket<bool>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::Remove { id, reply })?;
        Ok(ticket)
    }

    /// Non-blocking [`Engine::r_c_nn`] (see [`Engine::try_search_with`]).
    pub fn try_r_c_nn(
        &self,
        query: &[f32],
        r: f64,
    ) -> Result<Ticket<(Option<Neighbor>, QueryStats)>, DbLshError> {
        let (reply, ticket) = oneshot();
        self.try_submit(Job::RcNn {
            query: query.to_vec(),
            r,
            enqueued: Instant::now(),
            reply,
        })?;
        Ok(ticket)
    }

    /// Fault-injection hook for the torture harness: make whichever
    /// worker picks this job up panic mid-request. The panic is
    /// contained — the worker catches it at the job boundary and keeps
    /// serving — and the returned ticket resolves to the typed
    /// [`DbLshError::Shutdown`] (the standard "worker died mid-request"
    /// outcome), so callers can await the fault deterministically. The
    /// panic is counted in [`EngineStats::errors`].
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) -> Ticket<()> {
        let (reply, ticket) = oneshot();
        self.submit(Job::Chaos(reply));
        ticket
    }

    fn submit(&self, job: Job) {
        self.queue.push(job);
    }

    fn try_submit(&self, job: Job) -> Result<(), DbLshError> {
        self.queue.try_push(job).inspect_err(|err| {
            if *err == DbLshError::Busy {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Begin graceful drain *without* consuming the engine: the queue
    /// closes (new submissions resolve to [`DbLshError::Shutdown`];
    /// non-blocking ones refuse with it), every already-accepted request
    /// still completes, and workers exit once the backlog is empty.
    /// Unlike [`Engine::shutdown`] this does not join the workers — it
    /// is callable from any thread holding an `Arc<Engine>` (the wire
    /// server's shutdown path); the eventual drop (or `shutdown`) joins.
    pub fn drain(&self) {
        self.queue.close();
    }

    /// Whether [`Engine::drain`] (or shutdown) has closed the queue.
    pub fn is_draining(&self) -> bool {
        self.queue
            .inner
            .lock()
            .expect("queue mutex poisoned")
            .closed
    }

    /// Snapshot the engine counters.
    pub fn stats(&self) -> EngineStats {
        let m = &self.metrics;
        let searches = m.searches.load(Ordering::Relaxed);
        let elapsed = m.started.elapsed().as_secs_f64();
        let counts: [u64; 64] =
            std::array::from_fn(|b| m.latency_buckets[b].load(Ordering::Relaxed));
        EngineStats {
            searches,
            inserts: m.inserts.load(Ordering::Relaxed),
            removes: m.removes.load(Ordering::Relaxed),
            errors: m.errors.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            deadline_expired: m.deadline_expired.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            query: QueryStats {
                candidates: m.candidates.load(Ordering::Relaxed) as usize,
                rounds: m.rounds.load(Ordering::Relaxed) as usize,
                index_probes: m.index_probes.load(Ordering::Relaxed) as usize,
                prefilter_pruned: m.prefilter_pruned.load(Ordering::Relaxed) as usize,
                prefilter_survivors: m.prefilter_survivors.load(Ordering::Relaxed) as usize,
                verify_nanos: m.verify_nanos.load(Ordering::Relaxed),
            },
            elapsed_secs: elapsed,
            qps: if elapsed > 0.0 {
                searches as f64 / elapsed
            } else {
                0.0
            },
            mean_latency_us: if searches > 0 {
                m.latency_nanos_total.load(Ordering::Relaxed) as f64 / searches as f64 / 1e3
            } else {
                0.0
            },
            p50_latency_us: bucket_quantile_us(&counts, 0.50),
            p99_latency_us: bucket_quantile_us(&counts, 0.99),
            latency_buckets: counts,
        }
    }

    /// Close the queue, finish every accepted request, and join the
    /// workers. Returns the final counter snapshot.
    pub fn shutdown(mut self) -> EngineStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(index: &ShardedDbLsh, queue: &Queue, metrics: &Metrics) {
    while let Some(job) = queue.pop() {
        // Contain panics at the job boundary: one poisoned request must
        // not shrink the worker pool for every later caller. The job
        // (with its Reply) is consumed either way, so the submitter's
        // ticket always resolves — normally, or with the typed
        // `Shutdown` a dropped Reply produces.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_job(index, metrics, job)
        }));
        if outcome.is_err() {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_job(index: &ShardedDbLsh, metrics: &Metrics, job: Job) {
    match job {
        Job::Search {
            query,
            k,
            opts,
            enqueued,
            deadline,
            reply,
        } => {
            if let Some(budget) = deadline {
                if enqueued.elapsed() >= budget {
                    // Expired while queued: never executed, so the
                    // caller can safely retry with a fresh budget.
                    metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    reply.send(Err(DbLshError::DeadlineExceeded));
                    return;
                }
            }
            let result = index.search_with(&query, k, &opts);
            let latency = enqueued.elapsed().as_nanos() as u64;
            match &result {
                Ok(res) => metrics.record_search(latency, &res.stats),
                Err(_) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            reply.send(result);
        }
        Job::Insert { point, reply } => {
            let result = index.insert(&point);
            match &result {
                Ok(_) => {
                    metrics.inserts.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            reply.send(result);
        }
        Job::Remove { id, reply } => {
            let result = index.remove(id);
            match &result {
                Ok(_) => {
                    metrics.removes.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            reply.send(result);
        }
        Job::RcNn {
            query,
            r,
            enqueued,
            reply,
        } => {
            let result = index.r_c_nn(&query, r);
            let latency = enqueued.elapsed().as_nanos() as u64;
            match &result {
                // An (r,c)-NN probe is a search: it shares the
                // search counter and latency histogram.
                Ok((_, stats)) => metrics.record_search(latency, stats),
                Err(_) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            reply.send(result);
        }
        Job::Chaos(_reply) => {
            // `_reply` is dropped by the unwind, resolving the
            // ticket with the typed Shutdown.
            panic!("injected worker panic");
        }
        #[cfg(test)]
        Job::Fence(barrier) => {
            barrier.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPolicy;
    use dblsh_core::DbLshBuilder;
    use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn engine(workers: usize, cap: usize) -> Engine {
        let data = gaussian_mixture(&MixtureConfig {
            n: 400,
            dim: 12,
            clusters: 10,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.02,
            seed: 21,
        });
        let builder = DbLshBuilder::new().k(6).l(3).t(8).r_min(0.5);
        let index = ShardedDbLsh::build(&data, &builder, 2, ShardPolicy::RoundRobin).unwrap();
        Engine::start(
            Arc::new(index),
            EngineConfig {
                workers,
                queue_capacity: cap,
            },
        )
    }

    #[test]
    fn engine_answers_match_direct_queries() {
        let engine = engine(2, 64);
        let q = engine.index().k_ann(&[0.0; 12], 5); // warm nothing, just direct
        let direct = engine
            .index()
            .search_with(&[0.0; 12], 5, &SearchOptions::default());
        let served = engine.search(&[0.0; 12], 5).wait();
        assert_eq!(served.unwrap().ids(), direct.unwrap().ids());
        drop(q);
    }

    #[test]
    fn mixed_workload_updates_counters() {
        let engine = engine(2, 8);
        let mut tickets = Vec::new();
        for i in 0..30u32 {
            tickets.push(engine.search(&[i as f32 * 0.1; 12], 3));
        }
        let id = engine.insert(&[1.0; 12]).wait().unwrap();
        assert!(engine.remove(id).wait().unwrap());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.searches, 30);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.removes, 1);
        assert_eq!(stats.errors, 0);
        assert!(stats.query.candidates > 0);
        assert!(stats.mean_latency_us > 0.0);
        assert!(stats.p99_latency_us >= stats.p50_latency_us);
        let final_stats = engine.shutdown();
        assert_eq!(final_stats.searches, 30);
    }

    #[test]
    fn errors_are_counted_and_returned() {
        let engine = engine(1, 4);
        let res = engine.search(&[1.0; 3], 5).wait();
        assert!(matches!(res, Err(DbLshError::DimensionMismatch { .. })));
        let res = engine.remove(1_000_000).wait();
        assert!(matches!(res, Err(DbLshError::UnknownId { .. })));
        assert_eq!(engine.stats().errors, 2);
    }

    #[test]
    fn tiny_queue_applies_backpressure_but_completes() {
        let engine = engine(1, 1);
        let tickets: Vec<_> = (0..50).map(|i| engine.search(&[i as f32; 12], 2)).collect();
        assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
        assert_eq!(engine.stats().searches, 50);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let engine = engine(1, 64);
        let tickets: Vec<_> = (0..20)
            .map(|i| engine.search(&[i as f32 * 0.3; 12], 2))
            .collect();
        let stats = engine.shutdown();
        assert_eq!(stats.searches, 20);
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted request must resolve");
        }
    }

    #[test]
    fn full_queue_refuses_with_typed_busy_and_counts_it() {
        let engine = engine(1, 1);
        let gate = Arc::new(std::sync::Barrier::new(2));
        engine.submit(Job::Fence(Arc::clone(&gate)));
        // Blocking push returns only after the single worker popped the
        // fence (capacity 1), so the queue is now deterministically full
        // with this search while the worker is parked on the barrier.
        let pending = engine.search(&[0.0; 12], 2);
        assert!(matches!(
            engine.try_search_with(&[0.0; 12], 2, SearchOptions::default()),
            Err(DbLshError::Busy)
        ));
        assert!(matches!(
            engine.try_insert(&[0.0; 12]),
            Err(DbLshError::Busy)
        ));
        assert!(matches!(engine.try_remove(0), Err(DbLshError::Busy)));
        assert!(matches!(
            engine.try_r_c_nn(&[0.0; 12], 1.0),
            Err(DbLshError::Busy)
        ));
        let stats = engine.stats();
        assert_eq!(stats.rejected, 4, "every refusal must be counted");
        assert_eq!(stats.queue_depth, 1, "the accepted search is the backlog");
        gate.wait();
        assert!(pending.wait().is_ok(), "accepted request must still run");
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn drain_refuses_new_work_with_typed_shutdown() {
        let engine = engine(1, 8);
        assert!(!engine.is_draining());
        assert!(engine.search(&[0.2; 12], 3).wait().is_ok());
        engine.drain();
        assert!(engine.is_draining());
        // Blocking submission after drain: the ticket still resolves,
        // and with the typed Shutdown — never a hang, never a stringly
        // "abandoned" error.
        assert!(matches!(
            engine.search(&[0.2; 12], 3).wait(),
            Err(DbLshError::Shutdown)
        ));
        assert_eq!(engine.insert(&[0.2; 12]).wait(), Err(DbLshError::Shutdown));
        // Non-blocking submission refuses immediately, same type, and a
        // drain refusal is not a queue-full rejection.
        assert!(matches!(
            engine.try_search_with(&[0.2; 12], 3, SearchOptions::default()),
            Err(DbLshError::Shutdown)
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn queued_past_deadline_expires_without_executing() {
        let engine = engine(1, 4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        engine.submit(Job::Fence(Arc::clone(&gate)));
        // The single worker is parked on the fence, so these sit in the
        // queue: a zero budget has certainly elapsed by pickup, a huge
        // one certainly has not.
        let expired = engine.search_with_deadline(
            &[0.1; 12],
            3,
            SearchOptions::default(),
            Some(Duration::ZERO),
        );
        let served = engine.search_with_deadline(
            &[0.1; 12],
            3,
            SearchOptions::default(),
            Some(Duration::from_secs(3600)),
        );
        gate.wait();
        assert!(matches!(expired.wait(), Err(DbLshError::DeadlineExceeded)));
        let direct = engine
            .index()
            .search_with(&[0.1; 12], 3, &SearchOptions::default())
            .unwrap();
        assert_eq!(served.wait().unwrap().neighbors, direct.neighbors);
        let stats = engine.shutdown();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.searches, 1, "expired request must not execute");
        assert_eq!(stats.errors, 0, "expiry is load shedding, not a fault");
    }

    #[test]
    fn a_panicking_request_does_not_kill_the_worker() {
        // One worker: if the injected panic tore the thread down, the
        // follow-up search would hang in the queue forever.
        let engine = engine(1, 8);
        for _ in 0..3 {
            let chaos = engine.inject_worker_panic();
            assert!(matches!(chaos.wait(), Err(DbLshError::Shutdown)));
        }
        let direct = engine
            .index()
            .search_with(&[0.4; 12], 4, &SearchOptions::default())
            .unwrap();
        let served = engine.search(&[0.4; 12], 4).wait().unwrap();
        assert_eq!(served.neighbors, direct.neighbors);
        let stats = engine.shutdown();
        assert_eq!(stats.errors, 3, "each contained panic is counted");
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn deadline_expiries_merge_across_snapshots() {
        let mut a = EngineStats {
            deadline_expired: 2,
            ..EngineStats::default()
        };
        a.merge(&EngineStats {
            deadline_expired: 3,
            ..EngineStats::default()
        });
        assert_eq!(a.deadline_expired, 5);
    }

    #[test]
    fn rcnn_over_engine_matches_direct_probe() {
        let engine = engine(2, 16);
        let q = [0.0; 12];
        let direct = engine.index().r_c_nn(&q, 5.0).unwrap();
        let served = engine.r_c_nn(&q, 5.0).wait().unwrap();
        assert_eq!(served, direct);
        // An (r,c)-NN probe counts as a search in the engine stats.
        assert_eq!(engine.stats().searches, 1);
        // And the non-blocking path answers identically on an idle queue.
        let tried = engine.try_r_c_nn(&q, 5.0).unwrap().wait().unwrap();
        assert_eq!(tried, direct);
    }

    #[test]
    fn latency_histogram_matches_engine_quantiles() {
        let mut h = LatencyHistogram::new();
        for nanos in [800, 1_500, 70_000, 70_000, 2_000_000] {
            h.record(nanos);
        }
        assert_eq!(h.count(), 5);
        let mut counts = [0u64; 64];
        for nanos in [800u64, 1_500, 70_000, 70_000, 2_000_000] {
            counts[bucket_of(nanos)] += 1;
        }
        assert_eq!(h.quantile_us(0.50), bucket_quantile_us(&counts, 0.50));
        assert_eq!(h.quantile_us(0.99), bucket_quantile_us(&counts, 0.99));
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.count(), 10);
        assert_eq!(merged.quantile_us(0.5), h.quantile_us(0.5));
    }

    #[test]
    fn engine_stats_merge_accumulates() {
        let mut buckets = [0u64; 64];
        buckets[16] = 10; // 10 searches around 65-131 us
        let a = EngineStats {
            searches: 10,
            qps: 5.0,
            elapsed_secs: 2.0,
            mean_latency_us: 100.0,
            p50_latency_us: bucket_quantile_us(&buckets, 0.50),
            p99_latency_us: bucket_quantile_us(&buckets, 0.99),
            latency_buckets: buckets,
            ..EngineStats::default()
        };
        let mut total = EngineStats::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.searches, 20);
        // sequential sweeps: lifetimes add, so throughput stays honest
        assert_eq!(total.elapsed_secs, 4.0);
        assert_eq!(total.qps, 5.0);
        assert_eq!(total.mean_latency_us, 100.0);
        assert_eq!(total.latency_buckets[16], 20);
        assert_eq!(total.p50_latency_us, a.p50_latency_us);
        assert_eq!(total.p99_latency_us, a.p99_latency_us);
    }

    #[test]
    fn engine_stats_merge_recomputes_quantiles_from_the_histogram() {
        // Engine A: 90 fast requests (bucket 10, ~1-2 us). Engine B: 10
        // slow ones (bucket 20, ~1-2 ms). The merged p50 must stay in
        // the fast bucket — max-of-maxes would have reported B's much
        // larger median for the combined stream.
        let mut fast = [0u64; 64];
        fast[10] = 90;
        let mut slow = [0u64; 64];
        slow[20] = 10;
        let a = EngineStats {
            searches: 90,
            p50_latency_us: bucket_quantile_us(&fast, 0.50),
            p99_latency_us: bucket_quantile_us(&fast, 0.99),
            latency_buckets: fast,
            ..EngineStats::default()
        };
        let b = EngineStats {
            searches: 10,
            p50_latency_us: bucket_quantile_us(&slow, 0.50),
            p99_latency_us: bucket_quantile_us(&slow, 0.99),
            latency_buckets: slow,
            ..EngineStats::default()
        };
        let mut total = a.clone();
        total.merge(&b);
        // combined: rank 50 of 100 falls in the fast bucket; rank 99 in
        // the slow one
        assert_eq!(total.p50_latency_us, bucket_quantile_us(&fast, 0.50));
        assert_eq!(total.p99_latency_us, bucket_quantile_us(&slow, 0.99));
        assert!(total.p50_latency_us < b.p50_latency_us);
        // and the fold is symmetric
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(rev.p50_latency_us, total.p50_latency_us);
        assert_eq!(rev.p99_latency_us, total.p99_latency_us);
    }
}
