//! Workspace discovery: which files the analyzer reads and how they are
//! classified. The scanned set is the `src/` tree of every workspace
//! crate plus the root facade's `src/` — vendored shim crates
//! (`crates/shims/`) are excluded (external API surface, not ours), and
//! `tests/`, `benches/`, `examples/` directories are excluded from the
//! scan entirely (the `#[cfg(test)]` regions *inside* `src/` files are
//! still parsed and marked per-token).

use crate::source::SourceFile;
use std::path::{Path, PathBuf};

#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Scan `root` (a directory holding the workspace `Cargo.toml`).
    pub fn scan(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("crates")];
        while let Some(dir) = dirs.pop() {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(_) => continue, // a layout without ./src is fine
            };
            for entry in entries {
                let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if path.is_dir() {
                    if name == "target" || name == "shims" {
                        continue;
                    }
                    // Under crates/<name>/, descend only into src/.
                    let is_crate_level = path.parent().is_some_and(|p| p.ends_with("crates"));
                    if is_crate_level || name == "src" || ancestor_is_src(&path, root) {
                        dirs.push(path);
                    }
                } else if name.ends_with(".rs") && ancestor_is_src(&path, root) {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    files.push(SourceFile::parse(rel, &text, false));
                }
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        if files.is_empty() {
            return Err(format!(
                "no Rust sources found under {} — is this the workspace root?",
                root.display()
            ));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }
}

/// Whether `path` sits inside some `src/` directory below `root`.
fn ancestor_is_src(path: &Path, root: &Path) -> bool {
    path.strip_prefix(root)
        .map(|rel| rel.components().any(|c| c.as_os_str() == "src"))
        .unwrap_or(false)
}
