//! Per-file source model: the token stream plus the derived facts every
//! rule needs — which token ranges are test code, where the inline
//! suppressions sit, and how to find the justification comment that
//! covers a given line.

use crate::lexer::{lex, TokKind, Token};
use std::cell::Cell;

/// An inline suppression: `// lint: allow(<rule>) — <reason>`.
///
/// The reason is mandatory — un-justified suppressions are themselves
/// findings. A suppression covers findings of its rule on its own line
/// (trailing-comment form) or on the next line that carries code.
#[derive(Debug)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// First code-bearing line at or below `line` — what it covers.
    pub covers_line: u32,
    /// Set when a finding was actually suppressed; unused suppressions
    /// are reported so the inventory never rots.
    pub used: Cell<bool>,
    /// A malformed suppression (empty reason / bad syntax): kept so it
    /// can be reported instead of silently ignored.
    pub malformed: Option<&'static str>,
}

/// One analyzed file: raw lines, tokens, test spans, suppressions.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw text split into lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Token-index ranges `[start, end)` that are `#[cfg(test)]` /
    /// `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
    /// Whether the whole file is test code (under a `tests/` dir).
    pub all_test: bool,
}

impl SourceFile {
    pub fn parse(rel_path: String, text: &str, all_test: bool) -> SourceFile {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let test_spans = find_test_spans(&tokens);
        let mut f = SourceFile {
            rel_path,
            lines,
            tokens,
            test_spans,
            suppressions: Vec::new(),
            all_test,
        };
        f.suppressions = f.find_suppressions();
        f
    }

    /// 1-based line text ("" past EOF).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get((line as usize).saturating_sub(1))
            .map_or("", |s| s.as_str())
    }

    /// Whether token `i` is inside test code.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.all_test || self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Iterator over (index, token) of code tokens (comments skipped).
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }

    /// The first line at or below `line` that carries a code token.
    fn next_code_line(&self, line: u32) -> u32 {
        self.tokens
            .iter()
            .filter(|t| !t.is_comment() && t.line >= line)
            .map(|t| t.line)
            .next()
            .unwrap_or(line)
    }

    fn find_suppressions(&self) -> Vec<Suppression> {
        let mut out = Vec::new();
        for t in &self.tokens {
            if t.kind != TokKind::LineComment {
                continue;
            }
            let body = t.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("lint:") else {
                continue;
            };
            let rest = rest.trim();
            let (rule, reason, malformed) = parse_allow(rest);
            out.push(Suppression {
                rule,
                reason,
                line: t.line,
                covers_line: self.covered_line(t.line),
                used: Cell::new(false),
                malformed,
            });
        }
        out
    }

    /// What line a suppression comment on `line` covers: its own line if
    /// that line has code (trailing-comment form), else the next code
    /// line below it.
    fn covered_line(&self, line: u32) -> u32 {
        let own_line_has_code = self
            .tokens
            .iter()
            .any(|t| !t.is_comment() && t.line == line);
        if own_line_has_code {
            line
        } else {
            self.next_code_line(line + 1)
        }
    }

    /// Whether a justification comment containing `marker` covers `line`:
    /// on the line itself (trailing comment), in the contiguous block of
    /// comment/attribute lines directly above, or above the start of the
    /// multi-line statement the line belongs to. The upward walk treats a
    /// line ending in `;`, `{` or `}` as a statement boundary and gives
    /// up after `max_up` lines, so a justification can't act at a
    /// distance.
    pub fn has_justification(&self, line: u32, marker: &str, max_up: u32) -> bool {
        if self.line_text(line).contains(marker) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        let mut walked = 0;
        while l >= 1 && walked < max_up {
            let text = self.line_text(l).trim().to_string();
            if text.contains(marker) {
                return true;
            }
            let is_comment = text.starts_with("//");
            let is_attr = text.starts_with("#[") || text.ends_with("]") && text.starts_with(')');
            // A continuation line of the same statement: code that does
            // not end a statement or open/close a block.
            let is_continuation = !text.is_empty()
                && !is_comment
                && !text.ends_with(';')
                && !text.ends_with('{')
                && !text.ends_with('}');
            if !(is_comment || is_attr || is_continuation) {
                return false;
            }
            l -= 1;
            walked += 1;
        }
        false
    }
}

/// Parse `allow(<rule>) <sep> <reason>`; returns (rule, reason, malformed).
fn parse_allow(rest: &str) -> (String, String, Option<&'static str>) {
    let Some(after) = rest.strip_prefix("allow(") else {
        return (
            String::new(),
            String::new(),
            Some("expected `allow(<rule>)`"),
        );
    };
    let Some(close) = after.find(')') else {
        return (String::new(), String::new(), Some("unclosed `allow(`"));
    };
    let rule = after[..close].trim().to_string();
    let mut reason = after[close + 1..].trim();
    // Accept an em/en dash, hyphen or colon as the reason separator.
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim();
            break;
        }
    }
    if rule.is_empty() {
        return (rule, String::new(), Some("empty rule id"));
    }
    if reason.is_empty() {
        return (
            rule,
            String::new(),
            Some("missing reason — write `// lint: allow(rule) — why`"),
        );
    }
    (rule, reason.to_string(), None)
}

/// Find `#[cfg(test)]` / `#[test]` item spans as token ranges. The span
/// starts at the attribute and runs to the matching `}` (or `;`) of the
/// item the attribute decorates.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].1.text == "#" && matches(&code, i + 1, "[") && is_test_attr(&code, i + 1) {
            let start_tok = code[i].0;
            if let Some(end) = item_end(&code, i) {
                let end_tok = code[end].0 + 1;
                // Skip nested scanning inside the span.
                spans.push((start_tok, end_tok));
                while i < code.len() && code[i].0 < end_tok {
                    i += 1;
                }
                continue;
            }
        }
        i += 1;
    }
    spans
}

fn matches(code: &[(usize, &Token)], i: usize, text: &str) -> bool {
    code.get(i).is_some_and(|(_, t)| t.text == text)
}

/// At `code[open]` == `[` of an attribute: is it `test`-flavored?
/// Covers `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, and
/// harness attributes ending in `::test`.
fn is_test_attr(code: &[(usize, &Token)], open: usize) -> bool {
    let mut depth = 0usize;
    for (_, t) in code.iter().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" if t.kind == TokKind::Ident => return true,
            _ => {}
        }
    }
    false
}

/// From the `#` at `code[i]`, find the index (into `code`) of the token
/// ending the decorated item: the `}` matching its first `{`, or a `;`
/// before any brace opens. Skips any further attributes in between.
fn item_end(code: &[(usize, &Token)], i: usize) -> Option<usize> {
    let mut j = i;
    // Skip the attribute group(s).
    while matches(code, j, "#") && matches(code, j + 1, "[") {
        let mut depth = 0usize;
        j += 1;
        loop {
            match code.get(j)?.1.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Scan the item for its body. A `,` or a closing `}` of the
    // enclosing scope at depth 0 also ends the "item" — that's an
    // attribute on a struct field, enum variant, or match arm.
    let mut brace = 0usize;
    loop {
        let t = code.get(j)?.1;
        match t.text.as_str() {
            ";" | "," if brace == 0 => return Some(j),
            "{" => brace += 1,
            "}" => {
                if brace == 0 {
                    return j.checked_sub(1);
                }
                brace -= 1;
                if brace == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
}
