//! `dblsh-analyze` — workspace-native static analysis for DB-LSH.
//!
//! The repo's correctness story rests on structural contracts that exist
//! as prose: SAFETY justifications on `unsafe`, a panic-free serving
//! surface, documented atomic orderings, the router/shard lock
//! hierarchy, full wire-opcode coverage, and traced/untraced query paths
//! that must never drift. This crate machine-checks all six — a std-only
//! binary with a hand-rolled Rust lexer, a structured-findings framework
//! (human and JSON renderers), inline suppressions
//! (`// lint: allow(<rule>) — <reason>`), and a committed baseline file
//! so pre-existing debt is inventoried rather than ignored.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p dblsh-analyze -- --deny-findings --format json
//! ```

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use findings::{BaselineEntry, Finding};
use workspace::Workspace;

/// Meta-rule id for suppressions that are malformed or suppress nothing.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Meta-rule id for baseline entries that no longer match any finding.
pub const STALE_BASELINE: &str = "stale-baseline";

/// Everything one analysis run produces.
#[derive(Debug)]
pub struct Analysis {
    /// Unsuppressed, unbaselined findings (what `--deny-findings` gates on).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid inline suppression.
    pub suppressed: usize,
    /// Findings silenced by the baseline file.
    pub baselined: usize,
}

/// Run `rules` (all when empty) over the workspace, then apply inline
/// suppressions and the baseline. Suppression-hygiene and baseline-
/// staleness violations are appended as findings of their own, so the
/// debt inventory cannot silently rot.
pub fn analyze(ws: &Workspace, only: &[String], baseline: &[BaselineEntry]) -> Analysis {
    let raw = rules::run_all(ws, only);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut baselined = 0usize;
    let mut baseline_used = vec![false; baseline.len()];

    for f in raw {
        if let Some(file) = ws.files.iter().find(|s| s.rel_path == f.path) {
            let hit = file
                .suppressions
                .iter()
                .find(|s| s.malformed.is_none() && s.rule == f.rule && s.covers_line == f.line);
            if let Some(s) = hit {
                s.used.set(true);
                suppressed += 1;
                continue;
            }
        }
        let entry = baseline
            .iter()
            .position(|b| b.rule == f.rule && b.path == f.path && b.message == f.message);
        if let Some(idx) = entry {
            baseline_used[idx] = true;
            baselined += 1;
            continue;
        }
        findings.push(f);
    }

    // Suppression hygiene: malformed or unused suppressions are findings.
    for file in &ws.files {
        for s in &file.suppressions {
            if let Some(why) = s.malformed {
                findings.push(Finding::new(
                    BAD_SUPPRESSION,
                    &file.rel_path,
                    s.line,
                    format!("malformed suppression: {why}"),
                ));
            } else if !s.used.get() && (only.is_empty() || only.contains(&s.rule)) {
                findings.push(Finding::new(
                    BAD_SUPPRESSION,
                    &file.rel_path,
                    s.line,
                    format!(
                        "suppression for `{}` matches no finding on line {} — remove it or fix the anchor",
                        s.rule, s.covers_line
                    ),
                ));
            }
        }
    }

    // Baseline staleness: an entry matching nothing means debt was paid
    // down (or moved) without regenerating the baseline. Only meaningful
    // on a full run — a `--rule`-restricted pass can't see every rule's
    // findings.
    if only.is_empty() {
        for (b, used) in baseline.iter().zip(&baseline_used) {
            if !used {
                findings.push(Finding::new(
                    STALE_BASELINE,
                    &b.path,
                    0,
                    format!(
                        "baseline entry for `{}` no longer matches any finding ({}) — \
                         regenerate with --write-baseline",
                        b.rule, b.message
                    ),
                ));
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Analysis {
        findings,
        suppressed,
        baselined,
    }
}
