//! `lock-order`: extracts lock-acquisition sites and verifies the
//! workspace's written lock hierarchy with no inverted nesting.
//!
//! The hierarchy this enforces is the one the serving layer documents in
//! prose (see `crates/serve/src/shard.rs` and README "Static analysis"):
//!
//! - **shard → wal**: a shard `RwLock` may be held while taking a WAL
//!   mutex (log-before-apply under the write lock; checkpoint truncation
//!   under the read locks), never the reverse.
//! - **shard → router**: the router mutex may be taken while a shard
//!   lock is held (live-count publication), but no path may hold the
//!   router while acquiring a shard lock — that is the PR 4 deadlock
//!   contract that keeps reads cycle-free.
//! - **replica-write → replica-slot**: the replicated-shard group's
//!   write mutex is taken before any per-replica slot `RwLock`
//!   (WAL-ordered fan-out); a slot guard must never wrap the group
//!   mutex.
//!
//! The checker is lexical and per-function by construction: a guard
//! bound with `let` lives to the end of its enclosing block, an
//! un-bound (temporary) guard lives to the end of its statement, and
//! function bodies are blocks, so guards never leak across functions.
//! Cross-function lock context (a helper documented as "call with the
//! write mutex held") is out of scope and covered by the runtime stress
//! tests instead.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

pub const LOCK_ORDER: &str = "lock-order";

/// Whether a lock class is a `Mutex` (re-acquisition self-deadlocks) or
/// an `RwLock` (read re-entrancy is still UB-adjacent but writer-starved
/// deadlock, not guaranteed — we only order across classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Mutex,
    RwLock,
}

/// A lock class: a named level in the declared hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Class {
    name: &'static str,
    kind: Kind,
}

const SHARD: Class = Class {
    name: "shard",
    kind: Kind::RwLock,
};
const ROUTER: Class = Class {
    name: "router",
    kind: Kind::Mutex,
};
const WAL: Class = Class {
    name: "wal",
    kind: Kind::Mutex,
};
const REPLICA_WRITE: Class = Class {
    name: "replica-write",
    kind: Kind::Mutex,
};
const REPLICA_SLOT: Class = Class {
    name: "replica-slot",
    kind: Kind::RwLock,
};

/// How an acquisition site is recognized: as the receiver of a
/// `.lock()`/`.read()`/`.write()` call, or as a call to a guard-returning
/// helper method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Via {
    Receiver,
    Helper,
}

/// (path substring, identifier, how, class) — the classification table.
const CLASSES: &[(&str, &str, Via, Class)] = &[
    ("crates/serve/src/shard.rs", "router", Via::Receiver, ROUTER),
    ("crates/serve/src/shard.rs", "router", Via::Helper, ROUTER),
    (
        "crates/serve/src/shard.rs",
        "try_router",
        Via::Helper,
        ROUTER,
    ),
    ("crates/serve/src/shard.rs", "shards", Via::Receiver, SHARD),
    (
        "crates/serve/src/shard.rs",
        "read_shard",
        Via::Helper,
        SHARD,
    ),
    (
        "crates/serve/src/shard.rs",
        "read_all_shards",
        Via::Helper,
        SHARD,
    ),
    (
        "crates/serve/src/shard.rs",
        "try_write_shard",
        Via::Helper,
        SHARD,
    ),
    ("crates/serve/src/shard.rs", "log", Via::Receiver, WAL),
    ("crates/serve/src/shard.rs", "logs", Via::Receiver, WAL),
    (
        "crates/serve/src/replica.rs",
        "write",
        Via::Receiver,
        REPLICA_WRITE,
    ),
    (
        "crates/serve/src/replica.rs",
        "lock_write",
        Via::Helper,
        REPLICA_WRITE,
    ),
    (
        "crates/serve/src/replica.rs",
        "index",
        Via::Receiver,
        REPLICA_SLOT,
    ),
];

/// Declared acquisition order: `(first, second)` means `first` may be
/// held while acquiring `second`; acquiring `first` while `second` is
/// held is an inversion.
const ORDER: &[(Class, Class)] = &[(SHARD, WAL), (SHARD, ROUTER), (REPLICA_WRITE, REPLICA_SLOT)];

#[derive(Debug)]
struct Guard {
    class: Class,
    /// Brace depth at acquisition.
    depth: usize,
    /// `let`-bound guards live to end of block; temporaries to end of
    /// statement.
    bound: bool,
    line: u32,
}

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let classes: Vec<&(&str, &str, Via, Class)> = CLASSES
            .iter()
            .filter(|(path, ..)| f.rel_path.contains(path))
            .collect();
        if classes.is_empty() {
            continue;
        }
        let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
        let mut depth = 0usize;
        let mut guards: Vec<Guard> = Vec::new();
        let mut stmt_start = 0usize; // index into `code` of statement start
        for w in 0..code.len() {
            let (_i, t) = code[w];
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    stmt_start = w + 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    stmt_start = w + 1;
                }
                ";" => {
                    guards.retain(|g| g.bound || g.depth < depth);
                    stmt_start = w + 1;
                }
                _ => {}
            }
            let Some(class) = classify(&classes, &code, w) else {
                continue;
            };
            let in_test = f.is_test_token(code[w].0);
            // Inversion: acquiring `class` while a class declared to come
            // *after* it is held.
            if !in_test {
                for g in &guards {
                    let inverted = ORDER
                        .iter()
                        .any(|&(first, second)| first == class && second == g.class);
                    if inverted {
                        out.push(Finding::new(
                            LOCK_ORDER,
                            &f.rel_path,
                            t.line,
                            format!(
                                "lock-order inversion: acquiring `{}` while `{}` (line {}) is held — declared order is {} → {}",
                                class.name, g.class.name, g.line, class.name, g.class.name
                            ),
                        ));
                    } else if class == g.class && class.kind == Kind::Mutex {
                        out.push(Finding::new(
                            LOCK_ORDER,
                            &f.rel_path,
                            t.line,
                            format!(
                                "re-acquiring mutex class `{}` while already held (line {}) — self-deadlock",
                                class.name, g.line
                            ),
                        ));
                    }
                }
            }
            let has_let = code[stmt_start..=w].iter().any(|(_, s)| s.text == "let");
            // A guard is block-scoped only when the acquisition chain
            // itself is what the `let` binds: `.lock().expect(…)` chains
            // ending at `;` (or a let-else `else`). If the guard is
            // projected through (`self.router().assign.get(…)`), the
            // temporary dies at end of statement — exactly Rust's
            // temporary-lifetime rule.
            let bound = has_let && chain_ends_statement(&code, w);
            guards.push(Guard {
                class,
                depth,
                bound,
                line: t.line,
            });
        }
    }
}

/// From the acquisition method name at `code[w]`, walk the adapter chain
/// (`.expect(…)`, `.unwrap_or_else(…)`, `?`, …) and report whether the
/// chain result is what the statement binds — i.e. the next token after
/// the chain is `;` or a let-else `else`, so the guard lives to end of
/// block rather than end of statement.
fn chain_ends_statement(code: &[(usize, &crate::lexer::Token)], w: usize) -> bool {
    let mut j = w + 1; // at the `(` of the acquisition call
    loop {
        match code.get(j).map(|&(_, t)| t.text.as_str()) {
            Some("(") => {
                // Skip the matching parens.
                let mut depth = 0usize;
                while let Some(&(_, t)) = code.get(j) {
                    match t.text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            Some("?") => j += 1,
            // Another adapter only if it is a *call*; a field projection
            // (the guard) means the chain keeps the temporary alive.
            Some(".") if code.get(j + 2).is_some_and(|&(_, t)| t.text == "(") => j += 2,
            Some(";") | Some("else") => return true,
            _ => return false,
        }
    }
}

/// Classify the token at `code[w]` as a lock acquisition, if it is one.
fn classify(
    classes: &[&(&str, &str, Via, Class)],
    code: &[(usize, &crate::lexer::Token)],
    w: usize,
) -> Option<Class> {
    let t = code[w].1;
    if t.kind != TokKind::Ident {
        return None;
    }
    let next = |k: usize| code.get(w + k).map(|&(_, n)| n.text.as_str());
    let prev = |k: usize| w.checked_sub(k).map(|p| code[p].1.text.as_str());
    match t.text.as_str() {
        // `<recv>.lock()` / `.read()` / `.write()` with empty parens —
        // the empty-args requirement is what distinguishes a guard
        // acquisition from `io::Read::read(buf)` and friends.
        "lock" | "read" | "write"
            if prev(1) == Some(".") && next(1) == Some("(") && next(2) == Some(")") =>
        {
            let recv = receiver_ident(code, w.checked_sub(2)?)?;
            classes
                .iter()
                .find(|(_, name, via, _)| *via == Via::Receiver && *name == recv)
                .map(|&&(_, _, _, c)| c)
        }
        // `self.helper(...)` — a guard-returning helper call. The `fn`
        // guard skips the helper's own definition site.
        name => {
            if next(1) != Some("(") || prev(1) == Some("fn") {
                return None;
            }
            classes
                .iter()
                .find(|(_, n, via, _)| *via == Via::Helper && *n == name)
                .map(|&&(_, _, _, c)| c)
        }
    }
}

/// The identifier naming the receiver whose guard method is called:
/// `router.lock()` → `router`; `self.shards[s].write()` → `shards`;
/// `slot.index.read()` → `index`; `self.router().x` is handled by the
/// helper table instead.
fn receiver_ident(code: &[(usize, &crate::lexer::Token)], end: usize) -> Option<String> {
    let t = code[end].1;
    match t.text.as_str() {
        "]" => {
            // Walk back over the index expression to its `[`.
            let mut depth = 0usize;
            let mut j = end;
            loop {
                match code[j].1.text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            return receiver_ident(code, j.checked_sub(1)?);
                        }
                    }
                    _ => {}
                }
                j = j.checked_sub(1)?;
            }
        }
        ")" => {
            // Method-call receiver: `…helper(…).lock()` — classify by the
            // method name before the matching `(`.
            let mut depth = 0usize;
            let mut j = end;
            loop {
                match code[j].1.text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            return receiver_ident(code, j.checked_sub(1)?);
                        }
                    }
                    _ => {}
                }
                j = j.checked_sub(1)?;
            }
        }
        _ if t.kind == TokKind::Ident => Some(t.text.clone()),
        _ => None,
    }
}
