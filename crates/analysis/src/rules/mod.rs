//! The rule set. Each rule is a function from the workspace to findings;
//! suppression and baseline filtering happen in the driver so rules stay
//! pure detectors.

pub mod lock_order;
pub mod simple;
pub mod trace_parity;
pub mod wire;

use crate::findings::Finding;
use crate::workspace::Workspace;

/// Rule ids, in the order they run and render.
pub const RULE_IDS: &[&str] = &[
    simple::UNSAFE_SAFETY,
    simple::PANIC_FREE,
    simple::ATOMIC_ORDERING,
    lock_order::LOCK_ORDER,
    wire::WIRE_EXHAUSTIVENESS,
    trace_parity::TRACE_PARITY,
];

/// Run every rule (or the `only` subset) over the workspace.
pub fn run_all(ws: &Workspace, only: &[String]) -> Vec<Finding> {
    let enabled = |id: &str| only.is_empty() || only.iter().any(|o| o == id);
    let mut out = Vec::new();
    if enabled(simple::UNSAFE_SAFETY) {
        simple::unsafe_safety(ws, &mut out);
    }
    if enabled(simple::PANIC_FREE) {
        simple::panic_free(ws, &mut out);
    }
    if enabled(simple::ATOMIC_ORDERING) {
        simple::atomic_ordering(ws, &mut out);
    }
    if enabled(lock_order::LOCK_ORDER) {
        lock_order::check(ws, &mut out);
    }
    if enabled(wire::WIRE_EXHAUSTIVENESS) {
        wire::check(ws, &mut out);
    }
    if enabled(trace_parity::TRACE_PARITY) {
        trace_parity::check(ws, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}
