//! `wire-exhaustiveness`: the wire protocol's opcode space must be
//! covered end to end. Every `OP_*` constant declared in
//! `crates/net/src/proto.rs` must be referenced beyond its declaration
//! (an encode arm and a decode arm); every `Request` variant must appear
//! in the server dispatch (`server.rs`) and be constructed by the client
//! (`client.rs`); every `Response` variant must be constructed or
//! matched on both sides. A variant that exists only in `proto.rs` is a
//! wire feature nobody can reach — exactly the drift this rule exists to
//! catch when the next opcode lands.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const WIRE_EXHAUSTIVENESS: &str = "wire-exhaustiveness";

const PROTO: &str = "crates/net/src/proto.rs";
const SERVER: &str = "crates/net/src/server.rs";
const CLIENT: &str = "crates/net/src/client.rs";

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(proto) = ws.files.iter().find(|f| f.rel_path == PROTO) else {
        return; // not this workspace's layout — nothing to enforce
    };
    let server = ws.files.iter().find(|f| f.rel_path == SERVER);
    let client = ws.files.iter().find(|f| f.rel_path == CLIENT);

    // --- OP_* constants: declared once, referenced by encode + decode.
    for (name, line) in op_consts(proto) {
        let refs = count_ident(proto, &name, false) - 1; // minus the declaration
        if refs < 2 {
            out.push(Finding::new(
                WIRE_EXHAUSTIVENESS,
                PROTO,
                line,
                format!(
                    "opcode `{name}` is referenced {refs} time(s) beyond its declaration; \
                     expected at least 2 (an encode arm and a decode arm)"
                ),
            ));
        }
    }

    // --- Request variants: dispatched by the server, built by the client.
    for (variant, line) in enum_variants(proto, "Request") {
        for (file, role) in [(server, "server dispatch"), (client, "client request path")] {
            let Some(file) = file else { continue };
            if !has_variant_use(file, "Request", &variant) {
                out.push(Finding::new(
                    WIRE_EXHAUSTIVENESS,
                    PROTO,
                    line,
                    format!(
                        "`Request::{variant}` never appears in the {role} ({})",
                        file.rel_path
                    ),
                ));
            }
        }
    }

    // --- Response variants: produced by the server, consumed by the client.
    for (variant, line) in enum_variants(proto, "Response") {
        for (file, role) in [
            (server, "server response path"),
            (client, "client decode path"),
        ] {
            let Some(file) = file else { continue };
            if !has_variant_use(file, "Response", &variant) {
                out.push(Finding::new(
                    WIRE_EXHAUSTIVENESS,
                    PROTO,
                    line,
                    format!(
                        "`Response::{variant}` never appears in the {role} ({})",
                        file.rel_path
                    ),
                ));
            }
        }
    }
}

/// `const OP_X: u8 = …` declarations (non-test code): (name, line).
fn op_consts(f: &SourceFile) -> Vec<(String, u32)> {
    let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
    let mut out = Vec::new();
    for w in 0..code.len() {
        let (i, t) = code[w];
        if t.text == "const"
            && !f.is_test_token(i)
            && code
                .get(w + 1)
                .is_some_and(|&(_, n)| n.kind == TokKind::Ident && n.text.starts_with("OP_"))
        {
            let n = code[w + 1].1;
            out.push((n.text.clone(), n.line));
        }
    }
    out
}

/// Occurrences of identifier `name` in the file's code tokens.
/// `include_tests` controls whether `#[cfg(test)]` regions count —
/// coverage by a test alone is not wire coverage.
fn count_ident(f: &SourceFile, name: &str, include_tests: bool) -> usize {
    f.code_tokens()
        .filter(|(i, t)| {
            t.kind == TokKind::Ident && t.text == name && (include_tests || !f.is_test_token(*i))
        })
        .count()
}

/// The variants of `enum <name> { … }`: idents at brace depth 1 that
/// start a variant (first token of the enum body or right after a
/// variant-separating `,`).
fn enum_variants(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
    let mut out = Vec::new();
    for w in 0..code.len() {
        if code[w].1.text != "enum" || code.get(w + 1).is_none_or(|&(_, t)| t.text != name) {
            continue;
        }
        // Find the opening brace, then walk variants at depth 1.
        let mut j = w + 2;
        while code.get(j).is_some_and(|&(_, t)| t.text != "{") {
            j += 1;
        }
        let mut depth = 0usize;
        let mut expect_variant = true;
        while let Some(&(_, t)) = code.get(j) {
            match t.text.as_str() {
                "{" | "(" | "[" => {
                    depth += 1;
                    if depth == 1 {
                        expect_variant = true; // first token of the body
                    }
                }
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                }
                "," if depth == 1 => expect_variant = true,
                "#" => {} // attribute on a variant — keep expecting
                _ => {
                    if depth == 1 && expect_variant && t.kind == TokKind::Ident {
                        out.push((t.text.clone(), t.line));
                    }
                    if depth == 1 && t.kind == TokKind::Ident {
                        expect_variant = false;
                    }
                }
            }
            j += 1;
        }
        return out;
    }
    out
}

/// Whether `Enum::Variant` appears in the file's non-test code.
fn has_variant_use(f: &SourceFile, enum_name: &str, variant: &str) -> bool {
    let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
    (0..code.len()).any(|w| {
        code[w].1.text == enum_name
            && !f.is_test_token(code[w].0)
            && code.get(w + 1).is_some_and(|&(_, t)| t.text == "::")
            && code.get(w + 2).is_some_and(|&(_, t)| t.text == variant)
    })
}
