//! `trace-parity-drift`: the codebase deliberately duplicates its query
//! hot path — `fn x` (zero clock reads) and `fn x_traced` (per-stage
//! timing) — and pins them byte-identical-in-results with runtime parity
//! tests. This rule pins them *structurally*: for every `fn x_traced`
//! found in non-test code there must be a sibling `fn x` in the same
//! file, and the traced body must be the untraced body plus insertions
//! drawn only from the trace vocabulary (clock reads, `trace.add(…)`,
//! span plumbing). Any deletion, any reordering, or any inserted token
//! that is not trace plumbing means the pair has drifted — the exact
//! failure mode the runtime parity proptests can only catch per-input,
//! and this rule catches for all inputs.
//!
//! Mechanics: both bodies are lexed to code tokens (comments and
//! formatting are already invisible), `_traced` name suffixes are
//! stripped so recursive/helper calls line up, then a longest-common-
//! subsequence diff runs. The untraced body must be a subsequence of the
//! traced body, and every inserted token must be punctuation, a literal,
//! a keyword, or an identifier from the `TRACE_IDENTS` /
//! `TRACE_IDENT_PATTERNS` allowlists below.

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const TRACE_PARITY: &str = "trace-parity-drift";

/// Identifiers that may appear in traced-only insertions.
const TRACE_IDENTS: &[&str] = &[
    // clock plumbing
    "Instant",
    "now",
    "elapsed",
    "duration_since",
    "as_nanos",
    "std",
    "time",
    // span/trace structures and their methods
    "QueryTrace",
    "Stage",
    "add",
    "get",
    "VerifySplit",
    "default",
    "Default",
    // integer casts inside timing expressions
    "u64",
    "u128",
    "as",
    // local keywords that begin inserted statements
    "let",
    "mut",
    // conventional timestamp locals
    "partitioned",
];

/// Identifier substrings that mark trace plumbing (`trace`, `scan_started`,
/// `split.prefilter_nanos`, stage names, …).
const TRACE_IDENT_PATTERNS: &[&str] = &[
    "trace", "Trace", "split", "Split", "start", "nanos", "Stage", "stage",
];

/// Stage enum variant names (inserted as `Stage::X` arguments).
const STAGE_VARIANTS: &[&str] = &[
    "Queue",
    "Projection",
    "TreeProbe",
    "Prefilter",
    "Verify",
    "Merge",
    "Reply",
];

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let fns = functions(f);
        for (name, sig_start, body_end) in &fns {
            let Some(base) = name.strip_suffix("_traced") else {
                continue;
            };
            let Some((_, u_start, u_end)) = fns.iter().find(|(n, ..)| n == base) else {
                out.push(Finding::new(
                    TRACE_PARITY,
                    &f.rel_path,
                    f.tokens[*sig_start].line,
                    format!("`fn {name}` has no untraced sibling `fn {base}` in this file"),
                ));
                continue;
            };
            let traced_toks = tokens_in(f, *sig_start, *body_end);
            // A traced wrapper that *delegates* to the untraced function
            // (`let x = self.ladder_prober(q, scratch)?;` plus timing)
            // cannot drift by construction — accept it without a diff.
            let delegates = traced_toks
                .windows(2)
                .any(|w| w[0].kind == TokKind::Ident && w[0].text == base && w[1].text == "(");
            if delegates {
                continue;
            }
            compare_pair(f, base, tokens_in(f, *u_start, *u_end), traced_toks, out);
        }
    }
}

/// Code tokens of the function in `[start, end]`, skipping the leading
/// `fn` keyword and the function's own name (which differs by suffix).
fn tokens_in(f: &SourceFile, start: usize, end: usize) -> Vec<&Token> {
    f.tokens[start..=end]
        .iter()
        .filter(|t| !t.is_comment())
        .skip(2)
        .collect()
}

/// Non-test `fn` items: (name, index of `fn` token, index of closing `}`).
fn functions(f: &SourceFile) -> Vec<(String, usize, usize)> {
    let code: Vec<(usize, &Token)> = f.code_tokens().collect();
    let mut out = Vec::new();
    let mut w = 0;
    while w < code.len() {
        let (i, t) = code[w];
        if t.text == "fn"
            && !f.is_test_token(i)
            && code
                .get(w + 1)
                .is_some_and(|&(_, n)| n.kind == TokKind::Ident)
        {
            let name = code[w + 1].1.text.clone();
            // Find the body: first `{` at paren/bracket depth 0 after the
            // signature; a `;` first means a bodiless trait method.
            let mut j = w + 2;
            let mut depth = 0usize;
            let mut body = None;
            while let Some(&(_, s)) = code.get(j) {
                match s.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                // Matching close brace.
                let mut braces = 0usize;
                let mut k = open;
                while let Some(&(_, s)) = code.get(k) {
                    if s.text == "{" {
                        braces += 1;
                    } else if s.text == "}" {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                out.push((name, code[w].0, code[k.min(code.len() - 1)].0));
                w = k;
                continue;
            }
        }
        w += 1;
    }
    out
}

/// Diff the untraced token texts against the traced ones and report
/// drift. `_traced` suffixes are normalized away first.
fn compare_pair(
    f: &SourceFile,
    base: &str,
    untraced: Vec<&Token>,
    traced: Vec<&Token>,
    out: &mut Vec<Finding>,
) {
    let norm = |t: &Token| -> String {
        match t.text.strip_suffix("_traced") {
            Some(stripped) if t.kind == TokKind::Ident => stripped.to_string(),
            _ => t.text.clone(),
        }
    };
    let a: Vec<String> = untraced.iter().map(|t| norm(t)).collect();
    let b: Vec<String> = traced.iter().map(|t| norm(t)).collect();

    // LCS table (u32 is plenty: bodies are a few thousand tokens).
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i * (m + 1) + j] = if a[i] == b[j] {
                lcs[(i + 1) * (m + 1) + j + 1] + 1
            } else {
                lcs[(i + 1) * (m + 1) + j].max(lcs[i * (m + 1) + j + 1])
            };
        }
    }
    // Walk the alignment: deletions (untraced-only tokens) are always
    // drift; insertions (traced-only tokens) must be trace vocabulary.
    let (mut i, mut j) = (0usize, 0usize);
    while i < n || j < m {
        if i < n && j < m && a[i] == b[j] {
            i += 1;
            j += 1;
        } else if j < m && (i == n || lcs[i * (m + 1) + j + 1] >= lcs[(i + 1) * (m + 1) + j]) {
            // Inserted in traced.
            let tok = traced[j];
            if !is_trace_token(tok) {
                out.push(Finding::new(
                    TRACE_PARITY,
                    &f.rel_path,
                    tok.line,
                    format!(
                        "traced body of `{base}` inserts non-trace token `{}` — the pair has drifted",
                        tok.text
                    ),
                ));
                return;
            }
            j += 1;
        } else {
            // Deleted from traced: the untraced body has logic the traced
            // body lost.
            let tok = untraced[i];
            out.push(Finding::new(
                TRACE_PARITY,
                &f.rel_path,
                tok.line,
                format!(
                    "untraced `{base}` has `{}` (line {}) with no counterpart in the traced body",
                    tok.text, tok.line
                ),
            ));
            return;
        }
    }
}

/// Whether a traced-only inserted token is legitimate trace plumbing.
fn is_trace_token(t: &Token) -> bool {
    match t.kind {
        TokKind::Punct
        | TokKind::NumLit
        | TokKind::StrLit
        | TokKind::CharLit
        | TokKind::Lifetime => true,
        TokKind::Ident => {
            TRACE_IDENTS.contains(&t.text.as_str())
                || STAGE_VARIANTS.contains(&t.text.as_str())
                || TRACE_IDENT_PATTERNS.iter().any(|p| t.text.contains(p))
        }
        TokKind::LineComment | TokKind::BlockComment => true,
    }
}
