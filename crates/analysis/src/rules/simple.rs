//! The three justification-comment rules: `unsafe-safety`,
//! `panic-free-surface`, and `atomic-ordering`. All three share a shape —
//! find a token pattern in non-test code, then require a written
//! justification nearby — so they live together.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const UNSAFE_SAFETY: &str = "unsafe-safety";
pub const PANIC_FREE: &str = "panic-free-surface";
pub const ATOMIC_ORDERING: &str = "atomic-ordering";

/// How far above a flagged line a justification comment may sit (past
/// comment, attribute, and statement-continuation lines).
const JUSTIFY_MAX_UP: u32 = 12;

/// Crates whose non-test code is the engine's user-facing surface: a
/// panic here takes down a serving worker, so `unwrap`/`expect`/
/// `panic!`/`unreachable!` must be replaced with typed [`DbLshError`]
/// propagation or carry an inline suppression explaining why the
/// invariant is load-bearing.
const PANIC_FREE_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/data/src/",
    "crates/index/src/",
    "crates/serve/src/",
    "crates/net/src/",
    "crates/telemetry/src/",
];

/// `unsafe-safety`: every `unsafe` keyword (block or fn) in non-test
/// code must carry a `SAFETY:` comment — same line, or in the contiguous
/// comment/attribute block above. A doc-level `# Safety` section also
/// counts for `unsafe fn` items.
pub fn unsafe_safety(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let mut flagged_lines: Vec<u32> = Vec::new();
        for (i, t) in f.code_tokens() {
            if t.kind != TokKind::Ident || t.text != "unsafe" || f.is_test_token(i) {
                continue;
            }
            if flagged_lines.contains(&t.line) {
                continue; // one finding per line
            }
            let ok = f.has_justification(t.line, "SAFETY:", JUSTIFY_MAX_UP)
                || f.has_justification(t.line, "# Safety", JUSTIFY_MAX_UP);
            if !ok {
                flagged_lines.push(t.line);
                out.push(Finding::new(
                    UNSAFE_SAFETY,
                    &f.rel_path,
                    t.line,
                    "`unsafe` without a `SAFETY:` comment stating the precondition it relies on",
                ));
            }
        }
    }
}

/// `panic-free-surface`: no `.unwrap()` / `.expect(…)` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` in the non-test code of
/// the serving-surface crates.
pub fn panic_free(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !PANIC_FREE_CRATES.iter().any(|p| f.rel_path.starts_with(p)) {
            continue;
        }
        let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
        for w in 0..code.len() {
            let (i, t) = code[w];
            if t.kind != TokKind::Ident || f.is_test_token(i) {
                continue;
            }
            let prev = w.checked_sub(1).map(|p| code[p].1.text.as_str());
            let next = code.get(w + 1).map(|&(_, n)| n.text.as_str());
            let what: Option<&str> = match t.text.as_str() {
                "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                    Some(if t.text == "unwrap" {
                        "`.unwrap()`"
                    } else {
                        "`.expect(…)`"
                    })
                }
                "panic" if next == Some("!") => Some("`panic!`"),
                "unreachable" if next == Some("!") => Some("`unreachable!`"),
                "todo" if next == Some("!") => Some("`todo!`"),
                "unimplemented" if next == Some("!") => Some("`unimplemented!`"),
                _ => None,
            };
            if let Some(what) = what {
                out.push(Finding::new(
                    PANIC_FREE,
                    &f.rel_path,
                    t.line,
                    format!("{what} on the serving surface — propagate a typed DbLshError instead"),
                ));
            }
        }
    }
}

/// `atomic-ordering`: every atomic `Ordering::<X>` choice in non-test
/// code must carry an `// order:` comment justifying why that ordering
/// (and not a stronger or weaker one) is correct. `cmp::Ordering`
/// variants never match the atomic variant names, so they pass freely.
pub fn atomic_ordering(ws: &Workspace, out: &mut Vec<Finding>) {
    const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    for f in &ws.files {
        let mut flagged_lines: Vec<u32> = Vec::new();
        let code: Vec<(usize, &crate::lexer::Token)> = f.code_tokens().collect();
        for w in 0..code.len() {
            let (i, t) = code[w];
            if t.text != "Ordering" || t.kind != TokKind::Ident || f.is_test_token(i) {
                continue;
            }
            let is_atomic = code.get(w + 1).is_some_and(|&(_, c)| c.text == "::")
                && code
                    .get(w + 2)
                    .is_some_and(|&(_, v)| ATOMIC_VARIANTS.contains(&v.text.as_str()));
            if !is_atomic || flagged_lines.contains(&t.line) {
                continue;
            }
            if !f.has_justification(t.line, "order:", JUSTIFY_MAX_UP) {
                flagged_lines.push(t.line);
                let variant = &code[w + 2].1.text;
                out.push(Finding::new(
                    ATOMIC_ORDERING,
                    &f.rel_path,
                    t.line,
                    format!(
                        "atomic `Ordering::{variant}` without an `// order:` comment justifying the choice"
                    ),
                ));
            }
        }
    }
}

/// Shared helper for fixture tests: run one simple rule over a single
/// in-memory file.
pub fn check_single(rule: &str, file: SourceFile) -> Vec<Finding> {
    let ws = Workspace {
        root: std::path::PathBuf::new(),
        files: vec![file],
    };
    let mut out = Vec::new();
    match rule {
        UNSAFE_SAFETY => unsafe_safety(&ws, &mut out),
        PANIC_FREE => panic_free(&ws, &mut out),
        ATOMIC_ORDERING => atomic_ordering(&ws, &mut out),
        _ => panic!("not a simple rule: {rule}"),
    }
    out
}
