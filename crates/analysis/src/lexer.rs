//! A hand-rolled Rust lexer, tuned for static analysis rather than
//! compilation: it preserves comments as first-class tokens (rules read
//! `SAFETY:` / `// order:` / `// lint: allow(...)` justifications out of
//! them), tracks the source line of every token, and gets the classic
//! trip-wires right — string and raw-string literals (so an `unsafe`
//! inside a string is not an `unsafe` block), nested block comments, and
//! the `'a'`-char-literal versus `'a`-lifetime ambiguity.
//!
//! It is deliberately lossy where analysis doesn't care: numeric literals
//! are kept as raw text, keywords are ordinary [`TokKind::Ident`] tokens,
//! and no spans finer than a line are recorded.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A lifetime such as `'a` (the tick is kept in the text).
    Lifetime,
    /// A char literal such as `'x'` or `'\u{1F600}'`.
    CharLit,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    StrLit,
    /// A numeric literal, raw text (`0x_ff`, `1.0e-5`, `3usize`, …).
    NumLit,
    /// Punctuation; common multi-character operators (`::`, `->`, `=>`,
    /// `..`, `==`, …) are fused into one token.
    Punct,
    /// A `//` comment (doc comments included); text keeps the slashes.
    LineComment,
    /// A `/* … */` comment (nesting folded in); text keeps delimiters.
    BlockComment,
}

/// One lexed token: kind, raw text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is trivia (a comment) rather than code.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators fused into single [`TokKind::Punct`] tokens,
/// longest first so `..=` wins over `..` wins over `.`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens. Never fails: unterminated literals or comments
/// degenerate into a token that runs to end of input, which is the most
/// useful behavior for an analyzer pointed at code that rustc already
/// accepts.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.char_indices().collect(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map_or(self.src.len(), |&(byte, _)| byte)
    }

    /// Advance one char, keeping the line counter honest.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn push(&mut self, kind: TokKind, start_idx: usize, start_line: u32) {
        let text = self.src[self.byte_at(start_idx)..self.byte_at(self.pos)].to_string();
        self.out.push(Token {
            kind,
            text,
            line: start_line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.push(TokKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.push(TokKind::BlockComment, start, line);
                }
                '"' => {
                    self.string();
                    self.push(TokKind::StrLit, start, line);
                }
                // String-prefix letters: r"", r#""#, b"", br#""#, c"",
                // b'x'. Fall through to identifier when not a literal.
                'r' | 'b' | 'c' if self.string_prefix() => {
                    self.push(TokKind::StrLit, start, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokKind::CharLit, start, line);
                }
                '\'' => {
                    if self.is_lifetime() {
                        self.bump(); // '
                        while self.peek(0).is_some_and(is_ident_char) {
                            self.bump();
                        }
                        self.push(TokKind::Lifetime, start, line);
                    } else {
                        self.char_literal();
                        self.push(TokKind::CharLit, start, line);
                    }
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::NumLit, start, line);
                }
                c if is_ident_start(c) => {
                    // Raw identifier r#name was consumed by string_prefix's
                    // failure path returning false — handle the plain case.
                    while self.peek(0).is_some_and(is_ident_char) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line);
                }
                _ => {
                    self.punct();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// At a `r`/`b`/`c` that may open a string-like literal. Consumes and
    /// returns true iff it is one; leaves the cursor untouched otherwise.
    fn string_prefix(&mut self) -> bool {
        let c0 = self.peek(0).unwrap_or('\0');
        // Longest prefix first: br / rb don't both exist, but br does.
        let (skip, raw) = if c0 == 'b' && self.peek(1) == Some('r') {
            (2, true)
        } else if c0 == 'r' {
            (1, true)
        } else {
            (1, false) // b"…" or c"…"
        };
        let mut hashes = 0;
        if raw {
            while self.peek(skip + hashes) == Some('#') {
                hashes += 1;
            }
        }
        if self.peek(skip + hashes) != Some('"') {
            return false; // r#type raw identifier, or a plain ident
        }
        for _ in 0..skip + hashes {
            self.bump();
        }
        if raw {
            self.raw_string(hashes);
        } else {
            self.string();
        }
        true
    }

    /// Consume a `"…"` with escapes; cursor on the opening quote.
    fn string(&mut self) {
        self.bump(); // "
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consume `"…"#…#` with `hashes` closing hashes; cursor on the quote.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // "
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closed {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Nested `/* … */`; cursor on the opening slash.
    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => self.bump(),
                (None, _) => return,
            }
        }
    }

    /// Disambiguate `'` at the cursor: lifetime (`'a`, `'static`) versus
    /// char literal (`'a'`, `'\n'`, `'∂'`). A lifetime is a tick followed
    /// by an identifier NOT closed by another tick.
    fn is_lifetime(&self) -> bool {
        match self.peek(1) {
            Some('\\') => false,                   // '\n' — escape ⇒ char literal
            Some(c) if !is_ident_char(c) => false, // '(' etc. ⇒ char literal
            Some(_) => {
                // Scan the identifier run; a closing tick right after
                // means char literal ('a'), anything else means lifetime.
                let mut i = 1;
                while self.peek(i).is_some_and(is_ident_char) {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            None => false,
        }
    }

    /// Consume a char literal; cursor on the opening tick.
    fn char_literal(&mut self) {
        self.bump(); // '
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Numeric literal: digits, underscores, type suffixes, hex/bin/oct,
    /// floats with exponents. A `.` is consumed only when followed by a
    /// digit, so `1..n` lexes as `1` `..` `n`.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some(&(_, e)) if e == 'e' || e == 'E')
            {
                // Exponent sign: only right after e/E inside the literal.
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Punctuation, fusing the operators in [`MULTI_PUNCT`].
    fn punct(&mut self) {
        for op in MULTI_PUNCT {
            let mut matches = true;
            for (i, oc) in op.chars().enumerate() {
                if self.peek(i) != Some(oc) {
                    matches = false;
                    break;
                }
            }
            if matches {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                return;
            }
        }
        self.bump();
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn keywords_inside_strings_are_not_code() {
        let toks = kinds(r#"let s = "unsafe { panic!() }";"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            idents,
            ["let", "s"],
            "string content must not lex as idents"
        );
        assert!(toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        let toks = kinds(r##"let x = r#"say "unsafe" loudly"#;"##);
        let lit = toks.iter().find(|(k, _)| *k == TokKind::StrLit).unwrap();
        assert_eq!(lit.1, r##"r#"say "unsafe" loudly"#"##);
        // byte and byte-raw variants take the same path
        assert!(kinds(r#"b"bytes""#)[0].0 == TokKind::StrLit);
        assert!(kinds(r###"br##"x"##"###)[0].0 == TokKind::StrLit);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "type"));
        assert!(toks.iter().all(|(k, _)| *k != TokKind::StrLit));
    }

    #[test]
    fn nested_block_comments_fold_into_one_token() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetime_versus_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count();
        assert_eq!(lifetimes, 2, "'a in generics and in the reference type");
        assert_eq!(chars, 2, "'a' and '\\n'");
        // 'static is a lifetime even though it is a long identifier run
        assert_eq!(kinds("&'static str")[1].0, TokKind::Lifetime);
    }

    #[test]
    fn multi_char_operators_fuse() {
        let toks = kinds("a::b -> c => d ..= e .. f == g");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["::", "->", "=>", "..=", "..", "=="]);
    }

    #[test]
    fn numeric_literals_and_range_ambiguity() {
        // `1..n` must not eat the dot; `1.5e-3` and suffixes must.
        let toks = kinds("for i in 1..n { let x = 1.5e-3f64 + 0xff_u32; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1", "1.5e-3f64", "0xff_u32"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb \"x\ny\" c";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4, "block comment spanned lines 2-3");
        assert_eq!(find("c"), 5, "string literal spanned lines 4-5");
    }

    #[test]
    fn unterminated_input_degenerates_instead_of_panicking() {
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
    }
}
