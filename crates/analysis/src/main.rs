//! CLI for the workspace static-analysis pass. See `dblsh-analyze --help`.

use dblsh_analyze::findings::{parse_baseline, render_human, render_json, write_baseline};
use dblsh_analyze::workspace::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
dblsh-analyze — workspace-native static analysis for DB-LSH

USAGE:
    dblsh-analyze [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root to scan [default: .]
    --format <F>        Output format: human | json [default: human]
    --deny-findings     Exit non-zero if any finding survives
                        suppressions and the baseline (the CI gate)
    --baseline <FILE>   Baseline path [default: <root>/analysis-baseline.json]
    --write-baseline    Regenerate the baseline from current findings
                        (inventories debt; does not silence suppressions)
    --rule <ID>         Run only this rule (repeatable)
    --list-rules        Print the rule ids and exit
    -h, --help          Print this help

RULES:
    unsafe-safety        every `unsafe` carries a SAFETY: comment
    panic-free-surface   no unwrap/expect/panic!/unreachable! in the
                         non-test code of core/data/index/serve/net/telemetry
    atomic-ordering      every atomic Ordering::* carries an `// order:` comment
    lock-order           the declared shard→wal/router and
                         replica-write→replica-slot hierarchy has no inversions
    wire-exhaustiveness  every proto.rs opcode is encoded, decoded,
                         dispatched by the server and reachable from the client
    trace-parity-drift   every `fn x_traced` matches its `fn x` token-for-token
                         modulo trace plumbing

SUPPRESSIONS:
    // lint: allow(<rule>) — <reason>
    on the offending line (trailing) or the line directly above it.
    Suppressions without a reason, and suppressions that match nothing,
    are findings themselves (rule: bad-suppression).
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut deny = false;
    let mut write = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                _ => return usage_error("--format must be human or json"),
            },
            "--deny-findings" => deny = true,
            "--write-baseline" => write = true,
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--rule" => match args.next() {
                Some(v) => only.push(v),
                None => return usage_error("--rule needs a value"),
            },
            "--list-rules" => {
                for id in dblsh_analyze::rules::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let ws = match Workspace::scan(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analysis-baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: malformed baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file = empty baseline
    };

    if write {
        // Regenerate from raw findings (suppressions still apply — the
        // baseline exists for debt that is *not* individually justified).
        let analysis = dblsh_analyze::analyze(&ws, &only, &[]);
        let doc = write_baseline(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!("error: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline written: {} entries -> {}",
            analysis.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let analysis = dblsh_analyze::analyze(&ws, &only, &baseline);
    let rendered = match format.as_str() {
        "json" => render_json(&analysis.findings, analysis.suppressed, analysis.baselined),
        _ => render_human(&analysis.findings, analysis.suppressed, analysis.baselined),
    };
    print!("{rendered}");

    if deny && !analysis.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{HELP}");
    ExitCode::from(2)
}
