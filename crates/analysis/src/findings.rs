//! Structured findings, the two renderers (human and JSON), and the
//! committed baseline that inventories pre-existing debt.
//!
//! A baseline entry is `(rule, path, message)` — deliberately without a
//! line number, so unrelated edits that shift code don't churn the file.
//! Every baseline entry must still match a live finding: an entry that
//! no longer matches is *stale* and is itself reported, which is what
//! lets CI fail when the baseline shrinks without being regenerated.

use std::fmt::Write as _;

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// Render findings for humans: `path:line: [rule] message`, sorted.
pub fn render_human(findings: &[Finding], suppressed: usize, baselined: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "{} finding(s), {} suppressed inline, {} baselined",
        findings.len(),
        suppressed,
        baselined
    );
    out
}

/// Render findings as a single JSON document (the CI artifact).
pub fn render_json(findings: &[Finding], suppressed: usize, baselined: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"count\": {},\n  \"suppressed\": {},\n  \"baselined\": {}\n}}\n",
        findings.len(),
        suppressed,
        baselined
    );
    out
}

/// JSON string escaping (the subset std gives us no helper for).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A baseline entry; see the module docs for matching semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub message: String,
}

/// Serialize a baseline from the current findings (sorted, deduped).
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut entries: Vec<(String, String, String)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.message.clone()))
        .collect();
    entries.sort();
    entries.dedup();
    let mut out = String::from("[\n");
    for (i, (rule, path, message)) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"message\": \"{}\"}}",
            escape(rule),
            escape(path),
            escape(message)
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Parse a baseline file. The format is exactly what
/// [`write_baseline`] emits: a JSON array of flat objects with string
/// values. Anything else is an error — a hand-mangled baseline must not
/// silently drop entries.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = JsonParser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(']') {
        p.pos += 1;
        return Ok(out);
    }
    loop {
        p.skip_ws();
        p.expect('{')?;
        let mut rule = None;
        let mut path = None;
        let mut message = None;
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let val = p.string()?;
            match key.as_str() {
                "rule" => rule = Some(val),
                "path" => path = Some(val),
                "message" => message = Some(val),
                other => return Err(format!("unknown baseline key {other:?}")),
            }
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected , or }} in entry, got {other:?}")),
            }
        }
        out.push(BaselineEntry {
            rule: rule.ok_or("baseline entry missing \"rule\"")?,
            path: path.ok_or("baseline entry missing \"path\"")?,
            message: message.ok_or("baseline entry missing \"message\"")?,
        });
        p.skip_ws();
        match p.next() {
            Some(',') => continue,
            Some(']') => break,
            other => return Err(format!("expected , or ] after entry, got {other:?}")),
        }
    }
    Ok(out)
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, got {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self.next().and_then(|c| c.to_digit(16));
                            v = v * 16 + d.ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(v).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }
}
