// Negative fixture: typed propagation instead of panicking, and a
// `#[cfg(test)]` region where unwrap is allowed.

pub fn get(v: &[u32], i: usize) -> Result<u32, String> {
    v.get(i)
        .copied()
        .ok_or_else(|| format!("index {i} out of range"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        super::get(&[1], 0).unwrap();
    }
}
