// Negative fixture (parsed as crates/net/src/proto.rs): every opcode
// has an encode arm and a decode arm.

pub const OP_PING: u8 = 1;

pub enum Request {
    Ping,
}

pub fn encode(r: &Request) -> u8 {
    match r {
        Request::Ping => OP_PING,
    }
}

pub fn decode(op: u8) -> Option<Request> {
    match op {
        OP_PING => Some(Request::Ping),
        _ => None,
    }
}
