// Negative fixture: both accepted justification forms — a `SAFETY:`
// comment on a block, a `# Safety` doc section on an `unsafe fn`.

pub fn deref(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

/// # Safety
/// `p` must point to a live, aligned `u32`.
pub unsafe fn deref_raw(p: *const u32) -> u32 {
    *p
}
