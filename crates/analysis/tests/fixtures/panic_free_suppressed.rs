// Suppression fixture: a deliberate panic carrying a justified inline
// suppression — `analyze` must silence it and count it as suppressed.

pub fn chaos() {
    panic!("deliberate"); // lint: allow(panic-free-surface) — fixture exercises the suppression plumbing
}
