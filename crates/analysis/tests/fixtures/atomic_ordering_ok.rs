// Negative fixture: a justified ordering, plus `cmp::Ordering` which
// must never trip the atomic rule.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // order: standalone statistics counter; atomicity is all we need.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn compare(a: u32, b: u32) -> CmpOrdering {
    a.cmp(&b)
}
