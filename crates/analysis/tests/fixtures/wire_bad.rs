// Positive fixture (parsed as crates/net/src/proto.rs): OP_GHOST is
// declared but neither encoded nor decoded — an unreachable wire
// feature.

pub const OP_PING: u8 = 1;
pub const OP_GHOST: u8 = 9;

pub enum Request {
    Ping,
}

pub fn encode(r: &Request) -> u8 {
    match r {
        Request::Ping => OP_PING,
    }
}

pub fn decode(op: u8) -> Option<Request> {
    match op {
        OP_PING => Some(Request::Ping),
        _ => None,
    }
}
