// Positive fixture: the traced body computes `q * 3.0` where the
// untraced computes `q * 2.0` — the pair has drifted.

impl Prober {
    fn search(&self, q: f32) -> f32 {
        let a = q * 2.0;
        a + 1.0
    }

    fn search_traced(&self, q: f32, trace: &mut QueryTrace) -> f32 {
        let scan_started = Instant::now();
        let a = q * 3.0;
        trace.add(Stage::Verify, scan_started.elapsed().as_nanos() as u64);
        a + 1.0
    }
}
