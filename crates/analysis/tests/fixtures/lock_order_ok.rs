// Negative fixture (parsed as crates/serve/src/shard.rs): router taken
// while a shard write lock is held — the declared shard → router order.

impl Fleet {
    fn ordered(&self) {
        let mut shard = self.shards[0].write().unwrap();
        self.router.lock().unwrap().live[0] += 1;
        shard.touch();
    }
}
