// Positive fixture: two panic paths on the serving surface.

pub fn get(v: &[u32], i: usize) -> u32 {
    if i >= v.len() {
        panic!("out of range");
    }
    v.get(i).copied().unwrap()
}
