// Positive fixture (parsed as crates/serve/src/shard.rs): acquiring a
// shard lock while the router mutex is held inverts the declared
// shard → router order.

impl Fleet {
    fn inverted(&self) {
        let router = self.router.lock().unwrap();
        let shard = self.shards[0].write().unwrap();
        drop(shard);
        drop(router);
    }
}
