// Positive fixture: an `unsafe` block with no SAFETY justification.

pub fn deref(p: *const u32) -> u32 {
    unsafe { *p }
}
