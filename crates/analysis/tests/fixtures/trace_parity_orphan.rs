// Positive fixture: a `_traced` function with no untraced sibling.

impl Prober {
    fn search_traced(&self, q: f32) -> f32 {
        q * 2.0
    }
}
