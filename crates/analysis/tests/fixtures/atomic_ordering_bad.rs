// Positive fixture: an atomic ordering choice with no `// order:`
// justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
